"""Defenses evaluated in the paper, behind one uniform ``FittedDefense`` API.

``REGISTRY`` maps the row names of Tables I/II to fit functions with the
signature ``fit(bundle, model_config, rng=..., **kwargs) -> FittedDefense``.
"""

from repro.defenses.base import AlwaysOnDropout, FittedDefense
from repro.defenses.baselines import fit_dropout_single, fit_no_defense, fit_single
from repro.defenses.ensemble_defenses import fit_dropout_ensemble, fit_ensembler
from repro.defenses.shredder import ShredderNoise, fit_shredder

REGISTRY = {
    "none": fit_no_defense,
    "single": fit_single,
    "shredder": fit_shredder,
    "dr-single": fit_dropout_single,
    "dr-ensemble": fit_dropout_ensemble,
    "ensembler": fit_ensembler,
}

__all__ = [
    "AlwaysOnDropout",
    "FittedDefense",
    "REGISTRY",
    "ShredderNoise",
    "fit_dropout_ensemble",
    "fit_dropout_single",
    "fit_ensembler",
    "fit_no_defense",
    "fit_shredder",
    "fit_single",
]
