"""Ensemble defenses: Ensembler itself and the DR-N ablation of Table II.

``fit_ensembler`` runs the full three-stage pipeline of Section III-C.
``fit_dropout_ensemble`` ("DR-N") keeps the ensemble topology but removes the
stage-1 diversification noise — the nets differ only by initialisation and
see inference-time dropout at the split — and trains stage 3 without the
quasi-orthogonality regulariser.  The paper uses it to show that the ensemble
alone is not enough: the *selective, noise-diversified* ensemble is what
defends.
"""

from __future__ import annotations

import numpy as np

from repro.core.training import EnsemblerConfig, EnsemblerTrainer
from repro.data.datasets import DatasetBundle
from repro.defenses.base import AlwaysOnDropout, FittedDefense
from repro.models.resnet import ResNetConfig
from repro.utils.rng import new_rng, spawn_rng


def fit_ensembler(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    config: EnsemblerConfig | None = None,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """Train Ensembler (stages 1-3) and wrap it as a FittedDefense."""
    rng = rng if rng is not None else new_rng()
    config = config if config is not None else EnsemblerConfig()
    trainer = EnsemblerTrainer(model_config, bundle.image_shape[1], config, rng=rng)
    result = trainer.train(bundle.train)
    model = result.model
    return FittedDefense(
        name="ensembler",
        head=model.head,
        bodies=list(model.bodies),
        tail=model.tail,
        noise=model.noise,
        model_config=model_config,
        selector=model.selector,
        extras={
            "training_result": result,
            "config": config,
        },
    )


def fit_dropout_ensemble(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    config: EnsemblerConfig | None = None,
    p: float = 0.2,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """Train the DR-N baseline: ensemble + dropout, no stage-1 noise."""
    rng = rng if rng is not None else new_rng()
    base = config if config is not None else EnsemblerConfig()
    # No fixed-noise diversification and no orthogonality regulariser:
    # this is "the ensembled network without the first stage training".
    config = base.replace(sigma=0.0, lambda_reg=0.0)
    dropout_rng = spawn_rng(rng)

    def dropout_factory(shape, noise_rng, p=p):
        return AlwaysOnDropout(p, noise_rng)

    trainer = EnsemblerTrainer(model_config, bundle.image_shape[1], config, rng=rng,
                               noise_factory=dropout_factory)
    result = trainer.train(bundle.train)
    model = result.model
    return FittedDefense(
        name=f"dr-{config.num_nets}",
        head=model.head,
        bodies=list(model.bodies),
        tail=model.tail,
        noise=model.noise,
        model_config=model_config,
        selector=model.selector,
        extras={"training_result": result, "config": config, "p": p},
    )
