"""Common interface every defense produces, so attacks and experiment
runners can evaluate all of them uniformly.

A fitted defense is the client/server deployment of Section II-B: a private
head, one or more server bodies (the attacker's knowledge), a private tail,
the split-point noise module and — for ensemble defenses — the secret
selector.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro import nn
from repro.core.selector import Selector
from repro.data.datasets import ArrayDataset
from repro.metrics.accuracy import evaluate_accuracy
from repro.models.resnet import ResNetConfig
from repro.nn.batched import StackedBodies, unbind
from repro.nn.tensor import Tensor, no_grad


@dataclasses.dataclass
class FittedDefense:
    """A trained defense deployment.

    ``bodies`` is what the server holds (and the attacker knows); ``head``,
    ``tail``, ``noise`` and ``selector`` stay on the client.
    """

    name: str
    head: nn.Module
    bodies: list[nn.Module]
    tail: nn.Module
    noise: nn.Module
    model_config: ResNetConfig
    selector: Selector | None = None
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if not self.bodies:
            raise ValueError("a defense must deploy at least one server body")
        if self.selector is not None and self.selector.num_nets != len(self.bodies):
            raise ValueError("selector arity must match the number of bodies")
        self.eval()
        # Fuse the selected bodies into one batched pass for predict();
        # heterogeneous ensembles silently keep the looped path.
        self._stacked_active = None
        if self.selector is not None and self.selector.num_active > 1:
            self._stacked_active = StackedBodies.try_build(
                [self.bodies[i] for i in self.selector.indices], eval_mode=True)

    def eval(self) -> "FittedDefense":
        for module in (self.head, self.tail, self.noise, *self.bodies):
            module.eval()
        return self

    def intermediate(self, images: np.ndarray) -> np.ndarray:
        """The features the client transmits: ``M_c,h(x) + noise``.

        This is exactly what a semi-honest server intercepts and feeds to its
        inversion decoder.
        """
        with no_grad():
            return self.noise(self.head(Tensor(images))).data

    def predict(self, images: np.ndarray) -> np.ndarray:
        """End-to-end logits through the (possibly ensembled) pipeline."""
        with no_grad():
            features = self.noise(self.head(Tensor(images)))
            if self.selector is None:
                logits = self.tail(self.bodies[0](features))
            elif self._stacked_active is not None:
                outputs = unbind(self._stacked_active(features))
                logits = self.tail(self.selector.apply_subset(outputs))
            else:
                outputs = [self.bodies[i](features) for i in self.selector.indices]
                logits = self.tail(self.selector.apply_subset(outputs))
        return logits.data

    def accuracy(self, dataset: ArrayDataset, batch_size: int = 64) -> float:
        """Test accuracy of the defended pipeline."""
        return evaluate_accuracy(self.predict, dataset, batch_size=batch_size)


class AlwaysOnDropout(nn.Module):
    """Dropout that stays active at inference — the DR defense of He et al.
    (2021): randomising the transmitted features degrades the attacker's
    decoder, at some accuracy cost."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        from repro.utils.rng import new_rng
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else new_rng()

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn import functional as F
        return F.dropout(x, self.p, self._rng, training=True)
