"""Shredder baseline (Mireshghallah et al., ASPLOS 2020).

Shredder learns *noise distributions*: starting from a pre-trained network,
it optimises additive noise tensors at the split point to be as large as
possible (reducing the mutual information between the transmitted features
and the input) while keeping classification accuracy.  At inference a noise
tensor is sampled from the learned collection.

We reproduce the mechanism at the paper's operating point — the split after
the very first layer, where the paper observes Shredder cannot fully protect
the input: simple additive noise at ~3% accuracy cost still leaves images
recoverable (Section I).  The noise objective is

    L = CE(M(x; head fixed, noise n)) - mu * mean(|n|)

maximising the noise L1 norm against the accuracy constraint, which is the
published loss shape with the mutual-information term replaced by its
noise-magnitude surrogate.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.training import TrainingConfig, run_sgd
from repro.data.datasets import DatasetBundle
from repro.defenses.base import FittedDefense
from repro.defenses.baselines import _train_single_pipeline
from repro.models.resnet import ResNetConfig
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng, spawn_rng


class ShredderNoise(nn.Module):
    """A bank of learned additive noise tensors; one is sampled per call."""

    def __init__(self, bank: list[np.ndarray], rng: np.random.Generator | None = None):
        super().__init__()
        if not bank:
            raise ValueError("noise bank must not be empty")
        self._rng = rng if rng is not None else new_rng()
        for index, tensor in enumerate(bank):
            self.register_buffer(f"noise_{index}", tensor.astype(np.float32))
        self.bank_size = len(bank)

    def sample_index(self) -> int:
        return int(self._rng.integers(0, self.bank_size))

    def forward(self, x: Tensor) -> Tensor:
        noise = getattr(self, f"noise_{self.sample_index()}")
        return x + Tensor(noise)


def fit_shredder(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    bank_size: int = 3,
    init_sigma: float = 0.1,
    mu: float = 0.05,
    training: TrainingConfig | None = None,
    noise_training: TrainingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """Train the Shredder defense.

    First trains the plain network, then optimises ``bank_size`` noise
    tensors (network frozen) with the CE-minus-noise-magnitude objective.
    """
    rng = rng if rng is not None else new_rng()
    training = training if training is not None else TrainingConfig()
    noise_training = noise_training if noise_training is not None else TrainingConfig(
        epochs=max(1, training.epochs // 2), batch_size=training.batch_size, lr=0.05)

    net, history = _train_single_pipeline(bundle, model_config, nn.Identity(), training, rng)
    net.requires_grad_(False)
    net.eval()

    shape = model_config.intermediate_shape(bundle.image_shape[1])
    bank: list[np.ndarray] = []
    noise_histories: list[list[float]] = []
    for _ in range(bank_size):
        noise_rng = spawn_rng(rng)
        noise_param = nn.Parameter(noise_rng.normal(0.0, init_sigma, size=shape))

        def loss_fn(images, labels, noise_param=noise_param):
            features = net.head(Tensor(images)) + noise_param
            logits = net.tail(net.body(features))
            return F.cross_entropy(logits, labels) - mu * noise_param.abs().mean()

        noise_histories.append(
            run_sgd([noise_param], loss_fn, bundle.train, noise_training, spawn_rng(rng)))
        bank.append(noise_param.data.copy())

    noise = ShredderNoise(bank, spawn_rng(rng))
    return FittedDefense(
        name="shredder", head=net.head, bodies=[net.body], tail=net.tail,
        noise=noise, model_config=model_config,
        extras={"history": history, "noise_histories": noise_histories, "mu": mu})
