"""Single-network baselines of Tables I and II.

* ``fit_no_defense``  — "None": the unprotected split network.
* ``fit_single``      — "Single [30]": one network trained with a fixed
  Gaussian noise map at the split point (the non-ensembled counterpart of
  Ensembler; reference [30] is the calibrated-noise line of work).
* ``fit_dropout_single`` — "DR-single [34]": dropout on the transmitted
  features, active at inference.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.noise import FixedGaussianNoise
from repro.core.training import TrainingConfig, recalibrate_batchnorm, run_sgd
from repro.data.datasets import DatasetBundle
from repro.defenses.base import AlwaysOnDropout, FittedDefense
from repro.models.resnet import ResNet, ResNetConfig
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng, spawn_rng


def _train_single_pipeline(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    noise: nn.Module,
    training: TrainingConfig,
    rng: np.random.Generator,
) -> tuple[ResNet, list[float]]:
    """Train one complete split network with ``noise`` at the split point."""
    net = ResNet(model_config, rng=spawn_rng(rng))
    net.train()
    noise.train()

    def loss_fn(images, labels):
        features = noise(net.head(Tensor(images)))
        logits = net.tail(net.body(features))
        return F.cross_entropy(logits, labels)

    history = run_sgd(net.parameters(), loss_fn, bundle.train, training, spawn_rng(rng))

    def replay(images):
        return net.tail(net.body(noise(net.head(Tensor(images)))))

    recalibrate_batchnorm([net], replay, bundle.train.images, training.batch_size)
    net.eval()
    return net, history


def fit_no_defense(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    training: TrainingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """The unprotected pipeline ("None" row of Table II)."""
    rng = rng if rng is not None else new_rng()
    training = training if training is not None else TrainingConfig()
    net, history = _train_single_pipeline(bundle, model_config, nn.Identity(), training, rng)
    return FittedDefense(
        name="none", head=net.head, bodies=[net.body], tail=net.tail,
        noise=nn.Identity(), model_config=model_config,
        extras={"history": history})


def fit_single(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    sigma: float = 0.1,
    training: TrainingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """The "Single" baseline: fixed Gaussian noise, no ensemble."""
    rng = rng if rng is not None else new_rng()
    training = training if training is not None else TrainingConfig()
    shape = model_config.intermediate_shape(bundle.image_shape[1])
    noise = FixedGaussianNoise(shape, sigma, spawn_rng(rng))
    net, history = _train_single_pipeline(bundle, model_config, noise, training, rng)
    return FittedDefense(
        name="single", head=net.head, bodies=[net.body], tail=net.tail,
        noise=noise, model_config=model_config,
        extras={"history": history, "sigma": sigma})


def fit_dropout_single(
    bundle: DatasetBundle,
    model_config: ResNetConfig,
    p: float = 0.2,
    training: TrainingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> FittedDefense:
    """The "DR-single" baseline: inference-time dropout on the features."""
    rng = rng if rng is not None else new_rng()
    training = training if training is not None else TrainingConfig()
    noise = AlwaysOnDropout(p, spawn_rng(rng))
    net, history = _train_single_pipeline(bundle, model_config, noise, training, rng)
    return FittedDefense(
        name="dr-single", head=net.head, bodies=[net.body], tail=net.tail,
        noise=noise, model_config=model_config,
        extras={"history": history, "p": p})
