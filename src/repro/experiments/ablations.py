"""Ablation studies over Ensembler's design knobs (DESIGN.md A1-A4).

The paper fixes N=10, P in {4,3,5}, sigma=0.1 and a regulariser weight; these
runners sweep each knob to expose the mechanism: defense quality should
improve with ensemble size and noise diversity, and degrade when the stage-3
regulariser is removed (the "favored net" effect discussed in Section IV-C).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.brute_force import expected_attack_work
from repro.attacks.evaluation import best_single_net, run_adaptive_attack, run_single_net_attacks
from repro.attacks.mia import InversionAttack
from repro.core.selector import brute_force_search_space
from repro.defenses import fit_ensembler
from repro.experiments.common import get_preset
from repro.experiments.reporting import f2, f3, format_markdown_table, pct
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class AblationPoint:
    """One configuration of a sweep and its defense-quality metrics."""

    label: str
    accuracy: float
    adaptive_ssim: float
    best_single_ssim: float
    best_single_psnr: float


@dataclasses.dataclass(frozen=True)
class AblationResult:
    name: str
    points: tuple[AblationPoint, ...]

    def to_markdown(self) -> str:
        headers = [self.name, "Acc", "Adaptive SSIM", "Best-net SSIM", "Best-net PSNR"]
        rows = [[p.label, pct(p.accuracy), f3(p.adaptive_ssim), f3(p.best_single_ssim),
                 f2(p.best_single_psnr)] for p in self.points]
        return format_markdown_table(headers, rows)


def _evaluate_point(label, bundle, spec, config, preset, rng) -> AblationPoint:
    defense = fit_ensembler(bundle, spec.model_config, config=config, rng=spawn_rng(rng))
    accuracy = defense.accuracy(bundle.test)
    probe = bundle.test.images[:preset.probe_size]
    traffic = bundle.train.images[:preset.traffic_size]
    attack = InversionAttack(spec.model_config, bundle.image_shape, bundle.train,
                             preset.attack, rng=spawn_rng(rng))
    singles = run_single_net_attacks(defense, attack, probe, traffic_images=traffic,
                                     backend=preset.attack_backend)
    adaptive = run_adaptive_attack(defense, attack, probe)
    best_ssim = best_single_net(singles, "ssim")
    best_psnr = best_single_net(singles, "psnr")
    logger.info("%s: acc %.3f adaptive %.3f best %.3f", label, accuracy,
                adaptive.ssim, best_ssim.ssim)
    return AblationPoint(label, accuracy, adaptive.ssim, best_ssim.ssim, best_psnr.psnr)


def sweep_num_nets(values: tuple[int, ...] = (2, 4, 6), preset_name: str = "tiny",
                   seed: int = 0) -> AblationResult:
    """A1: defense quality as the ensemble grows (P scales with N/2)."""
    preset = get_preset(preset_name)
    spec = preset.dataset("cifar10")
    rng = new_rng(seed)
    bundle = spec.bundle_factory(spawn_rng(rng))
    points = []
    for num_nets in values:
        config = preset.ensembler_config(spec).replace(
            num_nets=num_nets, num_active=max(1, num_nets // 2))
        points.append(_evaluate_point(f"N={num_nets}", bundle, spec, config, preset, rng))
    return AblationResult("N", tuple(points))


def sweep_num_active(values: tuple[int, ...] = (1, 2, 3), preset_name: str = "tiny",
                     seed: int = 0) -> AblationResult:
    """A2a: selector size P at fixed N."""
    preset = get_preset(preset_name)
    spec = preset.dataset("cifar10")
    rng = new_rng(seed)
    bundle = spec.bundle_factory(spawn_rng(rng))
    points = []
    for num_active in values:
        config = preset.ensembler_config(spec).replace(num_active=num_active)
        points.append(_evaluate_point(f"P={num_active}", bundle, spec, config, preset, rng))
    return AblationResult("P", tuple(points))


def sweep_sigma(values: tuple[float, ...] = (0.0, 0.1, 0.3), preset_name: str = "tiny",
                seed: int = 0) -> AblationResult:
    """A2b: stage-1/3 noise scale sigma (0 removes the diversification)."""
    preset = get_preset(preset_name)
    spec = preset.dataset("cifar10")
    rng = new_rng(seed)
    bundle = spec.bundle_factory(spawn_rng(rng))
    points = []
    for sigma in values:
        config = preset.ensembler_config(spec).replace(sigma=sigma)
        points.append(_evaluate_point(f"sigma={sigma}", bundle, spec, config, preset, rng))
    return AblationResult("sigma", tuple(points))


def sweep_lambda(values: tuple[float, ...] = (0.0, 1.0, 10.0), preset_name: str = "tiny",
                 seed: int = 0) -> AblationResult:
    """A3: the Eq. 3 quasi-orthogonality regulariser weight."""
    preset = get_preset(preset_name)
    spec = preset.dataset("cifar10")
    rng = new_rng(seed)
    bundle = spec.bundle_factory(spawn_rng(rng))
    points = []
    for lam in values:
        config = preset.ensembler_config(spec).replace(lambda_reg=lam)
        points.append(_evaluate_point(f"lambda={lam}", bundle, spec, config, preset, rng))
    return AblationResult("lambda", tuple(points))


@dataclasses.dataclass(frozen=True)
class BruteForceCostTable:
    """A4: the O(2^N) attack-cost claim of Section III-D."""

    rows: tuple[tuple[int, int, int, float], ...]  # (N, subsets, C(N,P), hours at 1s/attack)

    def to_markdown(self) -> str:
        headers = ["N", "Subsets (2^N - 1)", "C(N, P=N//2)", "Hours @ 1 s/attack"]
        body = [[str(n), str(s), str(c), f2(h)] for n, s, c, h in self.rows]
        return format_markdown_table(headers, body)


def brute_force_cost_table(values: tuple[int, ...] = (4, 6, 8, 10, 12, 16)) -> BruteForceCostTable:
    """Tabulate the brute-force search space as N grows."""
    rows = []
    for n in values:
        subsets = brute_force_search_space(n)
        with_p = brute_force_search_space(n, n // 2)
        hours = expected_attack_work(n, single_attack_seconds=1.0) / 3600.0
        rows.append((n, subsets, with_p, hours))
    return BruteForceCostTable(tuple(rows))
