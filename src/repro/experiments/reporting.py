"""Markdown rendering of experiment results (the tables the paper prints)."""

from __future__ import annotations

from typing import Sequence


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells):
        return "| " + " | ".join(str(c).ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [fmt_row(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def pct(value: float) -> str:
    """Signed percentage with the paper's two decimals (e.g. '-2.13%')."""
    return f"{value * 100:+.2f}%"


def f3(value: float) -> str:
    """Three-decimal format (SSIM columns)."""
    return f"{value:.3f}"


def f2(value: float) -> str:
    """Two-decimal format (PSNR / seconds columns)."""
    return f"{value:.2f}"
