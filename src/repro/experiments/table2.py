"""Table II — every defense mechanism compared on CIFAR-10-like data.

Rows (as in the paper): None, Shredder, Single, DR-single, DR-10 (best
single-net attack by SSIM and by PSNR), and Ensembler (adaptive, best-SSIM,
best-PSNR).  All defenses share the training preset; ΔAcc is measured against
the None row's accuracy.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.evaluation import (
    best_single_net,
    run_adaptive_attack,
    run_single_net_attacks,
)
from repro.attacks.mia import InversionAttack
from repro.defenses import (
    fit_dropout_ensemble,
    fit_dropout_single,
    fit_ensembler,
    fit_no_defense,
    fit_shredder,
    fit_single,
)
from repro.experiments.common import ExperimentPreset, get_preset
from repro.experiments.reporting import f2, f3, format_markdown_table, pct
from repro.experiments.table1 import DefenseRow
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class Table2Result:
    """Full Table II."""

    preset: str
    base_accuracy: float
    rows: tuple[DefenseRow, ...]

    def row(self, name: str) -> DefenseRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def to_markdown(self) -> str:
        headers = ["Name", "dAcc", "SSIM", "PSNR"]
        body = [[row.name, pct(row.delta_acc), f3(row.ssim), f2(row.psnr)]
                for row in self.rows]
        return format_markdown_table(headers, body)


def _attack_one_body(defense, preset, bundle, probe, traffic, rng) -> DefenseRow:
    attack = InversionAttack(defense.model_config, bundle.image_shape, bundle.train,
                             preset.attack, rng=rng)
    results = run_single_net_attacks(defense, attack, probe, traffic_images=traffic,
                                     backend=preset.attack_backend)
    best = best_single_net(results, "ssim")
    return best


def run_table2(preset_name: str = "small", seed: int = 0,
               dropout_p: float = 0.2) -> Table2Result:
    """Regenerate Table II at the requested scale."""
    preset = get_preset(preset_name)
    spec = preset.dataset("cifar10")
    rng = new_rng(seed)
    bundle = spec.bundle_factory(spawn_rng(rng))
    probe = bundle.test.images[:preset.probe_size]
    traffic = bundle.train.images[:preset.traffic_size]

    rows: list[DefenseRow] = []

    base = fit_no_defense(bundle, spec.model_config, training=preset.train,
                          rng=spawn_rng(rng))
    base_acc = base.accuracy(bundle.test)
    best = _attack_one_body(base, preset, bundle, probe, traffic, spawn_rng(rng))
    rows.append(DefenseRow("None", 0.0, best.ssim, best.psnr))
    logger.info("None: acc %.3f ssim %.3f", base_acc, best.ssim)

    shredder = fit_shredder(bundle, spec.model_config, training=preset.train,
                            rng=spawn_rng(rng))
    best = _attack_one_body(shredder, preset, bundle, probe, traffic, spawn_rng(rng))
    rows.append(DefenseRow("Shredder", shredder.accuracy(bundle.test) - base_acc,
                           best.ssim, best.psnr))

    single = fit_single(bundle, spec.model_config, sigma=preset.sigma,
                        training=preset.train, rng=spawn_rng(rng))
    best = _attack_one_body(single, preset, bundle, probe, traffic, spawn_rng(rng))
    rows.append(DefenseRow("Single", single.accuracy(bundle.test) - base_acc,
                           best.ssim, best.psnr))

    dr_single = fit_dropout_single(bundle, spec.model_config, p=dropout_p,
                                   training=preset.train, rng=spawn_rng(rng))
    best = _attack_one_body(dr_single, preset, bundle, probe, traffic, spawn_rng(rng))
    rows.append(DefenseRow("DR-single", dr_single.accuracy(bundle.test) - base_acc,
                           best.ssim, best.psnr))

    dr_ens = fit_dropout_ensemble(bundle, spec.model_config,
                                  config=preset.ensembler_config(spec), p=dropout_p,
                                  rng=spawn_rng(rng))
    dr_acc = dr_ens.accuracy(bundle.test) - base_acc
    attack_dr = InversionAttack(spec.model_config, bundle.image_shape, bundle.train,
                                preset.attack, rng=spawn_rng(rng))
    dr_results = run_single_net_attacks(dr_ens, attack_dr, probe, traffic_images=traffic,
                                        backend=preset.attack_backend)
    dr_ssim = best_single_net(dr_results, "ssim")
    dr_psnr = best_single_net(dr_results, "psnr")
    rows.append(DefenseRow(f"DR-{preset.num_nets} - SSIM", dr_acc, dr_ssim.ssim, dr_ssim.psnr))
    rows.append(DefenseRow(f"DR-{preset.num_nets} - PSNR", dr_acc, dr_psnr.ssim, dr_psnr.psnr))

    ensembler = fit_ensembler(bundle, spec.model_config,
                              config=preset.ensembler_config(spec), rng=spawn_rng(rng))
    ours_acc = ensembler.accuracy(bundle.test) - base_acc
    attack_ours = InversionAttack(spec.model_config, bundle.image_shape, bundle.train,
                                  preset.attack, rng=spawn_rng(rng))
    ours_results = run_single_net_attacks(ensembler, attack_ours, probe,
                                          traffic_images=traffic,
                                          backend=preset.attack_backend)
    ours_adaptive = run_adaptive_attack(ensembler, attack_ours, probe)
    ours_ssim = best_single_net(ours_results, "ssim")
    ours_psnr = best_single_net(ours_results, "psnr")
    rows.append(DefenseRow("Ours - Adaptive", ours_acc, ours_adaptive.ssim,
                           ours_adaptive.psnr))
    rows.append(DefenseRow("Ours - SSIM", ours_acc, ours_ssim.ssim, ours_ssim.psnr))
    rows.append(DefenseRow("Ours - PSNR", ours_acc, ours_psnr.ssim, ours_psnr.psnr))

    return Table2Result(preset.name, base_acc, tuple(rows))
