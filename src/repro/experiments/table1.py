"""Table I — defense quality of Ensembler vs the Single baseline across the
three datasets (CIFAR-10-like, CIFAR-100-like, CelebA-HQ-like).

For each dataset the runner trains the unprotected reference (for ΔAcc), the
Single baseline and Ensembler, then mounts the two attack constructions of
Section III-B and reports the paper's four rows:

    Single         — strongest attack on the single-net baseline
    Ours-Adaptive  — attack trained on all N server nets
    Ours-SSIM      — strongest single-net attack by SSIM (worst-case defense)
    Ours-PSNR      — strongest single-net attack by PSNR
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.evaluation import (
    best_single_net,
    evaluate_reconstruction,
    run_adaptive_attack,
    run_single_net_attacks,
)
from repro.attacks.mia import InversionAttack
from repro.defenses import fit_ensembler, fit_no_defense, fit_single
from repro.experiments.common import DatasetSpec, ExperimentPreset, get_preset
from repro.experiments.reporting import f2, f3, format_markdown_table, pct
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class DefenseRow:
    """One table row: a defense/attack combination and its three metrics."""

    name: str
    delta_acc: float  # defended accuracy minus unprotected accuracy
    ssim: float
    psnr: float


@dataclasses.dataclass(frozen=True)
class DatasetTable:
    """Table I block for one dataset."""

    dataset: str
    base_accuracy: float
    rows: tuple[DefenseRow, ...]

    def row(self, name: str) -> DefenseRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """Full Table I across datasets."""

    preset: str
    tables: tuple[DatasetTable, ...]

    def to_markdown(self) -> str:
        headers = ["Dataset", "Name", "dAcc", "SSIM", "PSNR"]
        rows = []
        for table in self.tables:
            for row in table.rows:
                rows.append([table.dataset, row.name, pct(row.delta_acc),
                             f3(row.ssim), f2(row.psnr)])
        return format_markdown_table(headers, rows)


def run_dataset(spec: DatasetSpec, preset: ExperimentPreset,
                rng: np.random.Generator) -> DatasetTable:
    """Run the Table I protocol for a single dataset."""
    bundle = spec.bundle_factory(spawn_rng(rng))
    probe = bundle.test.images[:preset.probe_size]
    traffic = bundle.train.images[:preset.traffic_size]

    base = fit_no_defense(bundle, spec.model_config, training=preset.train,
                          rng=spawn_rng(rng))
    base_acc = base.accuracy(bundle.test)
    logger.info("[%s] unprotected accuracy %.3f", spec.key, base_acc)

    # --- Single baseline ------------------------------------------------
    single = fit_single(bundle, spec.model_config, sigma=preset.sigma,
                        training=preset.train, rng=spawn_rng(rng))
    single_acc = single.accuracy(bundle.test)
    attack = InversionAttack(spec.model_config, bundle.image_shape, bundle.train,
                             preset.attack, rng=spawn_rng(rng))
    single_results = run_single_net_attacks(single, attack, probe, traffic_images=traffic,
                                            backend=preset.attack_backend)
    single_best = best_single_net(single_results, "ssim")
    logger.info("[%s] single: acc %.3f ssim %.3f", spec.key, single_acc, single_best.ssim)

    # --- Ensembler -------------------------------------------------------
    ensembler = fit_ensembler(bundle, spec.model_config,
                              config=preset.ensembler_config(spec), rng=spawn_rng(rng))
    ours_acc = ensembler.accuracy(bundle.test)
    attack_ours = InversionAttack(spec.model_config, bundle.image_shape, bundle.train,
                                  preset.attack, rng=spawn_rng(rng))
    ours_results = run_single_net_attacks(ensembler, attack_ours, probe,
                                          traffic_images=traffic,
                                          backend=preset.attack_backend)
    ours_adaptive = run_adaptive_attack(ensembler, attack_ours, probe)
    ours_best_ssim = best_single_net(ours_results, "ssim")
    ours_best_psnr = best_single_net(ours_results, "psnr")
    logger.info("[%s] ensembler: acc %.3f adaptive ssim %.3f best ssim %.3f",
                spec.key, ours_acc, ours_adaptive.ssim, ours_best_ssim.ssim)

    rows = (
        DefenseRow("Single", single_acc - base_acc, single_best.ssim, single_best.psnr),
        DefenseRow("Ours - Adaptive", ours_acc - base_acc,
                   ours_adaptive.ssim, ours_adaptive.psnr),
        DefenseRow("Ours - SSIM", ours_acc - base_acc,
                   ours_best_ssim.ssim, ours_best_ssim.psnr),
        DefenseRow("Ours - PSNR", ours_acc - base_acc,
                   ours_best_psnr.ssim, ours_best_psnr.psnr),
    )
    return DatasetTable(spec.key, base_acc, rows)


def run_table1(preset_name: str = "small", seed: int = 0,
               datasets: tuple[str, ...] | None = None) -> Table1Result:
    """Regenerate Table I at the requested scale."""
    preset = get_preset(preset_name)
    rng = new_rng(seed)
    selected = preset.datasets if datasets is None else tuple(
        preset.dataset(key) for key in datasets)
    tables = tuple(run_dataset(spec, preset, rng) for spec in selected)
    return Table1Result(preset.name, tables)
