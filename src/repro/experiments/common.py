"""Scale presets and dataset specifications shared by every experiment.

The paper's experiments run ResNet-18 (width 64) on full CIFAR-10/100 and
CelebA-HQ with N=10 server nets; that takes GPU-days.  The presets keep the
*structure* of every experiment — the h=1/t=1 split, the ensemble size N,
the per-dataset selector sizes P={4,3,5}, the noise σ=0.1, both attack
constructions — while scaling width, image size and dataset size so the whole
table regenerates on a CPU:

* ``tiny``  — unit/integration tests (N=4, seconds per experiment);
* ``small`` — benchmark + EXPERIMENTS.md scale (N=10, minutes per table);
* ``paper`` — the paper's configuration (runs, but budget hours per stage).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.attacks.mia import AttackConfig
from repro.core.training import EnsemblerConfig, TrainingConfig
from repro.data.datasets import DatasetBundle
from repro.data.synthetic import celeba_hq_like, cifar10_like, cifar100_like
from repro.models.resnet import ResNetConfig
from repro.serving.service import ServingConfig


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset plus its paper-prescribed configuration."""

    key: str
    bundle_factory: Callable[[np.random.Generator], DatasetBundle]
    model_config: ResNetConfig
    num_active: int  # the paper's P for this dataset


@dataclasses.dataclass(frozen=True)
class ExperimentPreset:
    """Everything an experiment runner needs at one scale."""

    name: str
    datasets: tuple[DatasetSpec, ...]
    num_nets: int
    sigma: float
    lambda_reg: float
    train: TrainingConfig
    stage3: TrainingConfig
    attack: AttackConfig
    probe_size: int
    traffic_size: int
    # Ensemble execution backend: "batched" fuses the N server bodies into
    # one stacked NumPy pass (the default serving path); "looped" keeps the
    # reference per-body Python loop.
    backend: str = "batched"
    # Multi-tenant scheduler shape: how many concurrent client uploads one
    # InferenceService tick coalesces, and the backpressure bound.
    serving: ServingConfig = ServingConfig()

    def dataset(self, key: str) -> DatasetSpec:
        for spec in self.datasets:
            if spec.key == key:
                return spec
        raise KeyError(f"preset '{self.name}' has no dataset '{key}'")

    @property
    def attack_backend(self) -> str:
        """The matching multi-attack backend: fused sweeps iff the ensemble
        execution is batched, so one switch flips the whole experiment."""
        return "fused" if self.backend == "batched" else "looped"

    def inference_service(self, server_or_bodies, *, scheduler: str | None = None,
                          codec: str | None = None, rate_limit=None):
        """Build the preset-shaped multi-tenant serving front-end.

        Accepts a configured :class:`~repro.ci.pipeline.Server` or a plain
        body list (wrapped with this preset's execution backend), and
        applies the preset's :class:`ServingConfig` scheduler shape.
        ``scheduler`` / ``codec`` / ``rate_limit`` override the preset's
        policy without rebuilding the config (e.g. ``scheduler="weighted"``
        for proportional tenant shares, ``codec="int8"`` for quantised
        downlinks, ``rate_limit=(100.0, 10)`` for a default per-session
        token bucket).  Per-session QoS — a tenant's fair-share ``weight``
        or its own bucket — is negotiated at ``open_session`` on the
        returned service.
        """
        from repro.ci.pipeline import Server
        from repro.serving.service import InferenceService, RateLimit

        if not isinstance(server_or_bodies, Server):
            server_or_bodies = Server(list(server_or_bodies), backend=self.backend)
        config = self.serving
        overrides = {k: v for k, v in
                     (("scheduler", scheduler), ("codec", codec),
                      ("rate_limit", RateLimit.parse(rate_limit)))
                     if v is not None}
        if overrides:
            config = dataclasses.replace(config, **overrides)
        return InferenceService.from_config(server_or_bodies, config)

    def ensembler_config(self, spec: DatasetSpec) -> EnsemblerConfig:
        return EnsemblerConfig(
            num_nets=self.num_nets,
            num_active=spec.num_active,
            sigma=self.sigma,
            lambda_reg=self.lambda_reg,
            stage1=self.train,
            stage3=self.stage3,
            backend=self.backend,
        )


def _stages(width: int, num_stages: int) -> tuple[int, ...]:
    return tuple(width * 2**i for i in range(num_stages))


def _tiny_preset() -> ExperimentPreset:
    def cifar10(rng):
        return cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4,
                            rng=rng)

    def cifar100(rng):
        return cifar100_like(size=16, train_per_class=4, test_per_class=2, num_classes=8,
                             rng=rng)

    def celeba(rng):
        return celeba_hq_like(size=16, num_identities=4, train_per_identity=8,
                              test_per_identity=4, rng=rng)

    def config(classes, maxpool):
        return ResNetConfig(num_classes=classes, stem_channels=8,
                            stage_channels=_stages(8, 2), blocks_per_stage=(1, 1),
                            use_maxpool=maxpool)

    train = TrainingConfig(epochs=2, batch_size=16, lr=0.05)
    return ExperimentPreset(
        name="tiny",
        datasets=(
            DatasetSpec("cifar10", cifar10, config(4, True), num_active=2),
            DatasetSpec("cifar100", cifar100, config(8, False), num_active=2),
            DatasetSpec("celeba", celeba, config(4, False), num_active=2),
        ),
        num_nets=4,
        sigma=0.1,
        lambda_reg=1.0,
        train=train,
        stage3=train,
        attack=AttackConfig(
            shadow=TrainingConfig(epochs=3, batch_size=16, lr=2e-3, optimizer="adam"),
            decoder=TrainingConfig(epochs=3, batch_size=16, lr=3e-3, optimizer="adam"),
            decoder_width=16,
        ),
        probe_size=8,
        traffic_size=32,
        serving=ServingConfig(max_batch=4, max_queue=16),
    )


def _small_preset() -> ExperimentPreset:
    def cifar10(rng):
        return cifar10_like(size=16, train_per_class=32, test_per_class=8,
                            num_classes=10, rng=rng)

    def cifar100(rng):
        # The 100-class set scaled to 20 classes (same classes-per-sample
        # ratio); the paper's no-maxpool variant is preserved.
        return cifar100_like(size=16, train_per_class=16, test_per_class=4,
                             num_classes=20, rng=rng)

    def celeba(rng):
        return celeba_hq_like(size=16, num_identities=8, train_per_identity=40,
                              test_per_identity=8, rng=rng)

    def config(classes, maxpool):
        return ResNetConfig(num_classes=classes, stem_channels=16,
                            stage_channels=_stages(16, 2), blocks_per_stage=(1, 1),
                            use_maxpool=maxpool)

    train = TrainingConfig(epochs=5, batch_size=32, lr=0.05)
    return ExperimentPreset(
        name="small",
        datasets=(
            DatasetSpec("cifar10", cifar10, config(10, True), num_active=4),
            DatasetSpec("cifar100", cifar100, config(20, False), num_active=3),
            DatasetSpec("celeba", celeba, config(8, False), num_active=5),
        ),
        num_nets=10,
        sigma=0.1,
        lambda_reg=1.0,
        train=train,
        stage3=train,
        attack=AttackConfig(
            shadow=TrainingConfig(epochs=12, batch_size=32, lr=2e-3, optimizer="adam"),
            decoder=TrainingConfig(epochs=10, batch_size=32, lr=3e-3, optimizer="adam"),
            decoder_width=32,
        ),
        probe_size=16,
        traffic_size=256,
        serving=ServingConfig(max_batch=8, max_queue=64),
    )


def _paper_preset() -> ExperimentPreset:
    def cifar10(rng):
        return cifar10_like(size=32, train_per_class=5000, test_per_class=1000, rng=rng)

    def cifar100(rng):
        return cifar100_like(size=32, train_per_class=500, test_per_class=100, rng=rng)

    def celeba(rng):
        return celeba_hq_like(size=64, num_identities=30, train_per_identity=150,
                              test_per_identity=30, rng=rng)

    train = TrainingConfig(epochs=30, batch_size=128, lr=0.1)
    return ExperimentPreset(
        name="paper",
        datasets=(
            DatasetSpec("cifar10", cifar10, ResNetConfig(num_classes=10), num_active=4),
            DatasetSpec("cifar100", cifar100,
                        ResNetConfig(num_classes=100, use_maxpool=False), num_active=3),
            DatasetSpec("celeba", celeba,
                        ResNetConfig(num_classes=30, use_maxpool=False), num_active=5),
        ),
        num_nets=10,
        sigma=0.1,
        lambda_reg=1.0,
        train=train,
        stage3=train,
        attack=AttackConfig(
            shadow=TrainingConfig(epochs=30, batch_size=128, lr=2e-3, optimizer="adam"),
            decoder=TrainingConfig(epochs=30, batch_size=128, lr=3e-3, optimizer="adam"),
            decoder_width=64,
        ),
        probe_size=64,
        traffic_size=1024,
        serving=ServingConfig(max_batch=16, max_queue=256),
    )


_PRESET_FACTORIES = {
    "tiny": _tiny_preset,
    "small": _small_preset,
    "paper": _paper_preset,
}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a scale preset by name ('tiny', 'small' or 'paper')."""
    try:
        return _PRESET_FACTORIES[name]()
    except KeyError:
        raise KeyError(f"unknown preset '{name}'; choose from {sorted(_PRESET_FACTORIES)}")
