"""Table III — inference latency of Standard CI, Ensembler and STAMP.

Runs the calibrated latency model (see :mod:`repro.latency`) on the actual
FLOP counts and wire sizes of the paper-scale ResNet-18 split (batch 128),
and cross-checks the byte accounting against the live :mod:`repro.ci`
protocol.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ci.channel import Channel, payload_nbytes
from repro.latency import LatencyBreakdown, LatencyModel, StampModel, workload_from_model
from repro.experiments.reporting import f2, format_markdown_table
from repro.models.resnet import ResNetConfig


@dataclasses.dataclass(frozen=True)
class Table3Result:
    """Full Table III (seconds)."""

    standard: LatencyBreakdown
    ensembler: LatencyBreakdown
    stamp: LatencyBreakdown
    num_nets: int
    batch_size: int

    @property
    def overhead_fraction(self) -> float:
        """Ensembler's total-time overhead over standard CI (paper: 4.8%)."""
        return (self.ensembler.total_s - self.standard.total_s) / self.standard.total_s

    def to_markdown(self) -> str:
        headers = ["Name", "Client", "Server", "Communication", "Total"]

        def row(r: LatencyBreakdown, dashes: bool = False):
            if dashes:
                return [r.name, "-", "-", "-", f2(r.total_s)]
            return [r.name, f2(r.client_s), f2(r.server_s), f2(r.communication_s),
                    f2(r.total_s)]

        return format_markdown_table(
            headers, [row(self.standard), row(self.ensembler), row(self.stamp, dashes=True)])


def simulate_channel_bytes(model_config: ResNetConfig, image_hw: int, batch_size: int,
                           num_nets: int) -> tuple[int, int]:
    """Exercise the live CI channel with correctly-shaped payloads and return
    (uplink_bytes, downlink_bytes) for the ensemble protocol."""
    channel = Channel()
    inter_shape = model_config.intermediate_shape(image_hw)
    features = np.zeros((batch_size, *inter_shape), dtype=np.float32)
    channel.send_up(features)
    returned = [np.zeros((batch_size, model_config.feature_dim), dtype=np.float32)
                for _ in range(num_nets)]
    for payload in returned:
        channel.send_down(payload)
    return channel.stats.uplink_bytes, channel.stats.downlink_bytes


def run_table3(model_config: ResNetConfig | None = None, image_hw: int = 32,
               batch_size: int = 128, num_nets: int = 10,
               model: LatencyModel | None = None) -> Table3Result:
    """Regenerate Table III (defaults follow the paper's measurement setup)."""
    model_config = model_config if model_config is not None else ResNetConfig(num_classes=10)
    latency = model if model is not None else LatencyModel()
    workload = workload_from_model(model_config, image_hw, batch_size)
    standard = latency.standard_ci(workload)
    ensembler = latency.ensembler(workload, num_nets)
    stamp = StampModel().from_plaintext(standard)
    return Table3Result(standard, ensembler, stamp, num_nets, batch_size)
