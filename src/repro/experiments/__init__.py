"""Experiment runners regenerating every table of the paper.

* :func:`run_table1` — Table I (defense quality across datasets)
* :func:`run_table2` — Table II (defense mechanisms on CIFAR-10)
* :func:`run_table3` — Table III (latency)
* :mod:`repro.experiments.ablations` — N/P/sigma/lambda sweeps, brute-force cost
"""

from repro.experiments.ablations import (
    AblationResult,
    brute_force_cost_table,
    sweep_lambda,
    sweep_num_active,
    sweep_num_nets,
    sweep_sigma,
)
from repro.experiments.common import ExperimentPreset, get_preset
from repro.experiments.table1 import DatasetTable, DefenseRow, Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3

__all__ = [
    "AblationResult",
    "DatasetTable",
    "DefenseRow",
    "ExperimentPreset",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "brute_force_cost_table",
    "get_preset",
    "run_table1",
    "run_table2",
    "run_table3",
    "sweep_lambda",
    "sweep_num_active",
    "sweep_num_nets",
    "sweep_sigma",
]
