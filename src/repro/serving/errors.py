"""Failure semantics of the serving layer: typed errors and the request
lifecycle.

Fault tolerance starts with a *vocabulary*: every way a request can fail
must have exactly one typed name, so clients can program against the
failure (retry it, surface it, shed it) instead of pattern-matching
message strings.  Two families live here:

* the :class:`ServingError` exception hierarchy — **everything** the
  serving stack raises on a request path derives from it, so
  ``except ServingError`` is a complete client-side safety net (the
  regression test in ``tests/test_lifecycle.py`` holds the stack to
  this);
* the :class:`RequestState` lifecycle — each submitted request ends in
  **exactly one** terminal state, which is what makes load shedding,
  deadline expiry and crash recovery *accountable*: the event-driven
  simulator proves conservation (submitted == sum of terminals) per
  replay.

Request lifecycle
-----------------
::

                        submit
                          │
          ┌──────────┬────┴─────┐
          ▼          ▼          ▼
      REJECTED   THROTTLED   QUEUED ◄──────────┐
      (capacity) (rate       │                 │ retry
                  limit)     │                 │ (same request id,
          ┌─────────┬────────┼────────┐        │  deduplicated)
          ▼         ▼        ▼        ▼        │
      CANCELLED  EXPIRED  COMPLETED  FAILED ───┘
      (session   (dead-   (served)  (tick crash /
       closed)    line)              corrupt frame)

``REJECTED`` / ``THROTTLED`` / ``EXPIRED`` / ``FAILED`` are *retryable*
terminals: resubmitting the same request id re-enters ``QUEUED`` and the
request's final state is whatever its last attempt reached, so a request
retried to completion counts once, as ``COMPLETED``.
"""

from __future__ import annotations

import enum


class ServingError(RuntimeError):
    """Root of every error the serving stack raises on a request path.

    Clients need exactly one ``except`` clause: anything
    :meth:`~repro.serving.session.Session.submit` or
    :meth:`~repro.serving.session.Session.result` raises about a request
    derives from this class (enforced by a regression test), so no raw
    ``struct.error`` / ``ValueError`` / ``numpy`` exception ever escapes
    the wire or the tick loop.
    """


class BackpressureError(ServingError):
    """The service queue is full; the client must retry later."""


class RateLimitedError(ServingError):
    """The tenant exhausted its token bucket; retry after tokens refill.

    Raised by :meth:`InferenceService.submit` *before* any bytes are
    accounted, and counted in ``ServiceStats.throttled_requests`` — a
    per-tenant policy rejection, distinct from the capacity
    :class:`BackpressureError`.
    """


class ProtocolError(ServingError, ValueError):
    """Raised when bytes on the wire do not parse as a valid message.

    Covers malformed, truncated and checksum-failing frames.  Subclasses
    ``ValueError`` as well for backwards compatibility with pre-hierarchy
    callers that caught ``ValueError``.
    """


class UnknownSessionError(ServingError, KeyError):
    """The request names a session id the service does not know.

    Raised by :meth:`InferenceService.submit` for never-opened or
    already-closed sessions.  Subclasses ``KeyError`` as well for
    backwards compatibility with pre-hierarchy callers.
    """


class DeadlineExceededError(ServingError):
    """The request's deadline passed before a tick could serve it.

    Raised by :meth:`~repro.serving.session.Session.result` for a request
    the service shed pre-schedule (``ServingConfig.shed_expired``);
    counted in ``ServiceStats.expired_requests``.
    """


class TickFailedError(ServingError):
    """The stacked pass serving this request crashed beyond its retries.

    A failed tick (injected via :class:`~repro.serving.faults.FaultInjector`
    or a real exception out of the fused engine) re-queues its group up to
    ``ServingConfig.tick_retries`` times; a request that keeps landing in
    crashing passes becomes terminally ``FAILED`` and its
    :meth:`~repro.serving.session.Session.result` raises this.
    """


class RequestCancelledError(ServingError):
    """The request's session was closed while the request was queued.

    ``close_session`` cancels queued work exactly once (counted in
    ``ServiceStats.cancelled_requests``); asking for such a request's
    result raises this.
    """


class PrivacyExhaustedError(ServingError):
    """The session's privacy budget is spent; no further queries serve.

    Raised by :meth:`InferenceService.submit` once the session's
    :class:`~repro.privacy.budget.PrivacyBudget` reports exhaustion —
    either the cumulative Rényi ε(α) or the ``q_budget`` query cap is
    depleted.  The session is closed for new work on first refusal
    (queued requests are cancelled, counted in
    ``ServiceStats.privacy_refusals`` /
    ``ServiceStats.privacy_exhausted_sessions``) but stays registered as
    a tombstone, so later submits keep raising this error rather than
    :class:`UnknownSessionError`.  Deliberately **not** retryable: the
    budget never refills, so resubmitting can never succeed.
    """


class CheckpointError(ServingError, ValueError):
    """A session checkpoint blob failed to decode or to apply.

    Raised by :mod:`repro.serving.checkpoint` for truncated, bit-flipped,
    version-skewed or otherwise corrupt checkpoint bytes — and for a
    decoded state that contradicts the session it would restore (wrong
    selector subset, wrong session id).  A checkpoint must restore
    exactly or not at all: failover never adopts silently-wrong session
    state.
    """


class RequestState(enum.Enum):
    """Lifecycle of one submitted request (see the module diagram).

    ``QUEUED`` is the only non-terminal state; every submitted request
    ends in exactly one of the six terminal states, which is the
    conservation invariant ``SimulationReport.conservation_ok`` checks.
    """

    QUEUED = "queued"        # admitted (or in flight); not yet terminal
    COMPLETED = "completed"  # served by a tick; response delivered
    EXPIRED = "expired"      # deadline passed; shed pre-schedule
    CANCELLED = "cancelled"  # session closed with the request queued
    REJECTED = "rejected"    # shed at admission/serve: capacity or privacy
    THROTTLED = "throttled"  # shed at admission: token bucket empty
    FAILED = "failed"        # corrupt frame or tick crash beyond retries

    @property
    def terminal(self) -> bool:
        """Whether this state ends the request's lifecycle."""
        return self is not RequestState.QUEUED

    @property
    def retryable(self) -> bool:
        """Whether a client may resubmit the same request id from here.

        ``CANCELLED`` is not retryable (the session is gone) and
        ``COMPLETED``/``QUEUED`` need no retry — resubmitting either is
        deduplicated service-side rather than re-queued.
        """
        return self in (RequestState.REJECTED, RequestState.THROTTLED,
                        RequestState.EXPIRED, RequestState.FAILED)


#: The terminal states, in reporting order (conservation checks sum these).
TERMINAL_STATES = tuple(s for s in RequestState if s.terminal)
