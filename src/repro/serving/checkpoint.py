"""Session checkpointing: versioned, CRC-checked state for failover.

A replica dying must not take its tenants' sessions with it.  Everything
a replacement replica needs to keep serving a session is captured in a
:class:`SessionState` — the private selector subset, the noise-map
provenance (seed/shape/sigma, enough to redraw the *bit-identical* map),
the negotiated codec and tenant weight, the rate-limiter token level,
the request-id high-water mark, and the lifecycle state of every tracked
request — and serialised to a versioned, CRC32-trailed byte blob.

The encoding follows the wire-protocol discipline of
:mod:`repro.serving.protocol`: fixed little-endian layout, explicit
magic and version, and a CRC32 over every preceding byte, so a
truncated, bit-flipped, version-skewed or plain garbage blob is rejected
with a typed :class:`~repro.serving.errors.CheckpointError` — a
checkpoint restores exactly or not at all; failover never adopts
silently-wrong session state.

Byte layout (version 2, little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     4  magic ``b"ENCP"``
         4     2  version (u16) = 2
         6     2  codec wire code (u16)
         8     8  session id (u64)
        16     4  incarnation epoch (u32)
        20     8  next request id — the high-water mark (u64)
        28     8  tenant weight (f64)
        36     2  flags (u16): 1=selector, 2=noise, 4=limiter, 8=privacy
        [flag 1]  selector block: num_nets u16, count u16, count x u16
        [flag 2]  noise block: seed u64, ndim u16, sigma f64, ndim x u32
        [flag 4]  limiter block: rate f64, burst f64, tokens f64
        [flag 8]  privacy block: alpha f64, eps f64, q_budget u64,
                  spent f64, queries charged u64, rotation index u64
         ...   4  request-state count (u32)
         ...   9  per request: request id u64, state code u8
        -4     4  CRC32 over all preceding bytes (u32)

Version 1 blobs (no privacy flag defined) still decode — the privacy
section simply restores absent — but a v1 blob *carrying* flag 8 is
rejected as unknown, exactly as a v1 build would have rejected it.  The
privacy block checkpoints accounting *state* (spent ε(α), charged
queries, rotation index); ladder knobs and the rotation policy are
deployment config, re-supplied at restore time like the model halves.

Two restore paths cover the two failover shapes:

* :meth:`SessionState.restore` builds a **fresh** session on a
  replacement replica from the checkpoint alone (plus the client-side
  head/tail modules, which are code, not state) — the bit-exact path:
  the rebuilt session selects, de-noises and decodes identically to the
  original, byte for byte.
* :meth:`SessionState.apply` **merges** a checkpoint onto a live
  session object that survived its replica (the fleet failover path):
  client-side truth that is newer than the snapshot wins, the
  checkpoint contributes the conservative limiter token level and the
  request-id floor, and the incarnation epoch bumps so the restored
  session's retry jitter decorrelates from its predecessor's.
"""

from __future__ import annotations

import dataclasses
import math
import struct
import zlib

from repro.serving.errors import CheckpointError, RequestState
from repro.serving.protocol import Codec

#: Leading bytes of every checkpoint blob.
CHECKPOINT_MAGIC = b"ENCP"

#: Version of the layout documented in the module docstring.  Version 1
#: blobs (same layout minus the privacy flag) still decode; any other
#: version raises :class:`CheckpointError`.
CHECKPOINT_VERSION = 2

_FLAG_SELECTOR = 1
_FLAG_NOISE = 2
_FLAG_LIMITER = 4
_FLAG_PRIVACY = 8
#: Flags each decodable version understands: a v1 blob carrying the
#: privacy flag is rejected exactly as a v1 build would reject it.
_KNOWN_FLAGS_BY_VERSION = {
    1: _FLAG_SELECTOR | _FLAG_NOISE | _FLAG_LIMITER,
    2: _FLAG_SELECTOR | _FLAG_NOISE | _FLAG_LIMITER | _FLAG_PRIVACY,
}
_KNOWN_FLAGS = _KNOWN_FLAGS_BY_VERSION[CHECKPOINT_VERSION]

_HEADER = struct.Struct("<4sHHQIQdH")
_SEL_HEAD = struct.Struct("<HH")
_NOISE_HEAD = struct.Struct("<QHd")
_LIMITER = struct.Struct("<ddd")
_PRIVACY = struct.Struct("<ddQdQQ")
_STATE_COUNT = struct.Struct("<I")
_STATE_ENTRY = struct.Struct("<QB")
_CRC = struct.Struct("<I")

#: Stable wire codes for request lifecycle states (definition order of
#: the enum; appending new states keeps old blobs decodable).
_STATE_CODES = {state: code for code, state in enumerate(RequestState)}
_CODE_STATES = {code: state for state, code in _STATE_CODES.items()}


class _Reader:
    """Bounds-checked cursor over a checkpoint body; typed errors only."""

    def __init__(self, blob: bytes):
        self.blob = blob
        self.offset = 0

    def unpack(self, fmt: struct.Struct) -> tuple:
        end = self.offset + fmt.size
        if end > len(self.blob):
            raise CheckpointError(
                f"checkpoint truncated: needed {fmt.size} bytes at offset "
                f"{self.offset}, only {len(self.blob) - self.offset} remain")
        values = fmt.unpack_from(self.blob, self.offset)
        self.offset = end
        return values

    def unpack_array(self, code: str, count: int) -> tuple:
        return self.unpack(struct.Struct(f"<{count}{code}"))

    @property
    def remaining(self) -> int:
        return len(self.blob) - self.offset


@dataclasses.dataclass
class SessionState:
    """Everything a replacement replica needs to keep serving a session.

    Captured from a live :class:`~repro.serving.session.Session` with
    :meth:`capture`, serialised with :meth:`to_bytes` and decoded with
    :meth:`from_bytes` (which raises
    :class:`~repro.serving.errors.CheckpointError` on any corruption).
    ``selector`` is ``(num_nets, indices)`` or ``None``; ``noise`` is
    ``(seed, shape, sigma)`` or ``None`` (unknown provenance — e.g. an
    explicit noise module — cannot checkpoint and restores noiseless);
    ``limiter`` is ``(rate_per_s, burst, tokens)`` or ``None``;
    ``privacy`` is ``(alpha, eps, q_budget, spent, queries_charged,
    rotation_index)`` or ``None`` (unmetered session — present only when
    the session carries a :class:`~repro.privacy.budget.PrivacyBudget`);
    ``states`` maps request ids to their lifecycle states at snapshot
    time.
    """

    session_id: int
    epoch: int = 0
    codec: Codec = Codec.FP32
    weight: float = 1.0
    next_request_id: int = 0
    selector: tuple[int, tuple[int, ...]] | None = None
    noise: tuple[int, tuple[int, ...], float] | None = None
    limiter: tuple[float, float, float] | None = None
    privacy: tuple[float, float, int, float, int, int] | None = None
    states: dict[int, RequestState] = dataclasses.field(default_factory=dict)

    # -- capture --------------------------------------------------------

    @classmethod
    def capture(cls, session) -> "SessionState":
        """Snapshot a live session's checkpointable state.

        The limiter's bucket is refilled up to the owning service's
        clock first, so the captured token level is the level a
        replacement replica should honour *as of the snapshot*.
        """
        selector = None
        if session.client._selector is not None:
            sel = session.client._selector
            selector = (int(sel.num_nets),
                        tuple(int(i) for i in sel.indices))
        noise = None
        if session.noise_seed is not None and session.noise_shape is not None:
            noise = (int(session.noise_seed),
                     tuple(int(d) for d in session.noise_shape),
                     float(session.noise_sigma))
        limiter = None
        if session.limiter is not None:
            lim = session.limiter
            limiter = (float(lim.limit.rate_per_s), float(lim.limit.burst),
                       float(lim.available(session._service.now)))
        privacy = None
        if getattr(session, "privacy", None) is not None:
            policy = session.privacy.policy
            rotation_index = (int(session.rotation.rotation_index)
                              if getattr(session, "rotation", None) is not None
                              else 0)
            privacy = (float(policy.alpha), float(policy.eps),
                       int(policy.q_budget), float(session.privacy.spent),
                       int(session.privacy.queries_charged), rotation_index)
        return cls(session_id=int(session.session_id),
                   epoch=int(session.epoch),
                   codec=session.codec,
                   weight=float(session.weight),
                   next_request_id=int(session._next_request_id),
                   selector=selector, noise=noise, limiter=limiter,
                   privacy=privacy, states=dict(session._states))

    # -- wire -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the versioned, CRC32-trailed layout."""
        flags = ((_FLAG_SELECTOR if self.selector is not None else 0)
                 | (_FLAG_NOISE if self.noise is not None else 0)
                 | (_FLAG_LIMITER if self.limiter is not None else 0)
                 | (_FLAG_PRIVACY if self.privacy is not None else 0))
        parts = [_HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                              int(self.codec), self.session_id, self.epoch,
                              self.next_request_id, self.weight, flags)]
        if self.selector is not None:
            num_nets, indices = self.selector
            parts.append(_SEL_HEAD.pack(num_nets, len(indices)))
            parts.append(struct.pack(f"<{len(indices)}H", *indices))
        if self.noise is not None:
            seed, shape, sigma = self.noise
            parts.append(_NOISE_HEAD.pack(seed, len(shape), sigma))
            parts.append(struct.pack(f"<{len(shape)}I", *shape))
        if self.limiter is not None:
            parts.append(_LIMITER.pack(*self.limiter))
        if self.privacy is not None:
            parts.append(_PRIVACY.pack(*self.privacy))
        parts.append(_STATE_COUNT.pack(len(self.states)))
        for request_id in sorted(self.states):
            parts.append(_STATE_ENTRY.pack(
                request_id, _STATE_CODES[self.states[request_id]]))
        body = b"".join(parts)
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SessionState":
        """Decode a checkpoint blob, verifying layout and checksum.

        Raises:
            CheckpointError: the blob is truncated, carries the wrong
                magic or version, fails its CRC32, names an unknown flag
                or state code, trails extra bytes, or decodes to a state
                no session could legally hold (bad weight, bad selector
                subset).  Never restores silently-wrong state.
        """
        blob = bytes(blob)
        if len(blob) < _HEADER.size + _CRC.size:
            raise CheckpointError(
                f"checkpoint truncated: {len(blob)} bytes is shorter than "
                f"the minimal header + CRC ({_HEADER.size + _CRC.size})")
        (stored_crc,) = _CRC.unpack_from(blob, len(blob) - _CRC.size)
        body = blob[:-_CRC.size]
        if zlib.crc32(body) != stored_crc:
            raise CheckpointError(
                "checkpoint checksum mismatch: CRC32 trailer does not match "
                "the body (bit flip or truncation)")
        reader = _Reader(body)
        (magic, version, codec_code, session_id, epoch, next_request_id,
         weight, flags) = reader.unpack(_HEADER)
        if magic != CHECKPOINT_MAGIC:
            raise CheckpointError(
                f"bad checkpoint magic {magic!r} (expected "
                f"{CHECKPOINT_MAGIC!r})")
        known_flags = _KNOWN_FLAGS_BY_VERSION.get(version)
        if known_flags is None:
            raise CheckpointError(
                f"unsupported checkpoint version {version} (this build "
                f"reads versions {sorted(_KNOWN_FLAGS_BY_VERSION)})")
        if flags & ~known_flags:
            raise CheckpointError(
                f"unknown checkpoint flags 0x{flags & ~known_flags:x} for "
                f"version {version}")
        try:
            codec = Codec.parse(codec_code)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from exc
        if not (math.isfinite(weight) and weight >= 0):
            raise CheckpointError(
                f"checkpoint weight {weight!r} is not a legal tenant weight")
        selector = None
        if flags & _FLAG_SELECTOR:
            num_nets, count = reader.unpack(_SEL_HEAD)
            indices = reader.unpack_array("H", count)
            if (count == 0 or len(set(indices)) != count
                    or any(i >= num_nets for i in indices)
                    or tuple(sorted(indices)) != indices):
                raise CheckpointError(
                    f"checkpoint selector block is not a sorted unique "
                    f"subset of [0, {num_nets}): {indices}")
            selector = (num_nets, indices)
        noise = None
        if flags & _FLAG_NOISE:
            seed, ndim, sigma = reader.unpack(_NOISE_HEAD)
            shape = reader.unpack_array("I", ndim)
            if ndim == 0 or not (math.isfinite(sigma) and sigma >= 0):
                raise CheckpointError(
                    f"checkpoint noise block is malformed: shape {shape}, "
                    f"sigma {sigma!r}")
            noise = (seed, shape, sigma)
        limiter = None
        if flags & _FLAG_LIMITER:
            rate, burst, tokens = reader.unpack(_LIMITER)
            if not (math.isfinite(rate) and rate > 0 and burst >= 1
                    and math.isfinite(tokens) and 0 <= tokens <= burst):
                raise CheckpointError(
                    f"checkpoint limiter block is not a legal token bucket: "
                    f"rate={rate!r} burst={burst!r} tokens={tokens!r}")
            limiter = (rate, burst, tokens)
        privacy = None
        if flags & _FLAG_PRIVACY:
            alpha, eps, q_budget, spent, queries, rotation_index = (
                reader.unpack(_PRIVACY))
            if not (math.isfinite(alpha) and alpha > 1.0
                    and math.isfinite(eps) and eps > 0.0 and q_budget >= 1
                    and math.isfinite(spent) and spent >= 0.0):
                raise CheckpointError(
                    f"checkpoint privacy block is not a legal budget: "
                    f"alpha={alpha!r} eps={eps!r} q_budget={q_budget!r} "
                    f"spent={spent!r}")
            privacy = (alpha, eps, q_budget, spent, queries, rotation_index)
        (count,) = reader.unpack(_STATE_COUNT)
        states: dict[int, RequestState] = {}
        for _ in range(count):
            request_id, code = reader.unpack(_STATE_ENTRY)
            state = _CODE_STATES.get(code)
            if state is None:
                raise CheckpointError(
                    f"unknown request-state code {code} for request "
                    f"{request_id}")
            if request_id in states:
                raise CheckpointError(
                    f"duplicate request id {request_id} in checkpoint")
            states[request_id] = state
        if reader.remaining:
            raise CheckpointError(
                f"checkpoint carries {reader.remaining} trailing bytes "
                f"after the request-state block")
        if states and max(states) >= next_request_id:
            raise CheckpointError(
                f"checkpoint high-water mark {next_request_id} does not "
                f"cover tracked request id {max(states)}")
        return cls(session_id=session_id, epoch=epoch, codec=codec,
                   weight=weight, next_request_id=next_request_id,
                   selector=selector, noise=noise, limiter=limiter,
                   privacy=privacy, states=states)

    # -- restore --------------------------------------------------------

    def rebuild_client(self, head, tail):
        """Rebuild the client bundle from checkpointed provenance.

        ``head`` and ``tail`` are the client-side model halves (code, not
        state — the deployment ships them to every replica); selector and
        noise are reconstructed bit-exactly from the checkpoint.
        """
        from repro.core.selector import Selector
        from repro.serving.service import build_client

        selector = None
        if self.selector is not None:
            num_nets, indices = self.selector
            try:
                selector = Selector(num_nets, indices)
            except ValueError as exc:
                raise CheckpointError(
                    f"checkpoint selector does not reconstruct: {exc}"
                ) from exc
        noise_seed = noise_shape = None
        noise_sigma = 0.1
        if self.noise is not None:
            noise_seed, noise_shape, noise_sigma = self.noise
        return build_client(head, tail, selector=selector,
                            noise_seed=noise_seed, noise_shape=noise_shape,
                            noise_sigma=noise_sigma)

    def restore(self, service, head, tail, privacy=None, rotation=None):
        """Adopt this checkpoint as a fresh session on ``service``.

        The failover path for a replica that died with its sessions: the
        replacement replica rebuilds the client bundle
        (:meth:`rebuild_client`), re-registers the session under its
        original id with the incarnation epoch bumped, restores the
        negotiated codec/weight, the limiter token level (conservatively
        capped at the checkpointed level) and the request-id high-water
        mark, and replays the tracked lifecycle states.  Requests that
        were in flight on the dead replica stay ``QUEUED`` — the
        client-side :class:`~repro.serving.faults.RetryPolicy` timeout
        recovers them, and service-side dedup guarantees none is served
        twice.

        A checkpointed privacy block restores bit-exactly: the budget's
        ``(alpha, eps, q_budget)`` policy, spent ε(α), charged-query
        count and rotation index all come from the blob.  ``privacy``
        optionally supplies deployment ladder knobs (a
        :class:`~repro.privacy.budget.PrivacyBudget` or spec whose
        *accounting* is overwritten from the checkpoint); ``rotation``
        re-supplies the deployment's rotation policy — both are config,
        not state, exactly like the model halves.
        """
        client = self.rebuild_client(head, tail)
        if (self.selector is not None
                and self.selector[0] != service.num_nets):
            raise CheckpointError(
                f"checkpoint selector spans {self.selector[0]} bodies but "
                f"the service serves {service.num_nets}")
        rate_limit = None
        if self.limiter is not None:
            rate_limit = (self.limiter[0], self.limiter[1])
        budget = None
        rotation_index = 0
        if self.privacy is not None:
            from repro.privacy.accountant import PrivacyPolicy, RenyiAccountant
            from repro.privacy.budget import PrivacyBudget
            alpha, eps, q_budget, spent, queries, rotation_index = self.privacy
            budget = PrivacyBudget.parse(privacy)
            if budget is None:
                budget = PrivacyBudget()
            budget.accountant = RenyiAccountant(
                PrivacyPolicy(alpha, eps, q_budget))
            budget.accountant.spent = spent
            budget.accountant.queries_charged = queries
        session = service.adopt_session(
            client, codec=self.codec, weight=self.weight,
            rate_limit=rate_limit, session_id=self.session_id,
            epoch=self.epoch + 1, privacy=budget, rotation=rotation)
        if self.noise is not None:
            session.noise_seed, session.noise_shape, session.noise_sigma = (
                self.noise)
        if session.limiter is not None and self.limiter is not None:
            session.limiter.tokens = min(session.limiter.tokens,
                                         self.limiter[2])
        if session.rotation is not None:
            session.rotation.rotation_index = int(rotation_index)
            session._refresh_privacy_rng()
        session._next_request_id = self.next_request_id
        session._states.update(self.states)
        for request_id, state in self.states.items():
            if not state.terminal:
                session._pending.add(request_id)
        return session

    def apply(self, session) -> None:
        """Merge this checkpoint onto a live session (fleet failover).

        When the client-side session object survived its replica, the
        live request states and stored responses are *newer* truth than
        any snapshot: they win.  The checkpoint contributes the
        request-id floor (high-water marks only ratchet), a conservative
        limiter token level (no token minting across failover) and the
        lifecycle states of requests the live side never learned about.
        The incarnation epoch bumps past both sides and the retry-jitter
        RNG reseeds, so the restored session cannot replay its
        predecessor's backoff sequence.  Privacy accounting only
        *ratchets*: spent ε(α), charged queries and the rotation index
        take the max of both sides, so failover can never mint budget
        back, and the rotation/noise RNGs re-key from the new epoch.
        """
        import numpy as np

        if session.session_id != self.session_id:
            raise CheckpointError(
                f"checkpoint is for session {self.session_id}, not "
                f"{session.session_id}")
        session._next_request_id = max(session._next_request_id,
                                       self.next_request_id)
        for request_id, state in self.states.items():
            session._states.setdefault(request_id, state)
        if session.limiter is not None and self.limiter is not None:
            now = session._service.now
            session.limiter.tokens = min(session.limiter.available(now),
                                         self.limiter[2])
        session.epoch = max(session.epoch, self.epoch) + 1
        session._retry_rng = np.random.default_rng(
            [session.session_id, session.epoch])
        if self.privacy is not None and session.privacy is not None:
            accountant = session.privacy.accountant
            accountant.spent = max(accountant.spent, self.privacy[3])
            accountant.queries_charged = max(accountant.queries_charged,
                                             self.privacy[4])
        if session.rotation is not None:
            if self.privacy is not None:
                session.rotation.rotation_index = max(
                    session.rotation.rotation_index, int(self.privacy[5]))
            session.rotation.advance_epoch(session.epoch, session)
        else:
            session._refresh_privacy_rng()


class CheckpointStore:
    """Durable-store stand-in: latest checkpoint *bytes* per session.

    Replicas snapshot through the store (the fleet drives
    :meth:`maybe_snapshot` on every tick); failover reads back with
    :meth:`load`, which decodes — and therefore CRC-verifies — the
    stored blob.  Only the newest blob per session is kept: checkpoints
    are full, not incremental.
    """

    def __init__(self, interval_s: float = 0.05):
        if not interval_s >= 0:
            raise ValueError("interval_s must be >= 0")
        self.interval_s = float(interval_s)
        self.snapshots = 0        # capture count, across all sessions
        self.bytes_written = 0    # cumulative encoded size
        self._blobs: dict[int, bytes] = {}
        self._last_snapshot: dict[int, float] = {}

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._blobs

    @property
    def session_ids(self) -> tuple[int, ...]:
        """Ids with a stored checkpoint, ascending."""
        return tuple(sorted(self._blobs))

    def snapshot(self, session) -> bytes:
        """Capture and store ``session`` now; returns the encoded blob."""
        blob = SessionState.capture(session).to_bytes()
        self._blobs[session.session_id] = blob
        self._last_snapshot[session.session_id] = session._service.now
        self.snapshots += 1
        self.bytes_written += len(blob)
        return blob

    def maybe_snapshot(self, session, now: float) -> bool:
        """Snapshot if ``interval_s`` has elapsed since the session's last.

        Returns:
            True if a snapshot was taken.  A session never snapshotted
            before is always captured.
        """
        last = self._last_snapshot.get(session.session_id)
        if last is not None and now - last < self.interval_s:
            return False
        self.snapshot(session)
        self._last_snapshot[session.session_id] = now
        return True

    def blob(self, session_id: int) -> bytes:
        """The stored raw bytes for ``session_id`` (KeyError if absent)."""
        return self._blobs[session_id]

    def load(self, session_id: int) -> SessionState:
        """Decode the stored checkpoint for ``session_id``.

        Raises:
            KeyError: no checkpoint was ever stored for the session.
            CheckpointError: the stored blob is corrupt.
        """
        return SessionState.from_bytes(self._blobs[session_id])

    def drop(self, session_id: int) -> None:
        """Forget a session's checkpoint (after close, not after crash)."""
        self._blobs.pop(session_id, None)
        self._last_snapshot.pop(session_id, None)
