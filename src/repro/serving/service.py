"""The multi-tenant inference service: tick-based cross-client coalescing.

Ensembler's server must run *all* N bodies for every upload (the client's
P-subset is secret), so its hot path is embarrassingly batchable: the
fused :class:`~repro.nn.batched.StackedBodies` engine makes the marginal
cost of extra samples in one stacked pass near-linear, while every extra
*pass* pays fixed interpreter/im2col dispatch overhead.  The
:class:`InferenceService` therefore queues concurrent client uploads and,
on each deterministic ``tick()``, coalesces a group of them along the
batch axis into **one** stacked forward over all N bodies, then splits
the N feature maps back out per request and routes each response through
its session's own channel.

Scheduling
----------
*Which* queued requests form a tick's group is delegated to a pluggable
:class:`~repro.serving.scheduler.Scheduler` (``scheduler="fifo"`` by
default — bit-exact with the historical drain-the-queue behaviour;
``"fair"`` round-robins across sessions; ``"deadline"`` forms groups
adaptively by payload size and SLO slack).  Whatever the policy, a group
always shares one per-sample feature shape/dtype, so byte accounting,
record order and outputs stay reproducible per session.  The service
carries a virtual clock (``now`` / :meth:`advance_clock`) that stamps
``arrival_time`` on admission; the event-driven front-end in
:mod:`repro.serving.simulate` drives it from an arrival-time trace.

Codecs
------
Each session negotiates a downlink :class:`~repro.serving.protocol.Codec`
at ``open_session`` (default from :class:`ServingConfig`): ``"fp16"``
narrows the N returned feature maps to half precision on the wire,
halving the dominant Table-III downlink term; channels account the
narrowed frames exactly.

Backpressure
------------
The queue is bounded (``max_queue``): ``submit`` on a full queue raises
:class:`BackpressureError` *before* any bytes are accounted — admission
control happens ahead of transmission — and bumps the service's
``rejected_requests`` counter so load shedding is observable.  Closing a
session cancels its queued (already-transmitted) requests and counts them
in ``cancelled_requests``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ci.channel import Channel, TransferStats
from repro.ci.pipeline import Client, Server
from repro.serving.protocol import Codec, FeatureResponse, UploadRequest
from repro.serving.scheduler import SCHEDULERS, Scheduler, make_scheduler
from repro.serving.session import Session


class BackpressureError(RuntimeError):
    """The service queue is full; the client must retry later."""


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Scheduler shape of one deployment (presets carry one of these)."""

    max_batch: int = 8   # requests coalesced into one stacked pass
    max_queue: int = 64  # bounded-queue backpressure threshold
    scheduler: str = "fifo"  # admission/grouping policy (see serving.scheduler)
    codec: str = "fp32"  # default downlink codec sessions negotiate

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler '{self.scheduler}'; choose "
                             f"from {sorted(SCHEDULERS)}")
        Codec.parse(self.codec)  # raises on unknown codec names


@dataclasses.dataclass
class ServiceStats:
    """Aggregate scheduler counters (transfer totals live per session)."""

    ticks: int = 0
    served_requests: int = 0
    served_samples: int = 0
    rejected_requests: int = 0
    cancelled_requests: int = 0  # queued work shed by close_session
    peak_coalesced: int = 0

    @property
    def mean_coalesced(self) -> float:
        """Average requests per stacked pass — the amortisation factor."""
        return self.served_requests / self.ticks if self.ticks else 0.0


class InferenceService:
    """Shared server front-end multiplexing many client sessions.

    ``server`` may be a configured :class:`~repro.ci.pipeline.Server` or a
    plain body list (wrapped with the default batched backend).  The
    service never sees a selector or a noise map: it forwards uploaded
    features through all N bodies and returns all N maps, per session.

    ``scheduler`` accepts a registry name (``"fifo"``, ``"fair"``,
    ``"deadline"``) or a pre-built :class:`Scheduler` instance for
    policies that need constructor arguments.
    """

    def __init__(self, server: Server | list, max_batch: int = 8,
                 max_queue: int = 64,
                 scheduler: str | Scheduler = "fifo",
                 codec: Codec | int | str = Codec.FP32):
        if not isinstance(server, Server):
            server = Server(list(server))
        self.scheduler = make_scheduler(scheduler)
        self.config = ServingConfig(max_batch=max_batch, max_queue=max_queue,
                                    scheduler=self.scheduler.name,
                                    codec=Codec.parse(codec).name.lower())
        self.server = server
        self.stats = ServiceStats()
        self.now = 0.0  # virtual clock; advanced by event-driven front-ends
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 1
        # Traffic already accounted by sessions that have since closed —
        # service-level totals must not shrink on tenant churn.
        self._closed_transfer = TransferStats()

    @classmethod
    def from_config(cls, server: Server | list,
                    config: ServingConfig) -> "InferenceService":
        return cls(server, max_batch=config.max_batch,
                   max_queue=config.max_queue, scheduler=config.scheduler,
                   codec=config.codec)

    # -- session management ---------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.server.bodies)

    @property
    def sessions(self) -> tuple[Session, ...]:
        return tuple(self._sessions.values())

    @property
    def pending(self) -> int:
        """Queued requests not yet served."""
        return self.scheduler.pending

    def open_session(self, head, tail, *, selector=None, noise=None,
                     noise_seed: int | None = None,
                     noise_shape: tuple[int, ...] | None = None,
                     noise_sigma: float = 0.1,
                     channel: Channel | None = None,
                     codec: Codec | int | str | None = None) -> Session:
        """Register a new tenant from its client-side parts.

        ``noise_seed`` (with ``noise_shape``) draws this session its own
        fixed Gaussian map — per-tenant noise without sharing RNG state —
        unless an explicit ``noise`` module is given.  ``codec`` negotiates
        this session's downlink encoding (defaults to the service-wide
        :attr:`ServingConfig.codec`).
        """
        if noise is None and noise_seed is not None:
            from repro.core.noise import FixedGaussianNoise
            from repro.utils.rng import new_rng
            if noise_shape is None:
                raise ValueError("noise_seed requires noise_shape")
            noise = FixedGaussianNoise(noise_shape, noise_sigma,
                                       rng=new_rng(noise_seed))
        client = Client(head, tail, noise=noise, selector=selector)
        return self.adopt_session(client, channel=channel, codec=codec)

    def adopt_session(self, client: Client, channel: Channel | None = None,
                      codec: Codec | int | str | None = None) -> Session:
        """Register an already-built :class:`Client` as a tenant."""
        codec = Codec.parse(self.config.codec if codec is None else codec)
        session = Session(self._next_session_id, client, self, channel=channel,
                          codec=codec)
        self._sessions[session.session_id] = session
        self._next_session_id += 1
        return session

    def close_session(self, session: Session) -> None:
        """Drop a tenant; its queued requests are cancelled (counted in
        ``stats.cancelled_requests``), its already-accounted traffic is
        retained in the service totals."""
        closed = self._sessions.pop(session.session_id, None)
        if closed is not None:
            self._closed_transfer.merge(closed.stats)
        self.stats.cancelled_requests += self.scheduler.cancel_session(
            session.session_id)

    # -- clock ----------------------------------------------------------

    def advance_clock(self, now: float) -> None:
        """Move the virtual clock forward (monotonic; never rewinds)."""
        self.now = max(self.now, float(now))

    # -- request path ---------------------------------------------------

    def submit(self, request: UploadRequest) -> int:
        """Enqueue one upload; accounts its framed bytes on the session.

        Raises :class:`BackpressureError` when the bounded queue is full
        (nothing is transmitted or accounted in that case).  Stamps the
        request's ``arrival_time`` from the service clock if unset.
        """
        try:
            session = self._sessions[request.session_id]
        except KeyError:
            raise KeyError(f"unknown session id {request.session_id}") from None
        if self.scheduler.pending >= self.config.max_queue:
            self.stats.rejected_requests += 1
            raise BackpressureError(
                f"service queue full ({self.config.max_queue} pending); "
                f"retry after a tick")
        if request.arrival_time is None:
            request.arrival_time = self.now
        session.channel.send_up(request)
        self.scheduler.enqueue(request)
        return request.request_id

    def tick(self) -> list[FeatureResponse]:
        """One deterministic scheduler step: serve the next coalesced group.

        The scheduler picks a group of queued requests sharing one
        per-sample feature shape; the service runs **one** forward over
        all N bodies, splits the stacked outputs back per request and
        delivers each response (through its session's negotiated codec)
        over the session's channel.
        """
        group = self.scheduler.next_group(self.config.max_batch, now=self.now)
        if not group:
            return []

        # Per-request attack capture, in service order: identical to what K
        # sequential pipeline.infer(record=True) calls would retain.
        for request in group:
            if request.record:
                self.server.observed_features.append(
                    np.array(request.features, copy=True))

        if len(group) == 1:
            batch = group[0].features
        else:
            batch = np.concatenate([r.features for r in group], axis=0)
        outputs = self.server.compute(batch)

        responses = []
        offset = 0
        for request in group:
            n = request.batch_size
            outs = [np.ascontiguousarray(out[offset:offset + n])
                    for out in outputs]
            offset += n
            session = self._sessions.get(request.session_id)
            codec = session.codec if session is not None else Codec.FP32
            response = FeatureResponse.encode(request.session_id,
                                              request.request_id, outs,
                                              codec=codec)
            if session is not None:  # session may have closed mid-flight
                session.channel.send_down(response)
                session._deliver(response)
            responses.append(response)

        self.stats.ticks += 1
        self.stats.served_requests += len(group)
        self.stats.served_samples += offset
        self.stats.peak_coalesced = max(self.stats.peak_coalesced, len(group))
        return responses

    def run_until_idle(self, max_ticks: int = 100_000) -> int:
        """Tick until the queue drains; returns the number of ticks run."""
        ticks = 0
        while self.scheduler.pending:
            if ticks >= max_ticks:
                raise RuntimeError(f"queue did not drain in {max_ticks} ticks")
            self.tick()
            ticks += 1
        return ticks

    # -- aggregate accounting -------------------------------------------

    def transfer_totals(self) -> TransferStats:
        """Service-level traffic: every session's counters, open or closed."""
        return sum((s.stats for s in self._sessions.values()),
                   dataclasses.replace(self._closed_transfer))
