"""The multi-tenant inference service: tick-based cross-client coalescing.

Ensembler's server must run *all* N bodies for every upload (the client's
P-subset is secret), so its hot path is embarrassingly batchable: the
fused :class:`~repro.nn.batched.StackedBodies` engine makes the marginal
cost of extra samples in one stacked pass near-linear, while every extra
*pass* pays fixed interpreter/im2col dispatch overhead.  The
:class:`InferenceService` therefore queues concurrent client uploads and,
on each deterministic ``tick()``, coalesces a group of them along the
batch axis into **one** stacked forward over all N bodies, then splits
the N feature maps back out per request and routes each response through
its session's own channel.

Scheduling
----------
*Which* queued requests form a tick's group is delegated to a pluggable
:class:`~repro.serving.scheduler.Scheduler` (``scheduler="fifo"`` by
default — bit-exact with the historical drain-the-queue behaviour;
``"fair"`` round-robins across sessions; ``"deadline"`` forms groups
adaptively by payload size and SLO slack).  Whatever the policy, a group
always shares one per-sample feature shape/dtype, so byte accounting,
record order and outputs stay reproducible per session.  The service
carries a virtual clock (``now`` / :meth:`advance_clock`) that stamps
``arrival_time`` on admission; the event-driven front-end in
:mod:`repro.serving.simulate` drives it from an arrival-time trace.

Codecs
------
Each session negotiates a downlink :class:`~repro.serving.protocol.Codec`
at ``open_session`` (default from :class:`ServingConfig`): ``"fp16"``
narrows the N returned feature maps to half precision on the wire,
halving the dominant Table-III downlink term; channels account the
narrowed frames exactly.

Per-tenant QoS
--------------
Two knobs separate paying tiers.  Sessions negotiate a fair-share
``weight`` at ``open_session`` (consumed by weight-aware schedulers such
as ``scheduler="weighted"`` — a weight-2 tenant receives ~2x the stacked
samples of a weight-1 tenant while both have backlog).  Sessions may also
carry a token-bucket :class:`RateLimit`: ``submit`` refills the bucket
from the service clock and raises :class:`RateLimitedError` when a tenant
exceeds its sustained rate + burst, counted in ``throttled_requests`` —
a *policy* rejection, distinct from capacity backpressure below.

Backpressure
------------
The queue is bounded (``max_queue``): ``submit`` on a full queue raises
:class:`BackpressureError` *before* any bytes are accounted — admission
control happens ahead of transmission — and bumps the service's
``rejected_requests`` counter so load shedding is observable.  Closing a
session cancels its queued (already-transmitted) requests and counts them
in ``cancelled_requests``.

Fault tolerance
---------------
Every submitted request ends in exactly one typed terminal
:class:`~repro.serving.errors.RequestState` (the conservation invariant
the simulator checks).  A pluggable
:class:`~repro.serving.faults.FaultInjector` exercises the wire (frames
really are mangled and re-parsed through the CRC32-hardened protocol)
and the tick loop (a crashed stacked pass re-queues its group up to
``tick_retries`` times, then fails the riders terminally).  Expired
explicit deadlines are shed pre-schedule when ``shed_expired`` is on,
idempotent retries are deduplicated against the in-queue id set, and an
optional :class:`~repro.serving.overload.OverloadController` walks the
degradation ladder (shed best-effort tenants → narrow the codec →
shrink the ensemble) under sustained queue pressure — every step
counted in :class:`ServiceStats` and reversed when pressure clears.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ci.channel import Channel, TransferStats
from repro.ci.pipeline import Client, Server
from repro.nn.arena import TensorArena, use_arena
from repro.serving.errors import (
    BackpressureError,
    PrivacyExhaustedError,
    ProtocolError,
    RateLimitedError,
    RequestState,
    UnknownSessionError,
)
from repro.serving.faults import (
    UPLINK_DROP,
    UPLINK_OK,
    FaultInjector,
)
from repro.serving.overload import OverloadController, OverloadPolicy
from repro.serving.protocol import Codec, FeatureResponse, UploadRequest
from repro.serving.scheduler import SCHEDULERS, Scheduler, make_scheduler
from repro.serving.session import Session


@dataclasses.dataclass(frozen=True)
class RateLimit:
    """Token-bucket parameters for one tenant's admission rate.

    ``rate_per_s`` tokens accrue per virtual-clock second up to ``burst``
    capacity.  In the default **request-cost** mode each submitted
    request spends one token, so a tenant can burst ``burst`` requests
    instantly but sustains at most ``rate_per_s`` requests/second.  With
    ``per_sample=True`` the bucket charges **sample cost** instead: a
    request spends ``batch_size`` tokens, so a fat multi-sample upload
    pays proportionally to the server work it buys rather than riding
    the flat per-request price — the fair currency once payloads stop
    being single images.  A per-sample bucket's ``burst`` must cover the
    largest batch a tenant may submit; a request whose batch exceeds
    ``burst`` can never be admitted and is always throttled.
    """

    rate_per_s: float
    burst: float = 1.0
    per_sample: bool = False

    def __post_init__(self):
        if not self.rate_per_s > 0:
            raise ValueError("rate_per_s must be positive")
        if not self.burst >= 1:
            raise ValueError("burst must be >= 1 (a bucket must admit at "
                             "least one request)")

    def cost_of(self, request) -> float:
        """Tokens one upload spends: its batch size in per-sample mode,
        one in the back-compat request-cost mode."""
        return float(request.batch_size) if self.per_sample else 1.0

    @classmethod
    def parse(cls, value: "RateLimit | tuple | float | None"
              ) -> "RateLimit | None":
        """Coerce a user-facing spec to a :class:`RateLimit`.

        Args:
            value: ``None`` (unlimited), a :class:`RateLimit`, a bare rate
                in requests/second, or a ``(rate_per_s, burst)`` /
                ``(rate_per_s, burst, per_sample)`` tuple.

        Returns:
            The parsed limit, or ``None`` for the unlimited spec.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, (int, float)):
            return cls(rate_per_s=float(value))
        return cls(*value)


class RateLimiter:
    """Mutable token-bucket state enforcing one session's :class:`RateLimit`.

    The bucket starts full and refills lazily from the (monotonic)
    service clock; limiters are created per session at open time and die
    with it, so bucket state never leaks across ``close_session`` into a
    later session (see ``tests/test_qos.py``).
    """

    def __init__(self, limit: RateLimit, now: float = 0.0):
        self.limit = limit
        self.tokens = float(limit.burst)
        self._last_refill = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = max(self._last_refill, now)
        self.tokens = min(float(self.limit.burst),
                          self.tokens + elapsed * self.limit.rate_per_s)

    def available(self, now: float) -> float:
        """Tokens in the bucket after refilling up to ``now``."""
        self._refill(now)
        return self.tokens

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if the refilled bucket covers them.

        Returns:
            True (tokens spent) or False (bucket unchanged, caller
            should throttle).
        """
        self._refill(now)
        if self.tokens + 1e-9 < cost:
            return False
        self.tokens -= cost
        return True

    def seconds_until(self, cost: float = 1.0) -> float:
        """Virtual seconds until ``cost`` tokens will be available."""
        deficit = cost - self.tokens
        return max(0.0, deficit / self.limit.rate_per_s)


#: sentinel distinguishing "use the service default" from an explicit
#: ``rate_limit=None`` (unlimited) at ``open_session`` / ``adopt_session``.
_DEFAULT_LIMIT = object()


def build_client(head, tail, *, selector=None, noise=None,
                 noise_seed: int | None = None,
                 noise_shape: tuple[int, ...] | None = None,
                 noise_sigma: float = 0.1) -> Client:
    """Assemble a :class:`~repro.ci.pipeline.Client` from its parts.

    ``noise_seed`` (with ``noise_shape``) draws the client its own fixed
    Gaussian map — per-tenant noise without sharing RNG state — unless an
    explicit ``noise`` module is given.  Shared by
    :meth:`InferenceService.open_session` and the fleet front-end, so
    both build byte-identical clients from the same spec.
    """
    if noise is None and noise_seed is not None:
        from repro.core.noise import FixedGaussianNoise
        from repro.utils.rng import new_rng
        if noise_shape is None:
            raise ValueError("noise_seed requires noise_shape")
        noise = FixedGaussianNoise(noise_shape, noise_sigma,
                                   rng=new_rng(noise_seed))
    return Client(head, tail, noise=noise, selector=selector)


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Scheduler shape of one deployment (presets carry one of these).

    ``max_batch`` caps the requests coalesced into one stacked pass for
    the count-capped policies (``fifo`` / ``fair`` / ``weighted``);
    ``DeadlineScheduler`` deliberately ignores it and sizes groups by
    payload and SLO slack.  ``rate_limit`` is the *default* per-session
    token bucket applied to tenants that do not negotiate their own
    (``None`` = unlimited).

    ``fast_path`` enables the eval-time serving optimisations: the
    service owns a :class:`~repro.nn.arena.TensorArena` whose buffers
    (im2col columns, pad canvases, the uplink staging buffer) persist
    across ticks, group batches are staged into that arena instead of
    ``np.concatenate``-ing fresh memory, and :meth:`InferenceService.\
submit_bytes` decodes wire frames zero-copy.  Served bytes are
    bit-identical with the flag off — the differential wire-equivalence
    suite pins this.  ``speculative`` additionally lets the scheduler
    form mixed-spatial groups (see
    :meth:`~repro.serving.scheduler.Scheduler.next_group_speculative`)
    which the service reconciles in one tick by canvas padding
    (padding-safe engines) or per-key sub-passes.
    """

    max_batch: int = 8   # group-size cap (ignored by the deadline policy)
    max_queue: int = 64  # bounded-queue backpressure threshold
    scheduler: str = "fifo"  # admission/grouping policy (see serving.scheduler)
    codec: str = "fp32"  # default downlink codec sessions negotiate
    rate_limit: RateLimit | None = None  # default per-session token bucket
    shed_expired: bool = False  # shed explicit-deadline requests pre-schedule
    tick_retries: int = 1  # crashed-pass re-queues before a request FAILs
    fast_path: bool = True   # arena buffer reuse + zero-copy decode
    speculative: bool = False  # mixed-spatial group formation

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.tick_retries < 0:
            raise ValueError("tick_retries must be >= 0")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler '{self.scheduler}'; choose "
                             f"from {sorted(SCHEDULERS)}")
        Codec.parse(self.codec)  # raises on unknown codec names
        object.__setattr__(self, "rate_limit", RateLimit.parse(self.rate_limit))


#: :class:`ServiceStats` fields that are *levels*, not counters: fleet
#: aggregation takes their max, everything else sums.
_LEVEL_STATS = frozenset({"peak_coalesced", "overload_level"})


@dataclasses.dataclass
class ServiceStats:
    """Aggregate scheduler counters (transfer totals live per session).

    Stats are composable: ``a + b`` returns combined counters and
    ``a.merge(b)`` accumulates in place, so per-replica stats roll up
    into fleet totals (``sum(stats_list, ServiceStats())``).  Merging is
    field-driven over ``dataclasses.fields``, so a counter added later
    can never be silently dropped from fleet aggregation: every field
    sums, except the *level* fields (:data:`_LEVEL_STATS` — current
    ladder level and peak group size), which take the max.
    """

    ticks: int = 0
    served_requests: int = 0
    served_samples: int = 0
    rejected_requests: int = 0
    throttled_requests: int = 0  # shed by per-tenant rate limits
    cancelled_requests: int = 0  # queued work shed by close_session
    peak_coalesced: int = 0
    expired_requests: int = 0    # shed pre-schedule past their deadline
    deduped_requests: int = 0    # idempotent retries swallowed service-side
    corrupt_frames: int = 0      # uplink frames that failed parse / CRC
    dropped_frames: int = 0      # uplink frames lost on the (faulted) wire
    tick_failures: int = 0       # stacked passes that crashed mid-flight
    tick_failure_samples: int = 0  # samples riding crashed passes (cost basis)
    failed_requests: int = 0     # terminally FAILED (crash retries exhausted)
    shed_best_effort: int = 0    # weight-0 submits refused under overload
    degraded_responses: int = 0  # responses narrowed / ensemble-shrunk
    overload_level: int = 0      # current ladder level (see serving.overload)
    overload_escalations: int = 0
    overload_recoveries: int = 0
    privacy_charged_queries: int = 0  # served queries charged to a budget
    privacy_refusals: int = 0    # submits/serves refused past exhaustion
    privacy_exhausted_sessions: int = 0  # sessions closed by a spent budget
    selector_rotations: int = 0  # switching-ensemble subset re-draws
    speculative_merges: int = 0  # mixed-spatial groups served in one tick

    @property
    def mean_coalesced(self) -> float:
        """Average requests per stacked pass — the amortisation factor."""
        return self.served_requests / self.ticks if self.ticks else 0.0

    def merge(self, other: "ServiceStats") -> "ServiceStats":
        """Accumulate ``other`` into this instance (returns self).

        Every dataclass field participates: counters sum, level fields
        (:data:`_LEVEL_STATS`) take the max — so no counter, present or
        future, can fall out of fleet-wide totals.
        """
        for field in dataclasses.fields(self):
            mine, theirs = getattr(self, field.name), getattr(other, field.name)
            if field.name in _LEVEL_STATS:
                setattr(self, field.name, max(mine, theirs))
            else:
                setattr(self, field.name, mine + theirs)
        return self

    def publish(self, registry, prefix: str = "service") -> None:
        """Snapshot every stat field into ``prefix.field`` gauges on a
        :class:`~repro.telemetry.MetricsRegistry`."""
        registry.publish_fields(self, prefix)

    def __add__(self, other: "ServiceStats") -> "ServiceStats":
        """Combined counters of two stat blocks (neither is mutated)."""
        if not isinstance(other, ServiceStats):
            return NotImplemented
        return dataclasses.replace(self).merge(other)

    def __radd__(self, other) -> "ServiceStats":
        """Support plain ``sum(stats_list)`` (0 + stats)."""
        if other == 0:
            return dataclasses.replace(self)
        return NotImplemented


class InferenceService:
    """Shared server front-end multiplexing many client sessions.

    ``server`` may be a configured :class:`~repro.ci.pipeline.Server` or a
    plain body list (wrapped with the default batched backend).  The
    service never sees a selector or a noise map: it forwards uploaded
    features through all N bodies and returns all N maps, per session.

    ``scheduler`` accepts a registry name (``"fifo"``, ``"fair"``,
    ``"deadline"``) or a pre-built :class:`Scheduler` instance for
    policies that need constructor arguments.
    """

    def __init__(self, server: Server | list, max_batch: int = 8,
                 max_queue: int = 64,
                 scheduler: str | Scheduler = "fifo",
                 codec: Codec | int | str = Codec.FP32,
                 rate_limit: RateLimit | tuple | float | None = None,
                 faults: FaultInjector | None = None,
                 overload: "OverloadController | OverloadPolicy | None" = None,
                 shed_expired: bool = False,
                 tick_retries: int = 1,
                 fast_path: bool = True,
                 speculative: bool = False):
        if not isinstance(server, Server):
            server = Server(list(server))
        self.scheduler = make_scheduler(scheduler)
        self.config = ServingConfig(max_batch=max_batch, max_queue=max_queue,
                                    scheduler=self.scheduler.name,
                                    codec=Codec.parse(codec).name.lower(),
                                    rate_limit=RateLimit.parse(rate_limit),
                                    shed_expired=shed_expired,
                                    tick_retries=tick_retries,
                                    fast_path=fast_path,
                                    speculative=speculative)
        self.server = server
        #: the per-service scratch arena (``None`` with the fast path
        #: off): im2col / pad / staging buffers persist across ticks.
        self.arena = TensorArena() if fast_path else None
        self.faults = faults
        self.overload = (OverloadController(overload)
                         if isinstance(overload, OverloadPolicy) else overload)
        self.stats = ServiceStats()
        self.now = 0.0  # virtual clock; advanced by event-driven front-ends
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 1
        # (session_id, request_id) pairs currently in the scheduler queue:
        # the dedup set idempotent retries are checked against.  A frame
        # the fault injector dropped never enters it, so a retry after a
        # genuine loss is re-queued rather than wrongly swallowed.
        self._queued_ids: set[tuple[int, int]] = set()
        self._tick_attempts = 0  # every tick() that formed a group
        # Traffic already accounted by sessions that have since closed —
        # service-level totals must not shrink on tenant churn.
        self._closed_transfer = TransferStats()

    @classmethod
    def from_config(cls, server: Server | list, config: ServingConfig,
                    faults: FaultInjector | None = None,
                    overload: "OverloadController | OverloadPolicy | None" = None,
                    ) -> "InferenceService":
        """Build a service from a preset-shaped :class:`ServingConfig`."""
        return cls(server, max_batch=config.max_batch,
                   max_queue=config.max_queue, scheduler=config.scheduler,
                   codec=config.codec, rate_limit=config.rate_limit,
                   faults=faults, overload=overload,
                   shed_expired=config.shed_expired,
                   tick_retries=config.tick_retries,
                   fast_path=config.fast_path,
                   speculative=config.speculative)

    # -- session management ---------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.server.bodies)

    @property
    def sessions(self) -> tuple[Session, ...]:
        return tuple(self._sessions.values())

    @property
    def pending(self) -> int:
        """Queued requests not yet served."""
        return self.scheduler.pending

    @property
    def pressure(self) -> float:
        """Queue occupancy in [0, 1]: pending / max_queue.

        The raw congestion signal the autoscaler and admission
        controller smooth and threshold (see
        :mod:`repro.serving.autoscale`).
        """
        if self.config.max_queue <= 0:
            return 0.0
        return min(1.0, self.scheduler.pending / self.config.max_queue)

    def open_session(self, head, tail, *, selector=None, noise=None,
                     noise_seed: int | None = None,
                     noise_shape: tuple[int, ...] | None = None,
                     noise_sigma: float = 0.1,
                     channel: Channel | None = None,
                     codec: Codec | int | str | None = None,
                     weight: float = 1.0,
                     rate_limit: "RateLimit | tuple | float | None" = _DEFAULT_LIMIT,
                     privacy=None,
                     rotation=None,
                     ) -> Session:
        """Register a new tenant from its client-side parts.

        ``noise_seed`` (with ``noise_shape``) draws this session its own
        fixed Gaussian map — per-tenant noise without sharing RNG state —
        unless an explicit ``noise`` module is given.  ``codec`` negotiates
        this session's downlink encoding (defaults to the service-wide
        :attr:`ServingConfig.codec`).  ``weight`` is the tenant's
        fair-share weight (consumed by weight-aware schedulers; 0 =
        best-effort) and ``rate_limit`` its token bucket — omitted, the
        service-wide default applies; an explicit ``None`` means
        unlimited.  ``privacy`` attaches a per-session
        :class:`~repro.privacy.budget.PrivacyBudget` (or an
        ``(alpha, eps, q_budget)`` spec) charged once per served query;
        ``rotation`` a :class:`~repro.privacy.rotation.RotationPolicy`
        (or bare mode name) re-drawing the secret selector mid-stream.
        """
        client = build_client(head, tail, selector=selector, noise=noise,
                              noise_seed=noise_seed, noise_shape=noise_shape,
                              noise_sigma=noise_sigma)
        session = self.adopt_session(client, channel=channel, codec=codec,
                                     weight=weight, rate_limit=rate_limit,
                                     privacy=privacy, rotation=rotation)
        if noise is None and noise_seed is not None:
            # Checkpointable noise provenance: a failover replica can
            # redraw the identical map from (seed, shape, sigma).
            session.noise_seed = int(noise_seed)
            session.noise_shape = tuple(int(d) for d in noise_shape)
            session.noise_sigma = float(noise_sigma)
        return session

    def adopt_session(self, client: Client, channel: Channel | None = None,
                      codec: Codec | int | str | None = None,
                      weight: float = 1.0,
                      rate_limit: "RateLimit | tuple | float | None" = _DEFAULT_LIMIT,
                      session_id: int | None = None,
                      epoch: int = 0,
                      privacy=None,
                      rotation=None,
                      ) -> Session:
        """Register an already-built :class:`Client` as a tenant.

        Args:
            client: the client-side head/tail/noise/selector bundle.
            channel: the byte-accounting channel (a fresh one if omitted).
            codec: downlink codec override (service default if ``None``).
            weight: fair-share weight for weight-aware schedulers.
            rate_limit: token-bucket override; omitted applies the
                service-wide default, explicit ``None`` means unlimited.
            session_id: explicit id (fleet front-ends allocate ids
                globally so a session keeps its id across replicas);
                omitted, the service burns its next local id.
            epoch: the session's incarnation epoch — 0 for a first open,
                bumped by checkpoint restore so a failed-over session
                never replays its predecessor's retry-jitter sequence.
            privacy: per-session privacy budget spec (``None`` =
                unmetered; see :meth:`open_session`).
            rotation: selector-rotation policy spec (``None`` = static
                selector; see :meth:`open_session`).

        Returns:
            The opened :class:`Session`; its limiter (if any) starts with
            a full bucket at the current service clock.
        """
        codec = Codec.parse(self.config.codec if codec is None else codec)
        limit = RateLimit.parse(self.config.rate_limit
                                if rate_limit is _DEFAULT_LIMIT else rate_limit)
        limiter = RateLimiter(limit, now=self.now) if limit is not None else None
        if session_id is None:
            session_id = self._next_session_id
        session = Session(session_id, client, self, channel=channel,
                          codec=codec, weight=weight, limiter=limiter,
                          epoch=epoch, privacy=privacy, rotation=rotation)
        return self.register_session(session)

    def register_session(self, session: Session) -> Session:
        """Register an externally-built :class:`Session` with this service.

        The registration path under :meth:`adopt_session`, exposed for
        fleet front-ends and checkpoint restore, which construct the
        session themselves (explicit id, restored epoch/state) and home
        it on a replica.  Registration happens only after every
        validation (including the scheduler's own weight check) has
        passed, so a failed adopt leaves no live session behind and
        never burns/reuses a session id.
        """
        if session.session_id in self._sessions:
            raise ValueError(f"session id {session.session_id} is already "
                             f"registered with this service")
        self.scheduler.set_session_weight(session.session_id, session.weight)
        self._sessions[session.session_id] = session
        self._next_session_id = max(self._next_session_id,
                                    session.session_id + 1)
        return session

    def close_session(self, session: Session) -> None:
        """Drop a tenant; its queued requests are cancelled (counted in
        ``stats.cancelled_requests`` and marked terminally ``CANCELLED``,
        exactly once), its already-accounted traffic is retained in the
        service totals."""
        closed = self._sessions.pop(session.session_id, None)
        if closed is not None:
            self._closed_transfer.merge(closed.stats)
        cancelled = self.scheduler.cancel_session(session.session_id)
        self.stats.cancelled_requests += len(cancelled)
        for request in cancelled:
            self._queued_ids.discard((request.session_id, request.request_id))
            # The session object outlives its registration: mark the state
            # on it directly so clients holding the handle see CANCELLED.
            session._resolve(request.request_id, RequestState.CANCELLED)

    # -- clock ----------------------------------------------------------

    def advance_clock(self, now: float) -> None:
        """Move the virtual clock forward (monotonic; never rewinds)."""
        self.now = max(self.now, float(now))

    # -- request path ---------------------------------------------------

    def submit(self, request: UploadRequest) -> int:
        """Enqueue one upload; accounts its framed bytes on the session.

        Admission control happens before any bytes are accounted:
        idempotent-retry dedup first (a retry of a request that is still
        queued — or already served — is swallowed, counted in
        ``deduped_requests``), then overload shedding of best-effort
        tenants, then the session's token bucket (policy — raises
        :class:`RateLimitedError`, counted in ``throttled_requests``)
        and the bounded queue (capacity — raises
        :class:`BackpressureError`, counted in ``rejected_requests``).
        A backpressured submit never spends a token.  Stamps the
        request's ``arrival_time`` from the service clock if unset.

        With a :class:`~repro.serving.faults.FaultInjector` plugged in,
        admitted frames then cross the (faulted) wire: a corrupted or
        truncated frame is really serialised, mangled and re-parsed — the
        CRC32-hardened protocol rejects it with a typed
        :class:`~repro.serving.errors.ProtocolError` and the request is
        marked ``FAILED`` (a retry with the same id re-enters cleanly); a
        dropped frame returns normally but never reaches the queue, so
        only a client-side retry timeout can recover it.
        """
        session = self._sessions.get(request.session_id)
        if session is None:
            raise UnknownSessionError(
                f"unknown session id {request.session_id}")
        key = (request.session_id, request.request_id)
        if (key in self._queued_ids or session.has_result(request.request_id)
                or session.request_state(request.request_id)
                is RequestState.COMPLETED):
            # Idempotent retry of a request that survived after all: the
            # retransmission crossed the wire (account it) but must not
            # enter the queue a second time.
            self.stats.deduped_requests += 1
            session.channel.send_up(request)
            return request.request_id
        if session.privacy is not None and session.privacy.exhausted:
            # The budget never refills: refuse (never silently serve),
            # close the session for new work exactly once, and keep it
            # registered as a tombstone so the error stays typed.
            self._close_exhausted(session)
            self.stats.privacy_refusals += 1
            session._resolve(request.request_id, RequestState.REJECTED)
            budget = session.privacy
            raise PrivacyExhaustedError(
                f"session {session.session_id} spent its privacy budget "
                f"(ε(α): {budget.spent:.4g}/{budget.policy.eps:g}, queries: "
                f"{budget.queries_charged}/{budget.policy.q_budget}); the "
                f"session is closed for new work")
        if (self.overload is not None and self.overload.shed_best_effort
                and session.weight == 0):
            self.stats.shed_best_effort += 1
            self.stats.rejected_requests += 1
            session._resolve(request.request_id, RequestState.REJECTED)
            raise BackpressureError(
                f"session {session.session_id} is best-effort (weight 0) "
                f"and the service is overloaded "
                f"({self.overload.level_name}); retry when pressure clears")
        limiter = session.limiter
        cost = limiter.limit.cost_of(request) if limiter is not None else 1.0
        if limiter is not None and limiter.available(self.now) + 1e-9 < cost:
            self.stats.throttled_requests += 1
            session._resolve(request.request_id, RequestState.THROTTLED)
            unit = "samples" if limiter.limit.per_sample else "req"
            raise RateLimitedError(
                f"session {session.session_id} exceeded its rate limit "
                f"({limiter.limit.rate_per_s:g} {unit}/s, burst "
                f"{limiter.limit.burst:g}, cost {cost:g}); retry in "
                f"{limiter.seconds_until(cost):.3f}s")
        if self.scheduler.pending >= self.config.max_queue:
            self.stats.rejected_requests += 1
            session._resolve(request.request_id, RequestState.REJECTED)
            raise BackpressureError(
                f"service queue full ({self.config.max_queue} pending); "
                f"retry after a tick")
        if limiter is not None:
            limiter.try_acquire(self.now, cost)  # refilled above: succeeds
        if request.arrival_time is None:
            request.arrival_time = self.now
        session.channel.send_up(request)
        outcome = (self.faults.upload_outcome() if self.faults is not None
                   else UPLINK_OK)
        if outcome != UPLINK_OK:
            if outcome == UPLINK_DROP:
                self.stats.dropped_frames += 1
                # Lost on the wire: the client believes it is in flight,
                # nothing reached the queue, and the dedup set was never
                # touched — a retry timeout recovers it cleanly.
                session._resolve(request.request_id, RequestState.QUEUED)
                return request.request_id
            blob = self.faults.mangle(request.to_bytes(), outcome)
            try:
                UploadRequest.from_bytes(blob)
            except ProtocolError:
                self.stats.corrupt_frames += 1
                session._resolve(request.request_id, RequestState.FAILED)
                raise
            # Unreachable under CRC32 framing (every mangle breaks the
            # checksum), but stay safe: an intact frame proceeds below.
        self.scheduler.enqueue(request)
        self._queued_ids.add(key)
        session._resolve(request.request_id, RequestState.QUEUED)
        return request.request_id

    def submit_bytes(self, data: bytes) -> int:
        """Admit one framed upload straight from its wire bytes.

        The network-facing twin of :meth:`submit`: parses the CRC32-framed
        :class:`~repro.serving.protocol.UploadRequest` and enqueues it.
        With the fast path on, the parse is **zero-copy** — the request's
        ``features`` are a read-only :func:`numpy.frombuffer` view into
        ``data``, and the only payload copy on the whole serve path is
        the tick's staging copy into the arena batch buffer.  Mutable
        buffers (``bytearray`` / ``memoryview``) are defensively copied
        at decode regardless, so a sender recycling its frame buffer can
        never alias into served features.  Admission control, accounting
        and the typed error surface are exactly :meth:`submit`'s.
        """
        request = UploadRequest.from_bytes(
            data, zero_copy=self.config.fast_path)
        return self.submit(request)

    def tick(self) -> list[FeatureResponse]:
        """One deterministic scheduler step: serve the next coalesced group.

        The scheduler picks a group of queued requests sharing one
        per-sample feature shape; the service runs **one** forward over
        all N bodies, splits the stacked outputs back per request and
        delivers each response (through its session's negotiated codec)
        over the session's channel.

        Fault tolerance wraps that hot path on three sides.  Expired
        requests (``shed_expired``) are shed pre-schedule and marked
        ``EXPIRED``.  The overload controller observes queue pressure and
        may shed best-effort tenants, narrow the served codec or shrink
        the ensemble subset (responses flagged ``degraded``).  A crashed
        stacked pass — injected by the fault plan or a real exception —
        re-queues its group up to ``tick_retries`` times before marking
        the riders terminally ``FAILED``; the tick itself never raises
        and returns ``[]`` (observable via ``stats.tick_failures``).

        Privacy-budgeted sessions are charged here, post-paid and exactly
        once per delivered response (crashed passes exit through
        ``_fail_tick`` before any delivery, so retried queries are never
        double-charged); the budget ladder masks downlink maps at its
        shrink-map level, selector rotation re-draws fire immediately
        before each delivery, and a rider whose budget was spent earlier
        in the same group is refused (``privacy_refusals``), never
        silently served.
        """
        if self.config.shed_expired:
            for request in self.scheduler.drop_expired(self.now):
                self.stats.expired_requests += 1
                self._finish(request, RequestState.EXPIRED)
        if self.overload is not None:
            self.stats.overload_level = self.overload.observe(
                self.scheduler.pending, self.config.max_queue)
            self.stats.overload_escalations = self.overload.escalations
            self.stats.overload_recoveries = self.overload.recoveries
        if self.config.speculative:
            group = self.scheduler.next_group_speculative(
                self.config.max_batch, now=self.now)
        else:
            group = self.scheduler.next_group(self.config.max_batch,
                                              now=self.now)
        if not group:
            return []
        tick_index = self._tick_attempts
        self._tick_attempts += 1

        # Per-request attack capture, in service order: identical to what K
        # sequential pipeline.infer(record=True) calls would retain.  Only
        # first attempts capture — a crashed pass must not duplicate the
        # retained features when its group rides a retry pass.
        for request in group:
            if request.record and request.attempts == 0:
                self.server.observed_features.append(
                    np.array(request.features, copy=True))

        total = self.num_nets
        num_bodies = (self.overload.num_bodies(total)
                      if self.overload is not None else total)
        per_request = None
        if self.faults is None or not self.faults.tick_fails(tick_index):
            try:
                per_request = self._compute_group(group, num_bodies)
            except Exception:
                per_request = None  # a real mid-pass crash: same recovery path
        if per_request is None:
            return self._fail_tick(group)
        if len({r.coalesce_key for r in group}) > 1:
            self.stats.speculative_merges += 1
        degraded_pass = num_bodies < total
        if degraded_pass:
            # The client's selector needs all N positions: alias the maps
            # outside the served subset cyclically onto the k computed
            # ones, flagged degraded on the wire.
            per_request = [[outs[i % num_bodies] for i in range(total)]
                           for outs in per_request]

        responses = []
        served_samples = 0
        for request, outs in zip(group, per_request):
            n = request.batch_size
            self._queued_ids.discard((request.session_id, request.request_id))
            session = self._sessions.get(request.session_id)
            if (session is not None and session.privacy is not None
                    and session.privacy.exhausted):
                # An earlier response in this same group spent the last
                # of the budget: refuse this rider rather than silently
                # serving past exhaustion.
                self._close_exhausted(session)
                self.stats.privacy_refusals += 1
                session._resolve(request.request_id, RequestState.REJECTED)
                continue
            negotiated = session.codec if session is not None else Codec.FP32
            codec = (self.overload.codec_for(negotiated)
                     if self.overload is not None else negotiated)
            masked = (session.privacy.mask_outputs(outs)
                      if session is not None and session.privacy is not None
                      else False)
            degraded = degraded_pass or codec is not negotiated or masked
            response = FeatureResponse.encode(request.session_id,
                                              request.request_id, outs,
                                              codec=codec, degraded=degraded)
            if degraded:
                self.stats.degraded_responses += 1
            if session is not None:  # session may have closed mid-flight
                if session.rotation is not None:
                    # Rotate *before* delivery: this query is consumed
                    # under the subset in force at its own serve time.
                    if session.rotation.maybe_rotate(session):
                        self.stats.selector_rotations += 1
                session.channel.send_down(response)
                session._deliver(response)
                if session.charge_privacy() is not None:
                    # Post-paid, exactly once per delivered response.
                    self.stats.privacy_charged_queries += 1
                    if session.privacy.exhausted:
                        self._close_exhausted(session)
            served_samples += n
            responses.append(response)

        self.stats.ticks += 1
        self.stats.served_requests += len(responses)
        self.stats.served_samples += served_samples
        self.stats.peak_coalesced = max(self.stats.peak_coalesced, len(group))
        return responses

    # -- fused-pass fast path -------------------------------------------

    def _server_pass(self, batch: np.ndarray,
                     num_bodies: int) -> list[np.ndarray]:
        """One stacked forward with this service's arena active.

        The arena only lends *scratch* (im2col columns, pad canvases —
        see :mod:`repro.nn.arena`); the returned feature maps are always
        fresh memory, so responses may outlive any number of later ticks.
        """
        with use_arena(self.arena):
            return self.server.compute(batch, num_bodies=num_bodies)

    def _stage_batch(self, group: list[UploadRequest]) -> np.ndarray:
        """Assemble one shape-homogeneous group into a batch array.

        With the fast path on, rides the arena's persistent staging
        buffer (every element overwritten — the poisoning tests check
        this) instead of allocating a fresh ``np.concatenate`` each tick;
        it is also the single copy zero-copy-decoded payloads ever pay.
        """
        feats = [r.features for r in group]
        if len(feats) == 1:
            return feats[0]
        if self.arena is None:
            return np.concatenate(feats, axis=0)
        total = sum(f.shape[0] for f in feats)
        staged = self.arena.take_named(
            "uplink_staging", (total,) + feats[0].shape[1:], feats[0].dtype)
        offset = 0
        for feat in feats:
            staged[offset:offset + feat.shape[0]] = feat
            offset += feat.shape[0]
        return staged

    @staticmethod
    def _split_outputs(outputs: list[np.ndarray],
                       group: list[UploadRequest]) -> list[list[np.ndarray]]:
        """Slice batch-wide body outputs back into per-request lists."""
        per_request = []
        offset = 0
        for request in group:
            n = request.batch_size
            per_request.append([np.ascontiguousarray(out[offset:offset + n])
                                for out in outputs])
            offset += n
        return per_request

    def _compute_group(self, group: list[UploadRequest],
                       num_bodies: int) -> list[list[np.ndarray]]:
        """Serve one (possibly mixed-spatial) group; per-request outputs.

        Shape-homogeneous groups run the classic single stacked pass.  A
        speculative mixed group is reconciled inside this one tick:
        zero-padded onto a common canvas and cropped back when the
        engine is provably padding-safe (spatially-pointwise tree),
        otherwise as one exact sub-pass per coalesce key.  Either way a
        crash anywhere fails the *whole* group through the caller's
        ``_fail_tick`` recovery.
        """
        if len({r.coalesce_key for r in group}) == 1:
            outputs = self._server_pass(self._stage_batch(group), num_bodies)
            return self._split_outputs(outputs, group)
        if (self.server.padding_safe
                and all(r.features.ndim == 4 for r in group)):
            return self._canvas_pass(group, num_bodies)
        return self._keyed_subpasses(group, num_bodies)

    def _canvas_pass(self, group: list[UploadRequest],
                     num_bodies: int) -> list[list[np.ndarray]]:
        """Mixed spatial sizes on one zero-padded canvas, cropped back.

        Exact only for padding-safe engines: each request sits in the
        top-left corner of a ``(max_h, max_w)`` canvas whose margins are
        zero, and each output map is cropped back to the request's own
        spatial size — a spatially-pointwise tree never mixes margin
        into the cropped region.
        """
        feats = [r.features for r in group]
        channels = feats[0].shape[1]
        height = max(f.shape[2] for f in feats)
        width = max(f.shape[3] for f in feats)
        total = sum(f.shape[0] for f in feats)
        shape = (total, channels, height, width)
        if self.arena is not None:
            canvas = self.arena.take_named("uplink_canvas", shape,
                                           feats[0].dtype)
            canvas.fill(0)  # margins must be zeros, not last tick's bytes
        else:
            canvas = np.zeros(shape, dtype=feats[0].dtype)
        offset = 0
        for feat in feats:
            n, _, h, w = feat.shape
            canvas[offset:offset + n, :, :h, :w] = feat
            offset += n
        outputs = self._server_pass(canvas, num_bodies)
        per_request = []
        offset = 0
        for request in group:
            n, _, h, w = request.features.shape
            outs = []
            for out in outputs:
                sliced = out[offset:offset + n]
                if sliced.ndim == 4 and sliced.shape[2:] == (height, width):
                    sliced = sliced[:, :, :h, :w]
                outs.append(np.ascontiguousarray(sliced))
            per_request.append(outs)
            offset += n
        return per_request

    def _keyed_subpasses(self, group: list[UploadRequest],
                         num_bodies: int) -> list[list[np.ndarray]]:
        """Mixed group on a padding-unsafe engine: one exact stacked pass
        per coalesce key, results re-interleaved into group order."""
        buckets: dict[tuple, list[int]] = {}
        for index, request in enumerate(group):
            buckets.setdefault(request.coalesce_key, []).append(index)
        per_request: list[list[np.ndarray] | None] = [None] * len(group)
        for indices in buckets.values():
            sub = [group[i] for i in indices]
            outputs = self._server_pass(self._stage_batch(sub), num_bodies)
            for outs, i in zip(self._split_outputs(outputs, sub), indices):
                per_request[i] = outs
        return per_request

    def _fail_tick(self, group: list[UploadRequest]) -> list[FeatureResponse]:
        """Recover a crashed stacked pass: re-queue or fail its riders."""
        self.stats.tick_failures += 1
        self.stats.tick_failure_samples += sum(r.batch_size for r in group)
        for request in group:
            request.attempts += 1
            if request.attempts > self.config.tick_retries:
                self.stats.failed_requests += 1
                self._finish(request, RequestState.FAILED)
            else:
                self.scheduler.enqueue(request)
        return []

    def _finish(self, request: UploadRequest, state: RequestState) -> None:
        """Move a queued request to a terminal state, exactly once."""
        self._queued_ids.discard((request.session_id, request.request_id))
        session = self._sessions.get(request.session_id)
        if session is not None:
            session._resolve(request.request_id, state)

    def _close_exhausted(self, session: Session) -> None:
        """Close a budget-exhausted session for new work, exactly once.

        Counted in ``privacy_exhausted_sessions``; the session's queued
        requests are cancelled (terminally ``CANCELLED``, counted in
        ``cancelled_requests``) but the session stays *registered* as a
        tombstone, so later submits raise the typed
        :class:`~repro.serving.errors.PrivacyExhaustedError` instead of
        :class:`~repro.serving.errors.UnknownSessionError`.
        """
        if session.privacy is None or session.privacy.closed:
            return
        session.privacy.closed = True
        self.stats.privacy_exhausted_sessions += 1
        cancelled = self.scheduler.cancel_session(session.session_id)
        self.stats.cancelled_requests += len(cancelled)
        for request in cancelled:
            self._queued_ids.discard((request.session_id, request.request_id))
            session._resolve(request.request_id, RequestState.CANCELLED)

    def run_until_idle(self, max_ticks: int = 100_000) -> int:
        """Tick until the queue drains; returns the number of ticks run."""
        ticks = 0
        while self.scheduler.pending:
            if ticks >= max_ticks:
                raise RuntimeError(f"queue did not drain in {max_ticks} ticks")
            self.tick()
            ticks += 1
        return ticks

    # -- aggregate accounting -------------------------------------------

    def transfer_totals(self) -> TransferStats:
        """Service-level traffic: every session's counters, open or closed."""
        return sum((s.stats for s in self._sessions.values()),
                   dataclasses.replace(self._closed_transfer))
