"""The multi-tenant inference service: tick-based cross-client coalescing.

Ensembler's server must run *all* N bodies for every upload (the client's
P-subset is secret), so its hot path is embarrassingly batchable: the
fused :class:`~repro.nn.batched.StackedBodies` engine makes the marginal
cost of extra samples in one stacked pass near-linear, while every extra
*pass* pays fixed interpreter/im2col dispatch overhead.  The
:class:`InferenceService` therefore queues concurrent client uploads and,
on each deterministic ``tick()``, coalesces up to ``max_batch`` of them
along the batch axis into **one** stacked forward over all N bodies, then
splits the N feature maps back out per request and routes each response
through its session's own channel.

Determinism and equivalence
---------------------------
Scheduling is strict FIFO: a tick takes the longest queue prefix (capped
at ``max_batch``) whose requests share a per-sample feature shape/dtype
— requests are never reordered, so byte accounting, record order and
outputs are reproducible.  Because every op in the body stack is
per-sample along the batch axis in eval mode, the coalesced pass is
output-equivalent (≤1e-5) to serving each request alone.

Backpressure
------------
The queue is bounded (``max_queue``): ``submit`` on a full queue raises
:class:`BackpressureError` *before* any bytes are accounted — admission
control happens ahead of transmission — and bumps the service's
``rejected_requests`` counter so load shedding is observable.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.ci.channel import Channel, TransferStats
from repro.ci.pipeline import Client, Server
from repro.serving.protocol import FeatureResponse, UploadRequest
from repro.serving.session import Session


class BackpressureError(RuntimeError):
    """The service queue is full; the client must retry later."""


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Scheduler shape of one deployment (presets carry one of these)."""

    max_batch: int = 8   # requests coalesced into one stacked pass
    max_queue: int = 64  # bounded-queue backpressure threshold

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


@dataclasses.dataclass
class ServiceStats:
    """Aggregate scheduler counters (transfer totals live per session)."""

    ticks: int = 0
    served_requests: int = 0
    served_samples: int = 0
    rejected_requests: int = 0
    peak_coalesced: int = 0

    @property
    def mean_coalesced(self) -> float:
        """Average requests per stacked pass — the amortisation factor."""
        return self.served_requests / self.ticks if self.ticks else 0.0


class InferenceService:
    """Shared server front-end multiplexing many client sessions.

    ``server`` may be a configured :class:`~repro.ci.pipeline.Server` or a
    plain body list (wrapped with the default batched backend).  The
    service never sees a selector or a noise map: it forwards uploaded
    features through all N bodies and returns all N maps, per session.
    """

    def __init__(self, server: Server | list, max_batch: int = 8,
                 max_queue: int = 64):
        if not isinstance(server, Server):
            server = Server(list(server))
        self.config = ServingConfig(max_batch=max_batch, max_queue=max_queue)
        self.server = server
        self.stats = ServiceStats()
        self._queue: collections.deque[UploadRequest] = collections.deque()
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 1
        # Traffic already accounted by sessions that have since closed —
        # service-level totals must not shrink on tenant churn.
        self._closed_transfer = TransferStats()

    @classmethod
    def from_config(cls, server: Server | list,
                    config: ServingConfig) -> "InferenceService":
        return cls(server, max_batch=config.max_batch, max_queue=config.max_queue)

    # -- session management ---------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.server.bodies)

    @property
    def sessions(self) -> tuple[Session, ...]:
        return tuple(self._sessions.values())

    @property
    def pending(self) -> int:
        """Queued requests not yet served."""
        return len(self._queue)

    def open_session(self, head, tail, *, selector=None, noise=None,
                     noise_seed: int | None = None,
                     noise_shape: tuple[int, ...] | None = None,
                     noise_sigma: float = 0.1,
                     channel: Channel | None = None) -> Session:
        """Register a new tenant from its client-side parts.

        ``noise_seed`` (with ``noise_shape``) draws this session its own
        fixed Gaussian map — per-tenant noise without sharing RNG state —
        unless an explicit ``noise`` module is given.
        """
        if noise is None and noise_seed is not None:
            from repro.core.noise import FixedGaussianNoise
            from repro.utils.rng import new_rng
            if noise_shape is None:
                raise ValueError("noise_seed requires noise_shape")
            noise = FixedGaussianNoise(noise_shape, noise_sigma,
                                       rng=new_rng(noise_seed))
        client = Client(head, tail, noise=noise, selector=selector)
        return self.adopt_session(client, channel=channel)

    def adopt_session(self, client: Client,
                      channel: Channel | None = None) -> Session:
        """Register an already-built :class:`Client` as a tenant."""
        session = Session(self._next_session_id, client, self, channel=channel)
        self._sessions[session.session_id] = session
        self._next_session_id += 1
        return session

    def close_session(self, session: Session) -> None:
        """Drop a tenant; its queued requests are discarded, its
        already-accounted traffic is retained in the service totals."""
        closed = self._sessions.pop(session.session_id, None)
        if closed is not None:
            self._closed_transfer.merge(closed.stats)
        self._queue = collections.deque(
            r for r in self._queue if r.session_id != session.session_id)

    # -- request path ---------------------------------------------------

    def submit(self, request: UploadRequest) -> int:
        """Enqueue one upload; accounts its framed bytes on the session.

        Raises :class:`BackpressureError` when the bounded queue is full
        (nothing is transmitted or accounted in that case).
        """
        try:
            session = self._sessions[request.session_id]
        except KeyError:
            raise KeyError(f"unknown session id {request.session_id}") from None
        if len(self._queue) >= self.config.max_queue:
            self.stats.rejected_requests += 1
            raise BackpressureError(
                f"service queue full ({self.config.max_queue} pending); "
                f"retry after a tick")
        session.channel.send_up(request)
        self._queue.append(request)
        return request.request_id

    def tick(self) -> list[FeatureResponse]:
        """One deterministic scheduler step: serve the next coalesced group.

        Takes the longest FIFO prefix of the queue (≤ ``max_batch``
        requests) whose per-sample feature shapes agree, runs **one**
        forward over all N bodies, splits the stacked outputs back per
        request and delivers each response over its session's channel.
        """
        if not self._queue:
            return []
        group = [self._queue.popleft()]
        key = group[0].coalesce_key
        while self._queue and len(group) < self.config.max_batch:
            if self._queue[0].coalesce_key != key:
                break
            group.append(self._queue.popleft())

        # Per-request attack capture, in FIFO order: identical to what K
        # sequential pipeline.infer(record=True) calls would retain.
        for request in group:
            if request.record:
                self.server.observed_features.append(
                    np.array(request.features, copy=True))

        if len(group) == 1:
            batch = group[0].features
        else:
            batch = np.concatenate([r.features for r in group], axis=0)
        outputs = self.server.compute(batch)

        responses = []
        offset = 0
        for request in group:
            n = request.batch_size
            outs = [np.ascontiguousarray(out[offset:offset + n])
                    for out in outputs]
            offset += n
            response = FeatureResponse(request.session_id, request.request_id,
                                       outs)
            session = self._sessions.get(request.session_id)
            if session is not None:  # session may have closed mid-flight
                session.channel.send_down(response)
                session._deliver(response)
            responses.append(response)

        self.stats.ticks += 1
        self.stats.served_requests += len(group)
        self.stats.served_samples += offset
        self.stats.peak_coalesced = max(self.stats.peak_coalesced, len(group))
        return responses

    def run_until_idle(self, max_ticks: int = 100_000) -> int:
        """Tick until the queue drains; returns the number of ticks run."""
        ticks = 0
        while self._queue:
            if ticks >= max_ticks:
                raise RuntimeError(f"queue did not drain in {max_ticks} ticks")
            self.tick()
            ticks += 1
        return ticks

    # -- aggregate accounting -------------------------------------------

    def transfer_totals(self) -> TransferStats:
        """Service-level traffic: every session's counters, open or closed."""
        return sum((s.stats for s in self._sessions.values()),
                   dataclasses.replace(self._closed_transfer))
