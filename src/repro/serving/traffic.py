"""Fleet-scale traffic: admission control and streaming trace builders.

Two halves of the same problem — load the fleet *cannot* take must be
turned away before it consumes queue slots, and load the fleet *should*
take must be generatable at 10^4–10^6 sessions without materialising a
list per request.

Admission control
-----------------
The queue-slot backpressure in
:class:`~repro.serving.service.InferenceService` protects one replica's
queue, but it fires per *request*, after framing and byte accounting,
against traffic the fleet already accepted.  The
:class:`AdmissionController` sits one layer earlier: it decides per new
**session** — at the session's first arrival, before anything is
submitted — whether the fleet has headroom for another tenant.  Three
outcomes, keyed on fleet pressure:

* ``ADMIT`` — full service;
* ``DOWNGRADE`` — best-effort service: the session's fair-share weight
  drops to 0, so weight-aware schedulers serve it only when paying
  tenants are idle and the overload ladder sheds it first;
* ``REJECT`` — the session's traffic is dropped at the door, costing
  the fleet nothing (no frame, no queue slot, no retry churn).

Streaming traces
----------------
:func:`heavy_tailed_trace` and :func:`diurnal_trace` are **generators**:
they yield :class:`~repro.serving.simulate.Arrival` objects lazily (in
vectorised chunks internally, one NumPy draw per ~8k arrivals) in
strictly non-decreasing time order, so the simulators can pull a
million-arrival trace through a bounded-memory event loop.  Both are
deterministic under ``seed`` — the same seed replays the same trace,
which the trace-determinism tests pin down.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.serving.simulate import Arrival

__all__ = [
    "ADMIT",
    "DOWNGRADE",
    "REJECT",
    "AdmissionController",
    "AdmissionPolicy",
    "diurnal_trace",
    "heavy_tailed_trace",
]

#: Admission outcomes (strings, so reports JSON-serialise trivially).
ADMIT = "admit"
DOWNGRADE = "downgrade"
REJECT = "reject"

#: Arrivals per internal vectorised draw in the streaming builders.
_CHUNK = 8192


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Pressure thresholds for admitting new sessions.

    A new session is admitted in full below ``downgrade_pressure``,
    admitted best-effort (weight 0) between the thresholds, and rejected
    at or above ``reject_pressure``.  ``max_sessions`` additionally caps
    how many sessions may ever be admitted (full or best-effort) —
    ``None`` means unlimited.
    """

    downgrade_pressure: float = 0.6
    reject_pressure: float = 0.9
    max_sessions: int | None = None

    def __post_init__(self):
        if not 0.0 < self.downgrade_pressure <= self.reject_pressure <= 1.0:
            raise ValueError("need 0 < downgrade_pressure <= "
                             "reject_pressure <= 1")
        if self.max_sessions is not None and self.max_sessions < 0:
            raise ValueError("max_sessions must be >= 0 (or None)")


class AdmissionController:
    """Per-session admission decisions, with running outcome counters.

    Stateless per decision (the policy thresholds do the work) but
    stateful in aggregate: ``admitted`` / ``downgraded`` / ``rejected``
    count outcomes so far, and the ``max_sessions`` cap counts every
    session the controller has let through.
    """

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.admitted = 0
        self.downgraded = 0
        self.rejected = 0

    def decide(self, pressure: float) -> str:
        """Decide one new session's fate at the given fleet pressure."""
        policy = self.policy
        if (policy.max_sessions is not None
                and self.admitted + self.downgraded >= policy.max_sessions):
            self.rejected += 1
            return REJECT
        if pressure >= policy.reject_pressure:
            self.rejected += 1
            return REJECT
        if pressure >= policy.downgrade_pressure:
            self.downgraded += 1
            return DOWNGRADE
        self.admitted += 1
        return ADMIT

    def as_dict(self) -> dict:
        """Outcome counters as a plain dict (for benchmark records)."""
        return {"admitted": self.admitted, "downgraded": self.downgraded,
                "rejected": self.rejected}

    def __repr__(self) -> str:
        return (f"AdmissionController(admitted={self.admitted}, "
                f"downgraded={self.downgraded}, rejected={self.rejected})")


def _session_popularity(num_sessions: int, alpha: float, rng) -> np.ndarray:
    """Pareto-distributed session popularity CDF (a few whales, many mice)."""
    weights = rng.pareto(alpha, num_sessions) + 1.0
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


def heavy_tailed_trace(num_sessions: int, num_requests: int,
                       rate_hz: float, *, seed: int = 0,
                       alpha: float = 1.3,
                       deadline_s: float | None = None):
    """Lazily yield Poisson arrivals with Pareto session popularity.

    Aggregate arrivals are memoryless at ``rate_hz``; each arrival is
    attributed to a session drawn from a Pareto(``alpha``) popularity
    distribution — the classic production shape where a handful of whale
    tenants dominate traffic while the long tail of mice appears once or
    twice.  Yields exactly ``num_requests`` arrivals in non-decreasing
    time order, generating in vectorised chunks so peak memory is
    O(chunk), never O(num_requests).

    Deterministic under ``seed``: equal seeds yield identical traces.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if not rate_hz > 0:
        raise ValueError("rate_hz must be positive")
    if not alpha > 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    popularity_cdf = _session_popularity(num_sessions, alpha, rng)
    now = 0.0
    remaining = num_requests
    while remaining > 0:
        n = min(_CHUNK, remaining)
        remaining -= n
        times = now + np.cumsum(rng.exponential(1.0 / rate_hz, size=n))
        now = float(times[-1])
        picks = np.searchsorted(popularity_cdf, rng.random(n), side="right")
        for t, sid in zip(times, picks):
            yield Arrival(time=float(t), session_index=int(sid),
                          deadline_s=deadline_s)


def diurnal_trace(num_sessions: int, num_requests: int,
                  base_rate_hz: float, *, period_s: float,
                  peak_factor: float = 4.0, seed: int = 0,
                  deadline_s: float | None = None):
    """Lazily yield arrivals under a sinusoidal day/night load curve.

    A non-homogeneous Poisson process whose instantaneous rate swings
    between ``base_rate_hz`` (trough) and ``base_rate_hz * peak_factor``
    (peak) on a cosine of period ``period_s`` — the diurnal curve an
    autoscaler must ride: spawn into the morning ramp, drain after the
    evening peak.  Sampled by thinning against the peak rate, vectorised
    per chunk, so memory stays O(chunk).  Sessions are drawn uniformly.
    Yields exactly ``num_requests`` arrivals, non-decreasing in time;
    deterministic under ``seed``.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if not base_rate_hz > 0:
        raise ValueError("base_rate_hz must be positive")
    if not period_s > 0:
        raise ValueError("period_s must be positive")
    if not peak_factor >= 1.0:
        raise ValueError("peak_factor must be >= 1 (1 = flat Poisson)")
    rng = np.random.default_rng(seed)
    peak_rate = base_rate_hz * peak_factor
    omega = 2.0 * math.pi / period_s
    now = 0.0
    emitted = 0
    while emitted < num_requests:
        candidates = now + np.cumsum(
            rng.exponential(1.0 / peak_rate, size=_CHUNK))
        now = float(candidates[-1])
        # Thinning: keep a candidate at time t with probability
        # rate(t) / peak_rate, where rate(t) sweeps base..peak on a
        # cosine (trough at t = 0, peak at half-period).
        rate = base_rate_hz * (
            1.0 + (peak_factor - 1.0)
            * 0.5 * (1.0 - np.cos(omega * candidates)))
        keep = candidates[rng.random(_CHUNK) < rate / peak_rate]
        if keep.size == 0:
            continue
        keep = keep[:num_requests - emitted]
        picks = rng.integers(0, num_sessions, size=keep.size)
        emitted += keep.size
        for t, sid in zip(keep, picks):
            yield Arrival(time=float(t), session_index=int(sid),
                          deadline_s=deadline_s)
