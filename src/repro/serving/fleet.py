"""The replicated service tier: sticky routing, health checks, failover.

Ensembler pins privacy-critical state — the private selector subset and
the per-session noise seed — to the client session, so a fleet cannot
spray requests across stateless replicas: every session must route
*stickily* to one replica, and must survive that replica dying.  This
module is the layer that makes N hardened
:class:`~repro.serving.service.InferenceService` replicas behave like
one service that loses machines and keeps serving:

* :class:`HashRing` — consistent hashing with virtual nodes, keyed on
  session id.  Removing a replica moves only ~1/N of sessions (its arc),
  everyone else stays put — the property that bounds failover blast
  radius and that the fleet chaos gate asserts (≤ ~1/N of live sessions
  migrated per replica loss).
* :class:`FailureDetector` — heartbeat staleness on the virtual clock
  with :class:`OverloadController`-style hysteresis::

      HEALTHY ──(stale > suspect_after)──► SUSPECT ──(stale > down_after)──► DOWN
         ▲                                   │                               │
         └──(recover_heartbeats on time)─────┘                    (fenced; failover)

      DRAINING is entered administratively (:meth:`ServiceFleet.drain`):
      out of the ring, still ticking its backlog.

  A replica marked ``DOWN`` is **fenced**: it never ticks again, so a
  half-dead replica that wakes up later cannot double-serve a request
  that already failed over.
* :class:`ServiceFleet` — owns the replicas, the ring, the detector and
  a :class:`~repro.serving.checkpoint.CheckpointStore`.  It implements
  the session-facing service surface (``submit`` / ``advance_clock`` /
  ``now`` / ``run_until_idle``), so a
  :class:`~repro.serving.session.Session` binds to the *fleet* and
  routing is invisible to clients.  On failover the replacement replica
  adopts each migrated session from its last checkpoint
  (:meth:`~repro.serving.checkpoint.SessionState.apply` — epoch bump,
  conservative token level, request-id floor); requests in flight on the
  dead replica are recovered by the client-side
  :class:`~repro.serving.faults.RetryPolicy` timeout and deduplicated
  service-side, so nothing is ever served twice.

Fleet overload ladder
---------------------
Each replica keeps its own
:class:`~repro.serving.overload.OverloadController`, but the fleet caps
it at ``narrow-codec``: a single hot replica may shed best-effort
tenants and narrow its downlink codec on its own, yet the
privacy-relevant last resort — shrinking the served ensemble — unlocks
only when *fleet-wide* queue pressure crosses
:attr:`FleetPolicy.shrink_pressure`.  Degrading the ensemble is a fleet
decision, not a local reflex.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import math
import zlib

from repro.serving.checkpoint import CheckpointStore
from repro.serving.errors import (
    BackpressureError,
    RequestState,
    UnknownSessionError,
)
from repro.serving.faults import (
    REPLICA_CRASH,
    REPLICA_HANG,
    REPLICA_PARTITION,
    REPLICA_SLOW,
    FaultInjector,
    ReplicaFault,
)
from repro.serving.overload import LEVEL_NARROW_CODEC, LEVEL_SHRINK_ENSEMBLE
from repro.serving.protocol import Codec, UploadRequest
from repro.serving.service import (
    _DEFAULT_LIMIT,
    InferenceService,
    RateLimit,
    RateLimiter,
    ServiceStats,
    build_client,
)
from repro.serving.session import Session


class ReplicaHealth(enum.Enum):
    """Health states of one replica, as seen by the failure detector."""

    HEALTHY = "healthy"    # heartbeating on time; in the ring
    SUSPECT = "suspect"    # heartbeats stale; still in the ring (hysteresis)
    DOWN = "down"          # declared dead; fenced and failed over
    DRAINING = "draining"  # administratively out of the ring; ticking backlog


@dataclasses.dataclass(frozen=True)
class FleetPolicy:
    """Shape of the fleet's routing, detection and failover behaviour.

    ``vnodes`` is the virtual-node count per replica on the hash ring
    (more vnodes → smoother session spread and smaller migration
    variance).  The detector declares a replica ``SUSPECT`` after
    ``suspect_after_s`` of heartbeat silence and ``DOWN`` (fenced,
    failed over) after ``down_after_s``; a suspect recovers after
    ``recover_heartbeats`` consecutive heartbeats arrive.  Sessions are
    checkpointed at most every ``checkpoint_interval_s`` virtual
    seconds.  ``shrink_pressure`` is the fleet-wide queue-pressure ratio
    above which replicas are allowed to escalate to the
    ensemble-shrinking overload level.
    """

    vnodes: int = 64
    heartbeat_interval_s: float = 0.01
    suspect_after_s: float = 0.025
    down_after_s: float = 0.05
    recover_heartbeats: int = 2
    checkpoint_interval_s: float = 0.02
    shrink_pressure: float = 0.75

    def __post_init__(self):
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if not self.heartbeat_interval_s > 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if not self.suspect_after_s > self.heartbeat_interval_s:
            raise ValueError("suspect_after_s must exceed the heartbeat "
                             "interval (else healthy replicas flap)")
        if not self.down_after_s > self.suspect_after_s:
            raise ValueError("down_after_s must exceed suspect_after_s "
                             "(SUSPECT is the hysteresis band)")
        if self.recover_heartbeats < 1:
            raise ValueError("recover_heartbeats must be >= 1")
        if self.checkpoint_interval_s < 0:
            raise ValueError("checkpoint_interval_s must be >= 0")
        if not 0.0 < self.shrink_pressure <= 1.0:
            raise ValueError("shrink_pressure must be in (0, 1]")


@dataclasses.dataclass
class FleetStats:
    """Fleet-level counters (per-replica counters live in each replica).

    ``lost_submits`` counts router→replica sends that vanished because
    the owner was partitioned or fenced (the client sees them exactly
    like a frame dropped on the wire: recoverable only by retry
    timeout).  ``migrated_sessions`` counts session re-homings caused by
    ring changes; ``restored_sessions`` counts how many of those applied
    a checkpoint.
    """

    heartbeats: int = 0          # heartbeats the router received
    lost_submits: int = 0        # submits lost to partition / fenced owner
    failovers: int = 0           # replicas declared DOWN and failed over
    drains: int = 0              # replicas administratively drained
    spawns: int = 0              # replicas added after construction
    migrated_sessions: int = 0   # sessions re-homed by ring changes
    restored_sessions: int = 0   # migrations that applied a checkpoint

    def as_dict(self) -> dict:
        """The counters as a plain dict (for benchmark JSON records)."""
        return dataclasses.asdict(self)

    def publish(self, registry, prefix: str = "fleet") -> None:
        """Snapshot every counter into ``prefix.field`` gauges on a
        :class:`~repro.telemetry.MetricsRegistry`."""
        registry.publish_fields(self, prefix)


class HashRing:
    """Consistent-hash ring with virtual nodes, keyed on session id.

    Hashing is ``zlib.crc32`` over stable strings, so placement is
    deterministic across processes (never a function of
    ``PYTHONHASHSEED``).  Each replica contributes ``vnodes`` points;
    a session is owned by the first point clockwise of its own hash.
    Removing a replica deletes only that replica's points, so exactly
    the sessions on its arcs move — the ~1/N failover blast radius.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, int]] = []  # (hash, replica_id)
        self._replicas: set[int] = set()

    @staticmethod
    def _hash(key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica_id: int) -> bool:
        return replica_id in self._replicas

    @property
    def replica_ids(self) -> tuple[int, ...]:
        """Replicas currently on the ring, ascending."""
        return tuple(sorted(self._replicas))

    def add(self, replica_id: int) -> None:
        """Place a replica's virtual nodes on the ring."""
        if replica_id in self._replicas:
            return
        self._replicas.add(replica_id)
        for v in range(self.vnodes):
            point = (self._hash(f"replica-{replica_id}/vnode-{v}"),
                     replica_id)
            bisect.insort(self._points, point)

    def remove(self, replica_id: int) -> None:
        """Delete a replica's points; only its arcs change owners."""
        if replica_id not in self._replicas:
            return
        self._replicas.discard(replica_id)
        self._points = [p for p in self._points if p[1] != replica_id]

    def owner(self, session_id: int) -> int | None:
        """The replica owning ``session_id`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        h = self._hash(f"session-{session_id}")
        index = bisect.bisect_left(self._points, (h, -1))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]


class FailureDetector:
    """Heartbeat-staleness health tracking with hysteresis.

    The router records each replica's heartbeats on the virtual clock;
    :meth:`observe` turns staleness into state transitions (see the
    module diagram).  Recovery requires ``recover_heartbeats``
    *consecutive* heartbeats — one lucky packet does not un-suspect a
    replica, mirroring the patience counters of
    :class:`~repro.serving.overload.OverloadController`.  ``DOWN`` is
    terminal: a fenced replica's heartbeats are ignored (no split-brain
    resurrection).
    """

    def __init__(self, policy: FleetPolicy):
        self.policy = policy
        self._health: dict[int, ReplicaHealth] = {}
        self._last_seen: dict[int, float] = {}
        self._streak: dict[int, int] = {}

    def register(self, replica_id: int, now: float) -> None:
        """Start tracking a replica as HEALTHY, heartbeat fresh at ``now``."""
        self._health[replica_id] = ReplicaHealth.HEALTHY
        self._last_seen[replica_id] = now
        self._streak[replica_id] = 0

    def health(self, replica_id: int) -> ReplicaHealth:
        """The replica's current health state."""
        return self._health[replica_id]

    def healths(self) -> dict[int, ReplicaHealth]:
        """A snapshot of every tracked replica's health."""
        return dict(self._health)

    def mark(self, replica_id: int, health: ReplicaHealth) -> None:
        """Administratively force a state (DRAINING, or DOWN for fencing)."""
        self._health[replica_id] = health
        self._streak[replica_id] = 0

    def heartbeat(self, replica_id: int, now: float) -> None:
        """Record one heartbeat; a SUSPECT replica heals on a streak."""
        health = self._health[replica_id]
        if health is ReplicaHealth.DOWN:
            return  # fenced: late heartbeats cannot resurrect it
        self._last_seen[replica_id] = max(self._last_seen[replica_id], now)
        if health is ReplicaHealth.SUSPECT:
            self._streak[replica_id] += 1
            if self._streak[replica_id] >= self.policy.recover_heartbeats:
                self._health[replica_id] = ReplicaHealth.HEALTHY
                self._streak[replica_id] = 0

    def observe(self, now: float) -> list[tuple[int, ReplicaHealth]]:
        """Advance staleness at ``now``; returns ``(replica, new_state)``
        transitions in replica order (empty when nothing changed)."""
        transitions = []
        for replica_id in sorted(self._health):
            health = self._health[replica_id]
            if health is ReplicaHealth.DOWN:
                continue
            stale = now - self._last_seen[replica_id]
            if stale >= self.policy.down_after_s:
                self._health[replica_id] = ReplicaHealth.DOWN
                transitions.append((replica_id, ReplicaHealth.DOWN))
            elif (stale >= self.policy.suspect_after_s
                  and health is ReplicaHealth.HEALTHY):
                self._health[replica_id] = ReplicaHealth.SUSPECT
                self._streak[replica_id] = 0
                transitions.append((replica_id, ReplicaHealth.SUSPECT))
        return transitions


class ReplicaHandle:
    """One replica as the router sees it: service + fault windows.

    The handle carries the *router-side* view of replica faults — a
    crashed flag, hang/partition/slow windows on the virtual clock and
    the fencing bit — so both the fleet and the fleet simulator ask the
    same object one question: can this replica tick (or be reached) at
    time ``t``?
    """

    def __init__(self, replica_id: int, service: InferenceService):
        self.replica_id = replica_id
        self.service = service
        self.crashed = False
        self.fenced = False          # DOWN: never ticks again
        self.hung_until = 0.0        # tick loop frozen before this time
        self.partitioned_until = 0.0  # router link severed before this time
        self.slow_until = 0.0        # ticks cost slow_factor x before this
        self.slow_factor = 1.0
        self.next_heartbeat = 0.0    # next scheduled emission time

    def alive(self, now: float) -> bool:
        """Not crashed and not fenced (may still be hung/partitioned)."""
        return not self.crashed and not self.fenced

    def hung(self, now: float) -> bool:
        """Whether the tick loop is frozen at ``now``."""
        return now < self.hung_until

    def partitioned(self, now: float) -> bool:
        """Whether the router↔replica link is severed at ``now``."""
        return now < self.partitioned_until

    def reachable(self, now: float) -> bool:
        """Whether the router can deliver a submit at ``now``."""
        return self.alive(now) and not self.partitioned(now)

    def tickable(self, now: float) -> bool:
        """Whether the replica may run a tick at ``now``.

        A partitioned replica holds its backlog instead of ticking —
        its responses could not reach any client anyway — which is what
        keeps exactly-once accounting simple: work either completes on
        a reachable replica or waits for retry-driven failover.
        """
        return (self.alive(now) and not self.hung(now)
                and not self.partitioned(now))

    def cost_factor(self, now: float) -> float:
        """Tick-cost multiplier at ``now`` (>1 inside a slow window)."""
        return self.slow_factor if now < self.slow_until else 1.0

    def heartbeats_at(self, at: float) -> bool:
        """Whether a heartbeat emitted at ``at`` reaches the router."""
        return (self.alive(at) and not self.hung(at)
                and not self.partitioned(at))


class ServiceFleet:
    """N replicas behind one session-facing service surface.

    Sessions bind to the fleet exactly as they would to a single
    :class:`~repro.serving.service.InferenceService` — the fleet
    implements ``submit`` / ``advance_clock`` / ``now`` /
    ``run_until_idle`` / ``close_session`` — and the
    :class:`HashRing` pins each session to one replica.  The fleet
    drives heartbeats, failure detection, checkpointing and failover
    from :meth:`pump`, which runs on every clock advance and tick, all
    on the virtual clock (deterministic, replayable).

    ``faults`` (shared with the replicas and the simulator) books
    replica-level fault applications; ``checkpoints`` defaults to a
    fresh in-memory :class:`~repro.serving.checkpoint.CheckpointStore`
    with the policy's snapshot interval.
    """

    def __init__(self, replicas, policy: FleetPolicy | None = None,
                 faults: FaultInjector | None = None,
                 checkpoints: CheckpointStore | None = None):
        replicas = list(replicas)
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        self.policy = policy if policy is not None else FleetPolicy()
        self.faults = faults
        self.checkpoints = (checkpoints if checkpoints is not None
                            else CheckpointStore(
                                self.policy.checkpoint_interval_s))
        self.ring = HashRing(self.policy.vnodes)
        self.detector = FailureDetector(self.policy)
        self.fleet_stats = FleetStats()
        self.now = 0.0
        #: health transitions as ``(time, replica_id, state name)``, in
        #: order — the per-replica health timeline demos print.
        self.health_log: list[tuple[float, int, str]] = []
        #: every migration's privacy ledger entry, ``(session_id,
        #: spent_eps_before, spent_eps_after)`` — the fleet_scale gate
        #: asserts ``after >= before`` for every row (ε is ratcheted,
        #: never minted, across spawn/drain/failover migrations).
        self.migration_epsilon_log: list[tuple[int, float, float]] = []
        self._handles: dict[int, ReplicaHandle] = {}
        self._sessions: dict[int, Session] = {}
        self._homes: dict[int, int] = {}  # session id -> replica id
        self._next_session_id = 1
        self._next_ckpt_sweep = 0.0  # next due time of the snapshot sweep
        for replica_id, service in enumerate(replicas):
            if not isinstance(service, InferenceService):
                raise TypeError("replicas must be InferenceService instances")
            self._handles[replica_id] = ReplicaHandle(replica_id, service)
            self.ring.add(replica_id)
            self.detector.register(replica_id, 0.0)
            self.health_log.append((0.0, replica_id,
                                    ReplicaHealth.HEALTHY.value))

    # -- introspection ---------------------------------------------------

    @property
    def num_replicas(self) -> int:
        """How many replicas the fleet has ever owned (any health)."""
        return len(self._handles)

    @property
    def replica_ids(self) -> tuple[int, ...]:
        """Every replica id the fleet has ever owned, ascending."""
        return tuple(sorted(self._handles))

    @property
    def replicas(self) -> tuple[InferenceService, ...]:
        """The replica services, by replica id."""
        return tuple(h.service for _, h in sorted(self._handles.items()))

    def handle(self, replica_id: int) -> ReplicaHandle:
        """The router-side handle for one replica."""
        return self._handles[replica_id]

    @property
    def num_nets(self) -> int:
        """Ensemble size served by every replica."""
        return self.replicas[0].num_nets

    @property
    def sessions(self) -> tuple[Session, ...]:
        """Every open session, by session id."""
        return tuple(s for _, s in sorted(self._sessions.items()))

    def home_of(self, session_id: int) -> int:
        """The replica a session is currently homed on."""
        return self._homes[session_id]

    def health(self, replica_id: int) -> ReplicaHealth:
        """One replica's current health state."""
        return self.detector.health(replica_id)

    @property
    def pending(self) -> int:
        """Queued requests on replicas that can currently tick.

        Work held by hung, partitioned or fenced replicas is excluded —
        it cannot drain until the window clears (or a retry re-routes
        it), so counting it would deadlock ``run_until_idle``.
        """
        return sum(h.service.pending for h in self._handles.values()
                   if h.tickable(self.now))

    @property
    def stats(self) -> ServiceStats:
        """Fleet-wide service counters: every replica's stats, merged."""
        return sum((h.service.stats for h in self._handles.values()),
                   ServiceStats())

    @property
    def pressure(self) -> float:
        """Fleet-wide queue occupancy in [0, 1] over alive replicas.

        The congestion signal the overload cap already keys on, exposed
        for the autoscaler and admission controller (queued work divided
        by total queue capacity; fenced/crashed replicas excluded).
        """
        active = [h for h in self._handles.values() if h.alive(self.now)]
        capacity = sum(h.service.config.max_queue for h in active)
        queued = sum(h.service.pending for h in active)
        return queued / capacity if capacity else 0.0

    # -- sessions --------------------------------------------------------

    def open_session(self, head, tail, *, selector=None, noise=None,
                     noise_seed: int | None = None,
                     noise_shape: tuple[int, ...] | None = None,
                     noise_sigma: float = 0.1,
                     codec: Codec | int | str | None = None,
                     weight: float = 1.0,
                     rate_limit: "RateLimit | tuple | float | None" = _DEFAULT_LIMIT,
                     privacy=None,
                     rotation=None,
                     ) -> Session:
        """Open a tenant session against the fleet (see
        :meth:`InferenceService.open_session` for the knobs, including
        the ``privacy`` budget and ``rotation`` policy specs).

        The session binds to the fleet — its service handle *is* the
        fleet — and is homed on its ring owner; session ids are
        allocated fleet-wide, so a session keeps its id (and its privacy
        budget: one shared :class:`Session` object, charged by whichever
        replica serves it) when it migrates between replicas.
        """
        client = build_client(head, tail, selector=selector, noise=noise,
                              noise_seed=noise_seed, noise_shape=noise_shape,
                              noise_sigma=noise_sigma)
        session = self.adopt_session(client, codec=codec, weight=weight,
                                     rate_limit=rate_limit,
                                     privacy=privacy, rotation=rotation)
        if noise is None and noise_seed is not None:
            session.noise_seed = int(noise_seed)
            session.noise_shape = tuple(int(d) for d in noise_shape)
            session.noise_sigma = float(noise_sigma)
        return session

    def adopt_session(self, client, codec: Codec | int | str | None = None,
                      weight: float = 1.0,
                      rate_limit: "RateLimit | tuple | float | None" = _DEFAULT_LIMIT,
                      privacy=None,
                      rotation=None,
                      ) -> Session:
        """Adopt an already-built client bundle as a fleet tenant.

        Codec and rate-limit defaults come from the ring owner's
        replica config, so a homogeneous fleet behaves exactly like one
        of its replicas.
        """
        owner = self.ring.owner(self._next_session_id)
        if owner is None:
            raise BackpressureError("no live replicas on the ring")
        config = self._handles[owner].service.config
        codec = Codec.parse(config.codec if codec is None else codec)
        limit = RateLimit.parse(config.rate_limit
                                if rate_limit is _DEFAULT_LIMIT else rate_limit)
        limiter = RateLimiter(limit, now=self.now) if limit is not None else None
        session = Session(self._next_session_id, client, self,
                          codec=codec, weight=weight, limiter=limiter,
                          privacy=privacy, rotation=rotation)
        self._handles[owner].service.register_session(session)
        self._sessions[session.session_id] = session
        self._homes[session.session_id] = owner
        self._next_session_id += 1
        return session

    def close_session(self, session: Session) -> None:
        """Close a tenant fleet-wide: cancel queued work on its home
        replica and drop its checkpoint."""
        home = self._homes.pop(session.session_id, None)
        self._sessions.pop(session.session_id, None)
        if home is not None:
            self._handles[home].service.close_session(session)
        self.checkpoints.drop(session.session_id)

    # -- clock / pump ----------------------------------------------------

    def advance_clock(self, now: float) -> None:
        """Advance the fleet clock (monotonic) and pump the control loop.

        Every replica's virtual clock follows the fleet's, so limiter
        refills and arrival stamps agree regardless of which replica a
        session lands on.
        """
        self.now = max(self.now, float(now))
        for handle in self._handles.values():
            handle.service.advance_clock(self.now)
        self.pump(self.now)

    def next_heartbeat_time(self) -> float:
        """When the next scheduled heartbeat is due (``inf`` if none).

        Event-driven callers (the fleet simulator) advance the clock to
        this time when it precedes every other event, so failure
        detection never waits for unrelated traffic.
        """
        times = [h.next_heartbeat for h in self._handles.values()
                 if not h.crashed and not h.fenced]
        return min(times) if times else math.inf

    def pump(self, now: float) -> None:
        """Run one control-loop pass at ``now``.

        Emits due heartbeats (those a crashed/hung/partitioned replica
        would have missed are simply not received), advances the failure
        detector — fencing and failing over any replica that crosses
        ``down_after_s`` — refreshes the fleet overload cap, and
        snapshots sessions whose checkpoint interval has elapsed.
        """
        interval = self.policy.heartbeat_interval_s
        for handle in self._handles.values():
            while handle.next_heartbeat <= now:
                at = handle.next_heartbeat
                handle.next_heartbeat += interval
                if handle.heartbeats_at(at):
                    self.detector.heartbeat(handle.replica_id, at)
                    self.fleet_stats.heartbeats += 1
        for replica_id, health in self.detector.observe(now):
            self.health_log.append((now, replica_id, health.value))
            if health is ReplicaHealth.DOWN:
                self._failover(replica_id, now)
        self._update_overload_cap(now)
        # The snapshot sweep is O(sessions); at fleet scale (10^4+
        # sessions, one pump per event) running it every pump dominates
        # the simulator.  Sweep only when the checkpoint interval has
        # elapsed — maybe_snapshot would decline any sooner anyway
        # (interval 0 keeps the legacy every-pump behaviour).
        if now >= self._next_ckpt_sweep:
            for session in self._sessions.values():
                self.checkpoints.maybe_snapshot(session, now)
            self._next_ckpt_sweep = now + self.checkpoints.interval_s

    def _update_overload_cap(self, now: float) -> None:
        """Gate each replica's ladder depth on fleet-wide pressure."""
        allow = (LEVEL_SHRINK_ENSEMBLE
                 if self.pressure >= self.policy.shrink_pressure
                 else LEVEL_NARROW_CODEC)
        for handle in self._handles.values():
            if handle.alive(now) and handle.service.overload is not None:
                handle.service.overload.max_level = allow

    # -- faults / failover ----------------------------------------------

    def apply_fault(self, fault: ReplicaFault) -> None:
        """Apply one replica-level fault to the router-side handle.

        Crash and hang stop heartbeats (the emitter is the tick loop);
        partition stops them *arriving*; slow leaves them on time — the
        gray failure the detector must ride out.  Detection itself is
        left to :meth:`pump`: the fleet learns about the fault only
        through heartbeat silence, ``down_after_s`` later.
        """
        handle = self._handles[fault.replica]
        if fault.kind == REPLICA_CRASH:
            handle.crashed = True
        elif fault.kind == REPLICA_HANG:
            handle.hung_until = max(handle.hung_until, fault.until_s)
        elif fault.kind == REPLICA_PARTITION:
            handle.partitioned_until = max(handle.partitioned_until,
                                           fault.until_s)
        elif fault.kind == REPLICA_SLOW:
            handle.slow_until = max(handle.slow_until, fault.until_s)
            handle.slow_factor = fault.factor
        if self.faults is not None:
            self.faults.record_replica_fault(fault)

    def kill_replica(self, replica_id: int) -> None:
        """Crash a replica right now (mid-trace kill convenience)."""
        self.apply_fault(ReplicaFault(replica=replica_id, at_s=self.now,
                                      kind=REPLICA_CRASH))

    def spawn_replica(self, service: InferenceService) -> int:
        """Add a replica to a running fleet; returns its replica id.

        The new replica joins the ring, starts heartbeating from the
        current clock and — the half consistent hashing handles for us —
        *takes over* exactly the sessions whose ring owner it now is
        (~1/N of them, its arcs).  Those sessions migrate gracefully,
        exactly like a drain in reverse: the live :class:`Session`
        object moves (shared fleet-wide, so selector rotation state and
        the Rényi accountant carry without replay — no epoch bump, no
        checkpoint restore) and is snapshotted right after the move so
        the new home fails over from a fresh checkpoint.  Scale-up is
        therefore useless-work-free: the spawned replica serves existing
        load immediately instead of waiting for new sessions.
        """
        if not isinstance(service, InferenceService):
            raise TypeError("replicas must be InferenceService instances")
        replica_id = max(self._handles) + 1
        handle = ReplicaHandle(replica_id, service)
        handle.next_heartbeat = self.now  # no back-dated heartbeat burst
        service.advance_clock(self.now)
        self._handles[replica_id] = handle
        self.ring.add(replica_id)
        self.detector.register(replica_id, self.now)
        self.health_log.append((self.now, replica_id,
                                ReplicaHealth.HEALTHY.value))
        self.fleet_stats.spawns += 1
        self._rebalance_to(replica_id)
        return replica_id

    def _rebalance_to(self, replica_id: int) -> int:
        """Gracefully move the sessions a new replica's arcs now own.

        The inverse of a drain migration: live state moves (ε ledger
        entry recorded either side of the move), the session registers
        on the new home, and a checkpoint is snapshotted immediately so
        failover from the new home never rolls back past the move.
        """
        moved = 0
        for session_id, home in sorted(self._homes.items()):
            if home == replica_id:
                continue
            owner = self.ring.owner(session_id)
            if owner != replica_id:
                continue
            session = self._sessions[session_id]
            spent_before = (session.privacy.spent
                            if session.privacy is not None else 0.0)
            target = self._handles[replica_id].service
            if session_id not in target._sessions:
                target.register_session(session)
            self._homes[session_id] = replica_id
            self.checkpoints.snapshot(session)
            spent_after = (session.privacy.spent
                           if session.privacy is not None else 0.0)
            self.migration_epsilon_log.append(
                (session_id, spent_before, spent_after))
            self.fleet_stats.migrated_sessions += 1
            moved += 1
        return moved

    def drain(self, replica_id: int) -> int:
        """Administratively drain a replica: out of the ring, still
        ticking its backlog.  Its sessions re-home immediately (graceful
        migration — live state moves, no checkpoint restore, no epoch
        bump); returns how many sessions moved."""
        handle = self._handles[replica_id]
        self.detector.mark(replica_id, ReplicaHealth.DRAINING)
        self.health_log.append((self.now, replica_id,
                                ReplicaHealth.DRAINING.value))
        self.ring.remove(replica_id)
        self.fleet_stats.drains += 1
        return self._migrate_sessions(replica_id, restore=False)

    def _failover(self, replica_id: int, now: float) -> None:
        """Fence a DOWN replica and re-home its sessions by checkpoint."""
        handle = self._handles[replica_id]
        handle.fenced = True
        self.ring.remove(replica_id)
        self.fleet_stats.failovers += 1
        self._migrate_sessions(replica_id, restore=True)

    def _migrate_sessions(self, replica_id: int, restore: bool) -> int:
        """Re-home every session of ``replica_id`` to its new ring owner.

        With ``restore=True`` (failover) each session first re-adopts
        its last checkpoint (epoch bump, conservative limiter level,
        request-id floor); the live client-side request states survive
        either way, so nothing already terminal is touched.
        """
        moved = 0
        for session_id, home in sorted(self._homes.items()):
            if home != replica_id:
                continue
            session = self._sessions[session_id]
            spent_before = (session.privacy.spent
                            if session.privacy is not None else 0.0)
            if restore and session_id in self.checkpoints:
                self.checkpoints.load(session_id).apply(session)
                self.fleet_stats.restored_sessions += 1
            owner = self.ring.owner(session_id)
            if owner is None:
                # No replicas left: the session strands homeless and its
                # submits raise BackpressureError until a replica joins.
                self._homes.pop(session_id, None)
                continue
            target = self._handles[owner].service
            if session_id not in target._sessions:
                target.register_session(session)
            self._homes[session_id] = owner
            spent_after = (session.privacy.spent
                           if session.privacy is not None else 0.0)
            self.migration_epsilon_log.append(
                (session_id, spent_before, spent_after))
            self.fleet_stats.migrated_sessions += 1
            moved += 1
        return moved

    # -- request path ----------------------------------------------------

    def submit(self, request: UploadRequest) -> int:
        """Route one upload to its session's home replica.

        An unreachable owner (partitioned, or fenced before the ring
        caught up) behaves exactly like a frame dropped on the wire: the
        submit "succeeds" client-side, nothing is queued, and only the
        client's retry timeout can recover it (counted in
        ``fleet_stats.lost_submits``).  An empty ring raises
        :class:`~repro.serving.errors.BackpressureError` — there is
        nowhere left to shed to.
        """
        session = self._sessions.get(request.session_id)
        if session is None:
            raise UnknownSessionError(
                f"unknown session id {request.session_id}")
        owner = self._homes.get(request.session_id)
        if owner is None:
            session._resolve(request.request_id, RequestState.REJECTED)
            raise BackpressureError("no live replicas on the ring")
        handle = self._handles[owner]
        if not handle.reachable(self.now):
            self.fleet_stats.lost_submits += 1
            session._resolve(request.request_id, RequestState.QUEUED)
            return request.request_id
        return handle.service.submit(request)

    def tick(self) -> list:
        """Pump the control loop, then tick every tickable replica once.

        Returns the concatenated responses (a hung or partitioned
        replica contributes nothing — its backlog waits).
        """
        self.pump(self.now)
        responses = []
        for _, handle in sorted(self._handles.items()):
            if handle.tickable(self.now) and handle.service.pending:
                responses.extend(handle.service.tick())
        return responses

    def run_until_idle(self, max_ticks: int = 100_000) -> int:
        """Tick until no tickable replica holds work; returns tick rounds."""
        ticks = 0
        while self.pending:
            if ticks >= max_ticks:
                raise RuntimeError(f"fleet did not drain in {max_ticks} "
                                   f"tick rounds")
            self.tick()
            ticks += 1
        return ticks
