"""Graceful degradation under overload: the hysteresis ladder.

A service near queue capacity has two bad options — reject everything
(collapse) or serve everything late (also collapse, just slower).  The
:class:`OverloadController` gives it a third: trade *quality* for
capacity, one reversible step at a time, in the order that hurts paying
tenants least:

1. **shed best-effort** — weight-0 tenants (the explicitly best-effort
   class of the weighted scheduler) are refused at admission;
2. **narrow the codec** — downlink responses drop one codec step
   (fp32 → fp16 → int8), shrinking the dominant Table-III downlink term;
3. **shrink the ensemble** — the stacked pass runs only the first ``k``
   of N bodies and responses alias the missing maps cyclically, flagged
   ``degraded`` on the wire so clients observe the accuracy trade
   (rotating served subsets is the switching-ensemble move of Izmailov
   et al.; the noise/subset-size axis is Rezaei et al.'s
   accuracy–privacy trade-off).

Escalation and recovery are governed by *hysteresis*: queue pressure
(``pending / max_queue``) must sit above the high watermark for
``patience_ticks`` consecutive observations to climb one level, and
below the low watermark equally long to step back down — so a single
bursty tick neither degrades the fleet nor does a single quiet one
snap it back into overload.  Every transition is visible in
``ServiceStats`` (``overload_level`` / ``overload_escalations`` /
``overload_recoveries``).
"""

from __future__ import annotations

import dataclasses

from repro.serving.protocol import Codec

#: Ladder levels, mildest first.  ``LEVEL_NORMAL`` is full quality.
LEVEL_NORMAL = 0
LEVEL_SHED_BEST_EFFORT = 1
LEVEL_NARROW_CODEC = 2
LEVEL_SHRINK_ENSEMBLE = 3

#: Human-readable names for the ladder levels, in escalation order.
LADDER = ("normal", "shed-best-effort", "narrow-codec", "shrink-ensemble")

#: One-step codec narrowing used at ``LEVEL_NARROW_CODEC``.
_NARROWER = {Codec.FP32: Codec.FP16, Codec.FP16: Codec.INT8,
             Codec.INT8: Codec.INT8}


@dataclasses.dataclass(frozen=True)
class OverloadPolicy:
    """Watermarks and patience of the degradation ladder.

    ``high_watermark`` / ``low_watermark`` are queue-pressure ratios
    (``pending / max_queue``); pressure must hold past a watermark for
    ``patience_ticks`` consecutive observations before the controller
    moves — that asymmetric band is the hysteresis that keeps the ladder
    from flapping.  ``min_ensemble_fraction`` bounds the deepest ensemble
    shrink (level 3 serves ``ceil(N * fraction)`` bodies, never fewer
    than one).
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.25
    patience_ticks: int = 2
    min_ensemble_fraction: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        if self.patience_ticks < 1:
            raise ValueError("patience_ticks must be >= 1")
        if not 0.0 < self.min_ensemble_fraction <= 1.0:
            raise ValueError("min_ensemble_fraction must be in (0, 1]")


class OverloadController:
    """Hysteresis state machine walking the degradation ladder.

    The service calls :meth:`observe` once per tick with its current
    queue pressure; the controller climbs or descends one
    :data:`LADDER` level at a time and the service consults
    :attr:`shed_best_effort` / :meth:`codec_for` / :meth:`num_bodies`
    on its admission and response paths.  The controller is pure policy
    state — it holds no reference to the service, so one instance can be
    unit-tested (and replayed) in isolation.
    """

    def __init__(self, policy: OverloadPolicy | None = None,
                 max_level: int = LEVEL_SHRINK_ENSEMBLE):
        self.policy = policy if policy is not None else OverloadPolicy()
        self.level = LEVEL_NORMAL
        self.escalations = 0   # total upward transitions
        self.recoveries = 0    # total downward transitions
        self._over = 0         # consecutive observations above high water
        self._under = 0        # consecutive observations below low water
        self._max_level = LEVEL_SHRINK_ENSEMBLE
        self.max_level = max_level

    @property
    def max_level(self) -> int:
        """The deepest ladder level this controller may escalate to.

        A fleet caps its replicas at :data:`LEVEL_NARROW_CODEC` so each
        replica sheds and narrows on its own, and raises the cap to
        :data:`LEVEL_SHRINK_ENSEMBLE` only under *fleet-wide* pressure —
        shrinking the served ensemble is the privacy-relevant step and
        must be a last resort, not a local reflex.  Lowering the cap
        below the current level steps the controller straight down to
        the cap (counted as recoveries, so transitions stay auditable).
        """
        return self._max_level

    @max_level.setter
    def max_level(self, value: int) -> None:
        if not LEVEL_NORMAL <= value <= LEVEL_SHRINK_ENSEMBLE:
            raise ValueError(f"max_level must be in [{LEVEL_NORMAL}, "
                             f"{LEVEL_SHRINK_ENSEMBLE}], got {value}")
        self._max_level = int(value)
        if self.level > self._max_level:
            self.recoveries += self.level - self._max_level
            self.level = self._max_level

    @property
    def level_name(self) -> str:
        """The current ladder level's human-readable name."""
        return LADDER[self.level]

    @property
    def shed_best_effort(self) -> bool:
        """Whether weight-0 (best-effort) tenants are refused admission."""
        return self.level >= LEVEL_SHED_BEST_EFFORT

    @property
    def degraded(self) -> bool:
        """Whether any degradation step is currently active."""
        return self.level > LEVEL_NORMAL

    def observe(self, pending: int, max_queue: int) -> int:
        """Feed one tick's queue pressure; returns the (new) level.

        Pressure above the high watermark for ``patience_ticks``
        consecutive calls climbs one level; pressure below the low
        watermark equally long descends one.  In the hysteresis band
        between the watermarks both counters reset — the ladder holds.
        """
        pressure = pending / max_queue if max_queue > 0 else 0.0
        if pressure >= self.policy.high_watermark:
            self._over += 1
            self._under = 0
            if (self._over >= self.policy.patience_ticks
                    and self.level < min(len(LADDER) - 1, self._max_level)):
                self.level += 1
                self.escalations += 1
                self._over = 0
        elif pressure <= self.policy.low_watermark:
            self._under += 1
            self._over = 0
            if (self._under >= self.policy.patience_ticks
                    and self.level > LEVEL_NORMAL):
                self.level -= 1
                self.recoveries += 1
                self._under = 0
        else:
            self._over = 0
            self._under = 0
        return self.level

    def codec_for(self, negotiated: Codec) -> Codec:
        """The downlink codec actually served at the current level.

        At :data:`LEVEL_NARROW_CODEC` and above the session's negotiated
        codec narrows one step (fp32 → fp16 → int8); below, it is served
        as negotiated.  Narrowing is monotone — an int8 session is never
        degraded further.
        """
        if self.level >= LEVEL_NARROW_CODEC:
            return _NARROWER[negotiated]
        return negotiated

    def num_bodies(self, total: int) -> int:
        """How many of ``total`` ensemble bodies the next pass should run.

        Below :data:`LEVEL_SHRINK_ENSEMBLE` this is all of them; at the
        deepest level it is ``ceil(total * min_ensemble_fraction)``,
        never fewer than one.
        """
        if self.level < LEVEL_SHRINK_ENSEMBLE or total <= 1:
            return total
        k = -(-total * self.policy.min_ensemble_fraction // 1)  # ceil
        return max(1, min(total, int(k)))
