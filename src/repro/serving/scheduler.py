"""Pluggable admission/grouping policies for the :class:`InferenceService`.

PR 3's service hard-coded one scheduling policy: drain-the-queue FIFO with
a fixed ``max_batch`` request count per tick.  This module turns that
policy into a :class:`Scheduler` abstraction the service delegates to —
the scheduler owns the queued :class:`~repro.serving.protocol.UploadRequest`
objects and decides, per tick, which coalescible group runs as the next
stacked N-body pass.  Three built-ins cover the policy space the ROADMAP
names:

* :class:`FifoScheduler` — bit-exact with the PR-3 behaviour: the longest
  queue prefix (≤ ``max_batch``) whose per-sample feature shapes agree.
  Deterministic, never reorders, but one chatty tenant can monopolise a
  tick (and, ensemble-inversion-wise, shape every batch the semi-honest
  server observes).
* :class:`FairShareScheduler` — per-session round-robin queues: each tick
  elects a leader session (rotating), then fills the group one request
  per session per cycle, so K waiting tenants each land ~1/K of every
  stacked pass regardless of how fast one of them submits.
* :class:`WeightedFairScheduler` — deficit round-robin over payload
  *samples*: sessions negotiate a ``weight`` at open time and receive
  group slots proportional to it (a weight-2 tenant lands ~2x the samples
  of a weight-1 tenant while both have backlog).  With all weights at 1
  and single-sample requests it reduces to :class:`FairShareScheduler`.
* :class:`DeadlineScheduler` — earliest-deadline-first with *adaptive*
  group formation: requests carry ``arrival_time``/``deadline``, and a
  group grows by payload size under a latency budget (estimated pass cost
  must fit the earliest deadline's slack) instead of a fixed request
  count.  :meth:`Scheduler.next_event_time` tells an event-driven
  front-end (:mod:`repro.serving.simulate`) the latest safe moment to
  trigger the tick, so batches accumulate while slack allows.

All schedulers preserve the coalescing invariant: a group shares one
``coalesce_key`` (per-sample shape + dtype), so the service can stack it
along the batch axis into one fused pass.

Speculative group formation (:meth:`Scheduler.next_group_speculative`)
relaxes that invariant for services that opt in
(``ServingConfig.speculative``): requests whose per-sample *spatial*
sizes differ — but whose dtype, rank and channel count agree
(:func:`speculative_compatible`) — may ride one group, and the service
reconciles the mix (zero-pad to a common canvas when the engine is
provably padding-safe, exact per-key sub-passes otherwise) instead of
splitting the tick.  The base implementation falls back to the exact-key
policy, so only policies that explicitly override it ever form mixed
groups.
"""

from __future__ import annotations

import bisect
import collections
import math

from repro.serving.protocol import UploadRequest


#: registry of scheduler policies by name.  Subclassing :class:`Scheduler`
#: with a fresh ``name`` auto-registers it, so custom policies work both by
#: instance (``InferenceService(..., scheduler=Mine())``) and — when the
#: constructor takes no required arguments — by name.  Builtin names are
#: never overridden.
SCHEDULERS: dict[str, type["Scheduler"]] = {}


def speculative_compatible(leader: UploadRequest,
                           candidate: UploadRequest) -> bool:
    """Whether ``candidate`` may ride a speculative group led by ``leader``.

    Exact coalesce-key matches always qualify.  Beyond that, 4-D feature
    maps qualify when dtype and channel count agree — only the spatial
    size may differ, which the service reconciles by canvas padding or
    per-key sub-passes.  Rank or dtype mismatches never mix: there is no
    cheap reconciliation for them.
    """
    if candidate.coalesce_key == leader.coalesce_key:
        return True
    a, b = leader.features, candidate.features
    return (a.ndim == 4 and b.ndim == 4 and a.dtype == b.dtype
            and a.shape[1] == b.shape[1])


class Scheduler:
    """Admission + group-formation policy behind an ``InferenceService``.

    The service calls :meth:`enqueue` at admission (after backpressure and
    byte accounting), :meth:`next_group` at each tick, and
    :meth:`cancel_session` when a tenant closes.  Subclasses own their
    queue structure; the service only observes ``pending``.
    """

    #: registry key; subclasses override.
    name = "abstract"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.name != Scheduler.name and cls.name not in SCHEDULERS:
            SCHEDULERS[cls.name] = cls

    @property
    def pending(self) -> int:
        """Queued requests not yet handed out by :meth:`next_group`."""
        raise NotImplementedError

    def enqueue(self, request: UploadRequest) -> None:
        """Admit one request into the scheduler's queue structure.

        Called by the service *after* backpressure and byte accounting;
        the request's ``arrival_time`` is already stamped.
        """
        raise NotImplementedError

    def next_group(self, max_batch: int, now: float = 0.0) -> list[UploadRequest]:
        """Pop the next coalescible group (possibly empty).

        Args:
            max_batch: the service's configured group-size cap (policies
                may ignore it — :class:`DeadlineScheduler` does).
            now: the service's virtual clock, for deadline-aware policies.

        Returns:
            Queued requests sharing one ``coalesce_key``, removed from
            the queue; an empty list when nothing is pending.
        """
        raise NotImplementedError

    def next_group_speculative(self, max_batch: int,
                               now: float = 0.0) -> list[UploadRequest]:
        """Pop the next group, allowing mixed spatial sizes.

        Called instead of :meth:`next_group` by services running with
        ``ServingConfig.speculative``.  A returned group may span several
        coalesce keys as long as every member is
        :func:`speculative_compatible` with the group's leader; the
        service reconciles the mix within one tick.  The default simply
        delegates to the exact-key :meth:`next_group`, so policies that
        never override this are unaffected by the flag.
        """
        return self.next_group(max_batch, now=now)

    def cancel_session(self, session_id: int) -> list[UploadRequest]:
        """Drop a closed tenant's queued requests; returns them.

        The service marks each returned request terminally ``CANCELLED``
        (exactly once), so callers get the requests themselves rather
        than a bare count.
        """
        raise NotImplementedError

    def drop_expired(self, now: float) -> list[UploadRequest]:
        """Shed queued requests whose explicit ``deadline`` passed.

        Called by the service at the top of each tick when
        ``ServingConfig.shed_expired`` is on; only *explicit* per-request
        deadlines expire (a deadline scheduler's implicit SLO target is a
        latency goal, not an expiry).  Returns the shed requests so the
        service can mark them terminally ``EXPIRED``.
        """
        raise NotImplementedError

    def set_session_weight(self, session_id: int, weight: float) -> None:
        """Record a tenant's negotiated fair-share weight.

        The service calls this when a session opens (and weights may be
        re-negotiated while a session lives).  The default is a no-op:
        only weight-aware policies (:class:`WeightedFairScheduler`) use
        it, but every policy accepts it so services can switch schedulers
        without changing session setup.
        """

    def next_event_time(self, now: float) -> float:
        """Earliest moment a tick *should* fire, given the queue.

        The default is ``now`` — serve whenever the server is free (the
        drain-the-queue policy).  Deadline-aware schedulers return a later
        time to let a group accumulate while every queued SLO still fits.
        Returns ``math.inf`` when nothing is pending.
        """
        return now if self.pending else math.inf


class FifoScheduler(Scheduler):
    """Strict arrival order, fixed ``max_batch`` cap — the PR-3 policy.

    A group is the longest FIFO prefix with one coalesce key; requests
    are never reordered, so response order, record-capture order and
    per-session byte accounting are identical to serving the queue one
    request at a time.
    """

    name = "fifo"

    def __init__(self):
        self._queue: collections.deque[UploadRequest] = collections.deque()

    @property
    def pending(self) -> int:
        return len(self._queue)

    def enqueue(self, request: UploadRequest) -> None:
        self._queue.append(request)

    def next_group(self, max_batch: int, now: float = 0.0) -> list[UploadRequest]:
        if not self._queue:
            return []
        group = [self._queue.popleft()]
        key = group[0].coalesce_key
        while self._queue and len(group) < max_batch:
            if self._queue[0].coalesce_key != key:
                break
            group.append(self._queue.popleft())
        return group

    def next_group_speculative(self, max_batch: int,
                               now: float = 0.0) -> list[UploadRequest]:
        """The longest FIFO prefix of *compatible* requests: mixed spatial
        sizes ride together (same dtype / rank / channels), so a client
        alternating crop sizes no longer splits every tick in two."""
        if not self._queue:
            return []
        group = [self._queue.popleft()]
        leader = group[0]
        while self._queue and len(group) < max_batch:
            if not speculative_compatible(leader, self._queue[0]):
                break
            group.append(self._queue.popleft())
        return group

    def cancel_session(self, session_id: int) -> list[UploadRequest]:
        cancelled = [r for r in self._queue if r.session_id == session_id]
        self._queue = collections.deque(
            r for r in self._queue if r.session_id != session_id)
        return cancelled

    def drop_expired(self, now: float) -> list[UploadRequest]:
        expired = [r for r in self._queue
                   if r.deadline is not None and r.deadline < now]
        if expired:
            self._queue = collections.deque(
                r for r in self._queue
                if r.deadline is None or r.deadline >= now)
        return expired


class FairShareScheduler(Scheduler):
    """Per-session round-robin: no tenant can monopolise a stacked pass.

    Each session gets its own FIFO queue.  A tick elects a leader (the
    next session in rotation with work), then fills the group round-robin
    — one request per session per cycle, skipping sessions whose head
    request cannot coalesce with the leader's key — until ``max_batch``.
    Within a session, order is still FIFO, so per-session response order
    and byte accounting match the FIFO scheduler; only the interleaving
    *across* sessions changes.  Fairness is privacy-relevant under
    ensemble inversion: a tenant that can flood the queue can otherwise
    dictate the batches a semi-honest server observes.
    """

    name = "fair"

    def __init__(self):
        self._queues: dict[int, collections.deque[UploadRequest]] = {}
        self._rotation: collections.deque[int] = collections.deque()

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, request: UploadRequest) -> None:
        if request.session_id not in self._queues:
            self._queues[request.session_id] = collections.deque()
            self._rotation.append(request.session_id)
        self._queues[request.session_id].append(request)

    def next_group(self, max_batch: int, now: float = 0.0) -> list[UploadRequest]:
        # Rotate to the next session with work; it leads this tick.
        for _ in range(len(self._rotation)):
            if self._queues[self._rotation[0]]:
                break
            self._rotation.rotate(-1)
        else:
            return []
        leader = self._rotation[0]
        group = [self._queues[leader].popleft()]
        key = group[0].coalesce_key
        self._rotation.rotate(-1)  # the leader goes to the back of the rotation
        # Fill one-request-per-session cycles (the leader rejoins at the
        # end of each cycle) until the cap or until a cycle adds nothing.
        progressed = True
        while len(group) < max_batch and progressed:
            progressed = False
            for session_id in tuple(self._rotation):
                if len(group) >= max_batch:
                    break
                queue = self._queues[session_id]
                if queue and queue[0].coalesce_key == key:
                    group.append(queue.popleft())
                    progressed = True
        return group

    def cancel_session(self, session_id: int) -> list[UploadRequest]:
        queue = self._queues.pop(session_id, None)
        if queue is None:
            return []
        try:
            self._rotation.remove(session_id)
        except ValueError:
            pass
        return list(queue)

    def drop_expired(self, now: float) -> list[UploadRequest]:
        expired: list[UploadRequest] = []
        for queue in self._queues.values():
            kept = [r for r in queue
                    if r.deadline is None or r.deadline >= now]
            if len(kept) != len(queue):
                expired.extend(r for r in queue
                               if r.deadline is not None and r.deadline < now)
                queue.clear()
                queue.extend(kept)
        return expired


class WeightedFairScheduler(Scheduler):
    """Deficit round-robin over payload samples: proportional tenant shares.

    Each session has a FIFO queue, a negotiated ``weight`` (via
    :meth:`set_session_weight`; unset sessions default to 1.0) and a
    *deficit* counter measured in samples.  The scheduler runs one
    *continuous* deficit-round-robin scan over the session rotation:
    each visit a session's deficit grows by ``weight * quantum`` samples
    and it pops queued requests while the deficit covers their batch
    size, then the scan moves on.  A tick's group is simply the next
    ``max_batch``-sized chunk of that service sequence — the scan
    position (including a half-spent visit) carries over between ticks,
    so proportional shares hold *whatever the group size*: while two
    tenants both have backlog, their served-sample ratio converges to
    their weight ratio even at ``max_batch=1``.  With all weights at 1
    and single-sample, shape-homogeneous requests the schedule is
    identical to :class:`FairShareScheduler`'s one-request-per-session
    cycles.

    Zero-weight sessions form a *best-effort* class: they accrue no
    deficit and are skipped while any positive-weight session has work,
    but are served round-robin (as if weight 1) whenever only
    best-effort work is queued, so they starve under contention, not
    forever.  A session's deficit resets when its queue drains — credit
    cannot be banked while idle — and is otherwise bounded by one visit
    accrual plus one request, never growing without bound.

    **Hierarchical rate classes** (:meth:`set_rate_class`) add one level
    of nesting: sessions assigned to a named class share that class's
    weight, split among the class's *backlogged* members in proportion
    to their intra-class session weights.  The class's aggregate share
    versus other classes (and versus unclassed sessions) therefore stays
    fixed no matter how many of its members are active — a tenant
    organisation buys one share and subdivides it internally, rather
    than each sub-tenant buying fleet-wide weight.  Intra-class weight 0
    still means best-effort, exactly as for unclassed sessions.
    """

    name = "weighted"

    def __init__(self, *, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._queues: dict[int, collections.deque[UploadRequest]] = {}
        self._rotation: collections.deque[int] = collections.deque()
        self._weights: dict[int, float] = {}
        self._deficits: dict[int, float] = {}
        self._classes: dict[int, str] = {}        # session -> rate class
        self._class_weights: dict[str, float] = {}  # class -> shared weight
        # Session whose DRR visit was interrupted by a full group: it
        # resumes at the rotation front next tick without a fresh accrual.
        self._open_visit: int | None = None

    @property
    def pending(self) -> int:
        """Queued requests not yet handed out by :meth:`next_group`."""
        return sum(len(q) for q in self._queues.values())

    def set_session_weight(self, session_id: int, weight: float) -> None:
        """Set a tenant's proportional share (>= 0; 0 = best-effort)."""
        weight = float(weight)
        if not math.isfinite(weight) or weight < 0:
            raise ValueError(f"weight must be finite and >= 0, got {weight}")
        self._weights[session_id] = weight

    def weight_of(self, session_id: int) -> float:
        """The session's negotiated weight (1.0 when never negotiated)."""
        return self._weights.get(session_id, 1.0)

    def set_rate_class(self, session_id: int, rate_class: str,
                       class_weight: float | None = None) -> None:
        """Place a session in a named rate class (shared class weight).

        Class members split ``class_weight`` by their intra-class
        session weights (:meth:`set_session_weight`), so the class's
        aggregate share against other tenants is fixed regardless of how
        many members are backlogged.  Passing ``class_weight`` sets (or
        resets) the class's weight — required the first time a class is
        named, optional afterwards; it must be positive.
        """
        if class_weight is not None:
            class_weight = float(class_weight)
            if not math.isfinite(class_weight) or class_weight <= 0:
                raise ValueError(
                    f"class_weight must be finite and > 0, got {class_weight}")
            self._class_weights[rate_class] = class_weight
        elif rate_class not in self._class_weights:
            raise ValueError(
                f"rate class {rate_class!r} has no weight yet; pass "
                f"class_weight on first use")
        self._classes[session_id] = rate_class

    def rate_class_of(self, session_id: int) -> str | None:
        """The session's rate class, or ``None`` if unclassed."""
        return self._classes.get(session_id)

    def _effective_weight(self, session_id: int) -> float:
        """The DRR accrual weight: the session's own weight, or — inside
        a rate class — its backlog-weighted slice of the class weight.

        Only *backlogged* positive-weight members divide the class
        weight, so an idle member's slice flows to its classmates (the
        class share stays whole) instead of leaking to other tenants.
        """
        weight = self.weight_of(session_id)
        rate_class = self._classes.get(session_id)
        if rate_class is None or weight <= 0:
            return weight
        active = sum(
            self.weight_of(sid)
            for sid, cls in self._classes.items()
            if cls == rate_class and self._queues.get(sid)
            and self.weight_of(sid) > 0)
        if active <= 0:  # sole classed arrival racing the backlog scan
            return self._class_weights[rate_class]
        return self._class_weights[rate_class] * weight / active

    def enqueue(self, request: UploadRequest) -> None:
        """Append to the tenant's FIFO queue (registering it if new)."""
        if request.session_id not in self._queues:
            self._queues[request.session_id] = collections.deque()
            self._rotation.append(request.session_id)
        self._queues[request.session_id].append(request)

    def _contended(self) -> bool:
        """True when some positive-weight session has queued work."""
        return any(self._queues[sid] and self.weight_of(sid) > 0
                   for sid in self._rotation)

    def next_group(self, max_batch: int, now: float = 0.0) -> list[UploadRequest]:
        """Pop the next ``max_batch`` samples of the continuous DRR scan.

        The first eligible session with work sets the tick's coalesce
        key; sessions whose head cannot coalesce are skipped (rotated,
        no deficit accrual) and wait for their own tick.  A visit
        interrupted by a full group resumes next tick without a fresh
        accrual, so group size never distorts the shares.
        """
        contended = self._contended()

        def eligible(session_id: int) -> bool:
            if not self._queues.get(session_id):
                return False
            return not contended or self.weight_of(session_id) > 0

        def eff_weight(session_id: int) -> float:
            weight = self._effective_weight(session_id)
            return weight if contended else max(weight, 1.0)

        if not any(eligible(session_id) for session_id in self._rotation):
            return []
        group: list[UploadRequest] = []
        key = None
        barren = 0  # consecutive scan steps that served nothing
        while len(group) < max_batch:
            session_id = self._rotation[0]
            queue = self._queues.get(session_id)
            if (not eligible(session_id)
                    or (key is not None and queue[0].coalesce_key != key)):
                if not queue:
                    self._deficits.pop(session_id, None)  # no banked credit
                if self._open_visit == session_id:
                    self._open_visit = None
                self._rotation.rotate(-1)
                barren += 1
            else:
                if key is None:
                    key = queue[0].coalesce_key
                if self._open_visit != session_id:
                    self._deficits[session_id] = (
                        self._deficits.get(session_id, 0.0)
                        + eff_weight(session_id) * self.quantum)
                    self._open_visit = session_id
                served_any = False
                while (queue and len(group) < max_batch
                       and queue[0].coalesce_key == key
                       and queue[0].batch_size
                       <= self._deficits[session_id] + 1e-9):
                    request = queue.popleft()
                    self._deficits[session_id] -= request.batch_size
                    group.append(request)
                    served_any = True
                if served_any:
                    barren = 0
                if (not queue or queue[0].coalesce_key != key
                        or self._deficits[session_id] + 1e-9
                        < queue[0].batch_size):
                    # Visit exhausted: close it and move the scan on.
                    if not queue:
                        self._deficits.pop(session_id, None)
                    self._open_visit = None
                    self._rotation.rotate(-1)
                    if not served_any:
                        barren += 1
                # else: group filled mid-visit — the scan (front session,
                # remaining deficit) resumes exactly here next tick.
            if barren >= len(self._rotation):
                if group:
                    break
                # Group still empty: the key-setting session accrues each
                # pass, so keep scanning until it can afford its head.
                barren = 0
        return group

    def cancel_session(self, session_id: int) -> list[UploadRequest]:
        """Drop the tenant's queue, rotation slot, weight and deficit."""
        queue = self._queues.pop(session_id, None)
        try:
            self._rotation.remove(session_id)
        except ValueError:
            pass
        self._weights.pop(session_id, None)
        self._deficits.pop(session_id, None)
        self._classes.pop(session_id, None)
        if self._open_visit == session_id:
            self._open_visit = None
        return list(queue) if queue is not None else []

    def drop_expired(self, now: float) -> list[UploadRequest]:
        """Shed explicit-deadline requests past ``now`` (no banked credit:
        a queue drained by expiry loses its deficit like any drain)."""
        expired: list[UploadRequest] = []
        for session_id, queue in self._queues.items():
            kept = [r for r in queue
                    if r.deadline is None or r.deadline >= now]
            if len(kept) != len(queue):
                expired.extend(r for r in queue
                               if r.deadline is not None and r.deadline < now)
                queue.clear()
                queue.extend(kept)
                if not queue:
                    self._deficits.pop(session_id, None)
                    if self._open_visit == session_id:
                        self._open_visit = None
        return expired


class DeadlineScheduler(Scheduler):
    """Earliest-deadline-first with latency-budgeted adaptive batching.

    Requests queue in deadline order (ties by arrival).  A group starts
    from the earliest-deadline request and grows — still in deadline
    order, matching coalesce keys only — while the *estimated* pass cost
    ``pass_overhead_s + samples * sample_cost_s`` keeps fitting the
    leader's remaining slack, the payload stays under ``max_group_bytes``
    and the sample count under ``max_group_samples``.  The fixed
    ``max_batch`` request count is deliberately ignored: group size is a
    function of payload and tail-latency target, which is what lets a
    burst collapse into one or two wide passes instead of many
    fixed-width ones.

    Requests without an explicit ``deadline`` get the implicit SLO
    ``arrival_time + target_latency_s`` (or no deadline when the target
    is ``None``).  :meth:`next_event_time` returns the latest safe tick
    start — ``earliest deadline - estimated pass cost`` — so an
    event-driven front-end can idle until either the batch budget fills
    or slack runs out.
    """

    name = "deadline"

    def __init__(self, *, pass_overhead_s: float = 0.0,
                 sample_cost_s: float = 0.0,
                 target_latency_s: float | None = None,
                 max_group_samples: int = 64,
                 max_group_bytes: int | None = None):
        if pass_overhead_s < 0 or sample_cost_s < 0:
            raise ValueError("cost estimates must be non-negative")
        if max_group_samples < 1:
            raise ValueError("max_group_samples must be >= 1")
        self.pass_overhead_s = pass_overhead_s
        self.sample_cost_s = sample_cost_s
        self.target_latency_s = target_latency_s
        self.max_group_samples = max_group_samples
        self.max_group_bytes = max_group_bytes
        self._items: list[tuple[float, int, UploadRequest]] = []  # sorted
        self._seq = 0

    @property
    def pending(self) -> int:
        return len(self._items)

    def _effective_deadline(self, request: UploadRequest) -> float:
        if request.deadline is not None:
            return request.deadline
        if self.target_latency_s is not None:
            return (request.arrival_time or 0.0) + self.target_latency_s
        return math.inf

    def enqueue(self, request: UploadRequest) -> None:
        bisect.insort(self._items, (self._effective_deadline(request),
                                    self._seq, request))
        self._seq += 1

    def _estimate_pass_s(self, samples: int) -> float:
        return self.pass_overhead_s + samples * self.sample_cost_s

    def next_group(self, max_batch: int, now: float = 0.0) -> list[UploadRequest]:
        if not self._items:
            return []
        leader_deadline, _, leader = self._items.pop(0)
        group = [leader]
        key = leader.coalesce_key
        samples = leader.batch_size
        nbytes = leader.wire_nbytes()
        slack = leader_deadline - now  # inf for SLO-less leaders
        index = 0
        while index < len(self._items) and samples < self.max_group_samples:
            _, _, candidate = self._items[index]
            if candidate.coalesce_key != key:
                index += 1  # leave for a later tick; EDF order is preserved
                continue
            new_samples = samples + candidate.batch_size
            if new_samples > self.max_group_samples:
                break
            if (self.max_group_bytes is not None
                    and nbytes + candidate.wire_nbytes() > self.max_group_bytes):
                break
            if math.isfinite(slack) and self._estimate_pass_s(new_samples) > slack:
                break  # growing further would blow the earliest deadline
            self._items.pop(index)
            group.append(candidate)
            samples = new_samples
            nbytes += candidate.wire_nbytes()
        return group

    def next_event_time(self, now: float) -> float:
        if not self._items:
            return math.inf
        earliest, _, leader = self._items[0]
        if not math.isfinite(earliest):
            return now
        # How big could the group get if we served right now?
        key = leader.coalesce_key
        samples = 0
        for _, _, request in self._items:
            if request.coalesce_key != key:
                continue
            if samples + request.batch_size > self.max_group_samples:
                return now  # batch budget already full: no reason to wait
            samples += request.batch_size
        if samples >= self.max_group_samples:
            return now
        latest_safe_start = earliest - self._estimate_pass_s(samples)
        return max(now, latest_safe_start)

    def cancel_session(self, session_id: int) -> list[UploadRequest]:
        cancelled = [item[2] for item in self._items
                     if item[2].session_id == session_id]
        self._items = [item for item in self._items
                       if item[2].session_id != session_id]
        return cancelled

    def drop_expired(self, now: float) -> list[UploadRequest]:
        """Shed requests whose *explicit* deadline passed (the implicit
        ``target_latency_s`` SLO orders the queue but never expires)."""
        expired = [item[2] for item in self._items
                   if item[2].deadline is not None and item[2].deadline < now]
        if expired:
            self._items = [item for item in self._items
                           if item[2].deadline is None
                           or item[2].deadline >= now]
        return expired


SCHEDULERS["fair-share"] = FairShareScheduler  # ergonomic aliases
SCHEDULERS["weighted-fair"] = WeightedFairScheduler


def make_scheduler(spec: "str | Scheduler", **kwargs) -> Scheduler:
    """Resolve a scheduler spec: an instance passes through, a registry
    name constructs one (``kwargs`` forwarded to the constructor)."""
    if isinstance(spec, Scheduler):
        if kwargs:
            raise ValueError("kwargs only apply when constructing by name")
        return spec
    try:
        cls = SCHEDULERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {spec!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return cls(**kwargs)
