"""Per-client sessions over the multi-tenant serving API.

A :class:`Session` is one tenant's view of an
:class:`~repro.serving.service.InferenceService`: it owns the client-side
halves of the split network (head, tail, noise, the private selector),
its own byte-counting channel, and the bookkeeping of outstanding
requests.  Nothing client-secret ever reaches the service — the selector
and noise map live here, and the wire carries only the noised features up
and all N feature maps down.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ci.channel import Channel, TransferStats
from repro.ci.pipeline import Client
from repro.serving.errors import (
    DeadlineExceededError,
    RequestCancelledError,
    RequestState,
    ServingError,
    TickFailedError,
)
from repro.serving.faults import RetryPolicy
from repro.serving.protocol import Codec, FeatureResponse, UploadRequest
from repro.privacy.budget import PrivacyBudget
from repro.privacy.rotation import (
    STREAM_NOISE,
    RotationPolicy,
    SelectorRotator,
    derive_rng,
)


class Session:
    """One client's connection to an :class:`InferenceService`.

    Sessions are created by :meth:`InferenceService.open_session` (from
    head/tail/noise/selector parts) or :meth:`InferenceService.adopt_session`
    (from an existing :class:`~repro.ci.pipeline.Client`); they should not
    be constructed directly.

    ``codec`` is the downlink encoding negotiated at open time: the
    service narrows this session's :class:`FeatureResponse` payloads with
    it, and :meth:`result` widens them back before the private selector
    and tail run.

    ``weight`` is the tenant's negotiated fair-share weight (consumed by
    weight-aware schedulers; 0 marks a best-effort tenant) and
    ``limiter`` its token bucket, enforced by the service at ``submit``
    time.  Both live for exactly this session: closing it drops the
    bucket, so no tokens leak into a later session.

    ``epoch`` is the session's incarnation number: 0 for a first open,
    bumped each time the session is restored from a checkpoint onto a
    replacement replica.  It feeds the retry-jitter RNG so a failed-over
    session never replays its predecessor's backoff sequence — seeding
    by session id alone would make every incarnation of a session (and
    every client retrying after the same replica crash) jitter in
    lock-step, re-synchronising exactly the retry storm the jitter
    exists to spread out.  The privacy subsystem's rotation and ladder
    noise draws are decorrelated the same way, from
    ``(session_id, epoch, rotation_index)``.

    ``privacy`` attaches a :class:`~repro.privacy.budget.PrivacyBudget`
    (or an ``(alpha, eps, q_budget)`` spec): the service charges it once
    per served query and refuses the session with
    :class:`~repro.serving.errors.PrivacyExhaustedError` once it
    depletes.  ``rotation`` attaches a
    :class:`~repro.privacy.rotation.RotationPolicy` (or a bare mode
    name) re-drawing the secret selector subset mid-stream; it requires
    a selector-bearing client.
    """

    def __init__(self, session_id: int, client: Client, service,
                 channel: Channel | None = None,
                 codec: Codec = Codec.FP32,
                 weight: float = 1.0,
                 limiter=None,
                 epoch: int = 0,
                 privacy=None,
                 rotation=None):
        self.session_id = session_id
        self.client = client
        self.channel = channel if channel is not None else Channel()
        self.codec = Codec.parse(codec)
        self.weight = float(weight)
        if not (self.weight >= 0 and math.isfinite(self.weight)):
            raise ValueError(
                f"session weight must be finite and >= 0, got {weight}")
        self.limiter = limiter
        self.epoch = int(epoch)
        # Noise provenance, recorded by open_session when the noise map
        # was drawn from a seed; checkpoint capture reads these so a
        # failover replica can redraw the bit-identical map.
        self.noise_seed: int | None = None
        self.noise_shape: tuple[int, ...] | None = None
        self.noise_sigma: float | None = None
        self._service = service
        self._next_request_id = 0
        self._responses: dict[int, FeatureResponse] = {}
        self._pending: set[int] = set()  # submitted, not yet served
        # Lifecycle state per request id, written by the service at each
        # transition; the conservation sweep in simulate() reads it.
        self._states: dict[int, RequestState] = {}
        # Deterministic per-session jitter source for retry backoff,
        # decorrelated across incarnations by the epoch.
        self._retry_rng = np.random.default_rng([session_id, self.epoch])
        self.privacy = PrivacyBudget.parse(privacy)
        rotation_policy = RotationPolicy.parse(rotation)
        if rotation_policy is not None and client._selector is None:
            raise ValueError(
                "selector rotation requires a selector-bearing client")
        self.rotation = (SelectorRotator(rotation_policy, session_id,
                                         self.epoch)
                         if rotation_policy is not None else None)
        self._refresh_privacy_rng()

    # -- introspection --------------------------------------------------

    @property
    def stats(self) -> TransferStats:
        """This session's own traffic counters."""
        return self.channel.stats

    @property
    def selector(self):
        """The session's private selector (client-side code only)."""
        return self.client._selector

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet served by a tick."""
        return len(self._pending)

    def request_state(self, request_id: int) -> RequestState | None:
        """The request's lifecycle state, or ``None`` for an unknown id.

        ``QUEUED`` is the only non-terminal state; every other value is
        final and set exactly once per lifecycle (a retry of a retryable
        terminal re-enters ``QUEUED`` and the last state stands).
        """
        return self._states.get(request_id)

    def request_states(self) -> dict[int, RequestState]:
        """A snapshot of every tracked request's lifecycle state."""
        return dict(self._states)

    # -- privacy side ---------------------------------------------------

    def _refresh_privacy_rng(self) -> None:
        """Re-key the ladder-noise RNG from (session_id, epoch, rotation).

        Called at construction, after each selector rotation and on epoch
        bumps, so a restored incarnation never replays its predecessor's
        extra-noise draws.
        """
        rotation_index = (self.rotation.rotation_index
                          if self.rotation is not None else 0)
        self._privacy_rng = derive_rng(self.session_id, self.epoch,
                                       rotation_index, STREAM_NOISE)

    def charge_privacy(self) -> float | None:
        """Charge one served query against the budget (service-side hook).

        Called by the service's tick loop exactly once per delivered
        response.  Returns the charged ε(α) loss, or ``None`` for an
        unmetered session.
        """
        if self.privacy is None:
            return None
        selector = self.client._selector
        if selector is not None:
            subset_size, num_nets = selector.num_active, selector.num_nets
        else:
            subset_size = num_nets = 1
        return self.privacy.charge_query(self.noise_sigma,
                                         subset_size=subset_size,
                                         num_nets=num_nets)

    # -- request side ---------------------------------------------------

    def encode(self, images: np.ndarray) -> np.ndarray:
        """The features this client would upload: ``M_c,h(x) + noise``.

        Past the budget ladder's raise-noise level, an *additional*
        independent Gaussian draw (std
        :meth:`~repro.privacy.budget.PrivacyBudget.extra_sigma`) is added
        on top of the client's fixed base noise map, from the
        (session_id, epoch, rotation_index)-derived RNG.
        """
        features = self.client.encode(images)
        if self.privacy is not None:
            extra = self.privacy.extra_sigma(self.noise_sigma)
            if extra > 0.0:
                draw = self._privacy_rng.normal(0.0, extra, features.shape)
                features = features + draw.astype(features.dtype, copy=False)
        return features

    def submit(self, images: np.ndarray, record: bool = False,
               deadline: float | None = None,
               retry: RetryPolicy | None = None) -> int:
        """Encode ``images`` client-side and enqueue the upload.

        Returns the request id to :meth:`result` on later.  Raises only
        :class:`~repro.serving.errors.ServingError` subclasses:
        :class:`~repro.serving.errors.BackpressureError` (queue full),
        :class:`~repro.serving.errors.RateLimitedError` (token bucket
        empty),
        :class:`~repro.serving.errors.PrivacyExhaustedError` (the
        session's privacy budget is spent; never retryable) — all three
        without transmitting anything — or
        :class:`~repro.serving.errors.ProtocolError` (the frame was
        mangled on a fault-injected wire).  ``deadline`` is an absolute
        service-clock SLO consumed by deadline-aware schedulers; with a
        :class:`~repro.serving.faults.RetryPolicy` transient failures are
        retried under exponential backoff (same request id each attempt).
        """
        return self.submit_features(self.encode(images), record=record,
                                    deadline=deadline, retry=retry)

    def reserve_request_id(self) -> int:
        """Burn and return the next request id without submitting.

        Retrying clients reserve the id first so every attempt — even one
        rejected at admission — reuses the *same* id, which is what lets
        the service deduplicate a retry whose earlier attempt survived.
        """
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def submit_features(self, features: np.ndarray, record: bool = False,
                        deadline: float | None = None,
                        request_id: int | None = None,
                        retry: RetryPolicy | None = None) -> int:
        """Enqueue pre-encoded features (the raw protocol-level entry).

        ``request_id`` resubmits under an id from
        :meth:`reserve_request_id` (or from a previous failed attempt) —
        the idempotent-retry path; omitted, a fresh id is burned even
        when admission rejects the submit, so a later manual retry can
        reuse it.  ``retry`` arms automatic attempts: transient
        :class:`~repro.serving.errors.ServingError` failures back off
        exponentially (with deterministic jitter) on the service's
        virtual clock — enough for token buckets to refill and faulted
        wires to be re-rolled; the final attempt's error propagates.
        """
        if request_id is None:
            request_id = self.reserve_request_id()
        features = np.asarray(features)
        attempt = 0
        while True:
            request = UploadRequest(self.session_id, request_id, features,
                                    record=record, deadline=deadline)
            try:
                self._service.submit(request)
            except ServingError as exc:
                if (retry is None or attempt + 1 >= retry.max_attempts
                        or not retry.retryable(exc)):
                    raise
                attempt += 1
                # Back off on the virtual clock: buckets refill, queue
                # pressure may clear, and the wire is re-rolled.
                self._service.advance_clock(
                    self._service.now
                    + retry.delay_s(attempt - 1, self._retry_rng))
            else:
                self._pending.add(request_id)
                return request_id

    # -- response side --------------------------------------------------

    def _deliver(self, response: FeatureResponse) -> None:
        """Called by the service when a tick serves one of our requests."""
        self._responses[response.request_id] = response
        self._pending.discard(response.request_id)
        self._states[response.request_id] = RequestState.COMPLETED

    def _resolve(self, request_id: int, state: RequestState) -> None:
        """Called by the service at each lifecycle transition."""
        self._states[request_id] = state
        if state.terminal:
            self._pending.discard(request_id)

    def has_result(self, request_id: int) -> bool:
        """Whether a served response for ``request_id`` is waiting."""
        return request_id in self._responses

    def take_response(self, request_id: int) -> FeatureResponse | None:
        """Pop a served request's raw wire response without decoding it.

        For drivers (benchmarks, simulators) that inspect or discard the
        N feature maps themselves instead of running the tail via
        :meth:`result`.  Returns ``None`` when nothing is stored.
        """
        return self._responses.pop(request_id, None)

    def discard_results(self) -> int:
        """Drop every stored response; returns how many were discarded."""
        count = len(self._responses)
        self._responses.clear()
        return count

    def result(self, request_id: int) -> np.ndarray:
        """Decode a served request: private selection + tail -> logits.

        Pops the stored response; each result can be consumed once.  A
        request that reached a non-``COMPLETED`` terminal state raises
        its typed error instead:
        :class:`~repro.serving.errors.DeadlineExceededError` (expired),
        :class:`~repro.serving.errors.RequestCancelledError` (session
        closed while queued) or
        :class:`~repro.serving.errors.TickFailedError` (crashed passes
        exhausted their retries, or the upload frame was corrupt).
        """
        try:
            response = self._responses.pop(request_id)
        except KeyError:
            state = self._states.get(request_id)
            if state is RequestState.EXPIRED:
                raise DeadlineExceededError(
                    f"request {request_id} of session {self.session_id} "
                    f"expired before a tick could serve it") from None
            if state is RequestState.CANCELLED:
                raise RequestCancelledError(
                    f"request {request_id} of session {self.session_id} was "
                    f"cancelled by close_session while queued") from None
            if state is RequestState.FAILED:
                raise TickFailedError(
                    f"request {request_id} of session {self.session_id} "
                    f"failed terminally (crashed stacked passes exhausted "
                    f"their retries, or its upload frame was corrupt)"
                ) from None
            if state in (RequestState.REJECTED, RequestState.THROTTLED):
                raise KeyError(
                    f"request {request_id} of session {self.session_id} was "
                    f"shed at admission ({state.value}); resubmit it"
                ) from None
            if request_id in self._pending:
                raise KeyError(
                    f"request {request_id} of session {self.session_id} has no "
                    f"result yet — run service.tick()/run_until_idle() first"
                ) from None
            raise KeyError(
                f"request {request_id} of session {self.session_id} was "
                f"already consumed (results pop on read) or never submitted"
            ) from None
        outputs = response.decoded()  # widen codec-narrowed maps to fp32
        if self.client._selector is None:
            # Selector-less (standard-CI) clients consume the single body's map.
            return self.client.decide(outputs[0])
        return self.client.decide(outputs)

    def infer(self, images: np.ndarray, record: bool = False) -> np.ndarray:
        """Single-tenant convenience: submit, drain the service, decode."""
        request_id = self.submit(images, record=record)
        self._service.run_until_idle()
        return self.result(request_id)
