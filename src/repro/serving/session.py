"""Per-client sessions over the multi-tenant serving API.

A :class:`Session` is one tenant's view of an
:class:`~repro.serving.service.InferenceService`: it owns the client-side
halves of the split network (head, tail, noise, the private selector),
its own byte-counting channel, and the bookkeeping of outstanding
requests.  Nothing client-secret ever reaches the service — the selector
and noise map live here, and the wire carries only the noised features up
and all N feature maps down.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ci.channel import Channel, TransferStats
from repro.ci.pipeline import Client
from repro.serving.protocol import Codec, FeatureResponse, UploadRequest


class Session:
    """One client's connection to an :class:`InferenceService`.

    Sessions are created by :meth:`InferenceService.open_session` (from
    head/tail/noise/selector parts) or :meth:`InferenceService.adopt_session`
    (from an existing :class:`~repro.ci.pipeline.Client`); they should not
    be constructed directly.

    ``codec`` is the downlink encoding negotiated at open time: the
    service narrows this session's :class:`FeatureResponse` payloads with
    it, and :meth:`result` widens them back before the private selector
    and tail run.

    ``weight`` is the tenant's negotiated fair-share weight (consumed by
    weight-aware schedulers; 0 marks a best-effort tenant) and
    ``limiter`` its token bucket, enforced by the service at ``submit``
    time.  Both live for exactly this session: closing it drops the
    bucket, so no tokens leak into a later session.
    """

    def __init__(self, session_id: int, client: Client, service,
                 channel: Channel | None = None,
                 codec: Codec = Codec.FP32,
                 weight: float = 1.0,
                 limiter=None):
        self.session_id = session_id
        self.client = client
        self.channel = channel if channel is not None else Channel()
        self.codec = Codec.parse(codec)
        self.weight = float(weight)
        if not (self.weight >= 0 and math.isfinite(self.weight)):
            raise ValueError(
                f"session weight must be finite and >= 0, got {weight}")
        self.limiter = limiter
        self._service = service
        self._next_request_id = 0
        self._responses: dict[int, FeatureResponse] = {}
        self._pending: set[int] = set()  # submitted, not yet served

    # -- introspection --------------------------------------------------

    @property
    def stats(self) -> TransferStats:
        """This session's own traffic counters."""
        return self.channel.stats

    @property
    def selector(self):
        """The session's private selector (client-side code only)."""
        return self.client._selector

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet served by a tick."""
        return len(self._pending)

    # -- request side ---------------------------------------------------

    def encode(self, images: np.ndarray) -> np.ndarray:
        """The features this client would upload: ``M_c,h(x) + noise``."""
        return self.client.encode(images)

    def submit(self, images: np.ndarray, record: bool = False,
               deadline: float | None = None) -> int:
        """Encode ``images`` client-side and enqueue the upload.

        Returns the request id to :meth:`result` on later.  Raises
        :class:`~repro.serving.service.BackpressureError` (queue full) or
        :class:`~repro.serving.service.RateLimitedError` (token bucket
        empty) without transmitting anything.  ``deadline`` is an
        absolute service-clock SLO consumed by deadline-aware schedulers.
        """
        return self.submit_features(self.encode(images), record=record,
                                    deadline=deadline)

    def submit_features(self, features: np.ndarray, record: bool = False,
                        deadline: float | None = None) -> int:
        """Enqueue pre-encoded features (the raw protocol-level entry)."""
        request = UploadRequest(self.session_id, self._next_request_id,
                                np.asarray(features), record=record,
                                deadline=deadline)
        self._next_request_id += 1
        self._service.submit(request)
        self._pending.add(request.request_id)
        return request.request_id

    # -- response side --------------------------------------------------

    def _deliver(self, response: FeatureResponse) -> None:
        """Called by the service when a tick serves one of our requests."""
        self._responses[response.request_id] = response
        self._pending.discard(response.request_id)

    def has_result(self, request_id: int) -> bool:
        """Whether a served response for ``request_id`` is waiting."""
        return request_id in self._responses

    def take_response(self, request_id: int) -> FeatureResponse | None:
        """Pop a served request's raw wire response without decoding it.

        For drivers (benchmarks, simulators) that inspect or discard the
        N feature maps themselves instead of running the tail via
        :meth:`result`.  Returns ``None`` when nothing is stored.
        """
        return self._responses.pop(request_id, None)

    def discard_results(self) -> int:
        """Drop every stored response; returns how many were discarded."""
        count = len(self._responses)
        self._responses.clear()
        return count

    def result(self, request_id: int) -> np.ndarray:
        """Decode a served request: private selection + tail -> logits.

        Pops the stored response; each result can be consumed once.
        """
        try:
            response = self._responses.pop(request_id)
        except KeyError:
            if request_id in self._pending:
                raise KeyError(
                    f"request {request_id} of session {self.session_id} has no "
                    f"result yet — run service.tick()/run_until_idle() first"
                ) from None
            raise KeyError(
                f"request {request_id} of session {self.session_id} was "
                f"already consumed (results pop on read) or never submitted"
            ) from None
        outputs = response.decoded()  # widen codec-narrowed maps to fp32
        if self.client._selector is None:
            # Selector-less (standard-CI) clients consume the single body's map.
            return self.client.decide(outputs[0])
        return self.client.decide(outputs)

    def infer(self, images: np.ndarray, record: bool = False) -> np.ndarray:
        """Single-tenant convenience: submit, drain the service, decode."""
        request_id = self.submit(images, record=record)
        self._service.run_until_idle()
        return self.result(request_id)
