"""Event-driven simulation front-end for the multi-tenant serving layer.

``run_until_idle`` answers "what does this request stream *compute*";
this module answers "what does it *feel like*": a virtual-clock event
loop replays an arrival-time trace through a real
:class:`~repro.serving.service.InferenceService` (real scheduler, real
stacked passes, real byte accounting) while charging virtual time from a
cost model, and reports p50/p95/p99 latency plus SLO violations.

Tick triggering is **deadline-aware** rather than drain-the-queue: the
next tick fires at ``max(server_free_at, scheduler.next_event_time(t))``,
so a :class:`~repro.serving.scheduler.DeadlineScheduler` can hold the
server idle for a few (virtual) milliseconds to let a burst coalesce into
one wide pass, while a FIFO scheduler (whose ``next_event_time`` is
"now") serves eagerly whenever the server is free — exactly the policy
difference the Table-III latency story turns on.

Costs come from a :class:`TickCost` — either explicit constants or
derived from the calibrated :class:`~repro.latency.model.LatencyModel`
via :meth:`TickCost.from_latency_model`, including the codec-narrowed
downlink bytes of fp16 sessions.

Fault-tolerant replay
---------------------
The loop is a real event queue (heap), not just a sorted arrival scan,
because fault tolerance adds *client-side* events between arrivals:

* a :class:`~repro.serving.faults.FaultInjector` (the service's own, or
  one passed explicitly) delays submissions and stalls sessions — time
  effects the service never observes;
* a :class:`~repro.serving.faults.RetryPolicy` schedules backoff
  resubmissions after transient :class:`~repro.serving.errors.ServingError`
  failures, and — when ``timeout_s`` is set — resubmits requests whose
  frames were silently dropped on the wire (same request id, so a retry
  of a request that actually survived is deduplicated service-side);
* an :class:`Arrival` with ``close_session=True`` closes its session
  mid-trace, cancelling that tenant's queued work;
* a tick that crashes (injected or real) still occupies the server for
  the attempted pass cost, and its group rides the service's re-queue /
  terminal-``FAILED`` recovery.

Every replay ends with a **conservation sweep**: each submission the
trace produced must sit in exactly one typed terminal
:class:`~repro.serving.errors.RequestState`
(``SimulationReport.conservation_ok``), with in-flight work that the
client abandoned (lost frames past their retry budget) resolved as
``FAILED`` — never silently dropped.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math

import numpy as np

from repro.serving.errors import (
    TERMINAL_STATES,
    RequestState,
    ServingError,
)
from repro.serving.faults import FaultInjector, RetryPolicy
from repro.serving.service import InferenceService
from repro.serving.session import Session
from repro.telemetry import QuantileSketch

#: Per-session latency sketches are deliberately small: a tenant's own
#: p50/p95 needs far less resolution than the aggregate distribution,
#: and at 10^5+ sessions the per-session footprint is the bill.
_SESSION_SKETCH_CAPACITY = 64


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One trace event: a session submits a request at a virtual time.

    ``deadline_s`` is the request's SLO *budget* relative to its arrival
    (absolute deadline = ``time + deadline_s``); ``None`` means no SLO.
    ``features`` overrides the simulation-wide default payload.  An
    arrival with ``close_session=True`` submits nothing: it closes the
    indexed session at that time, cancelling its queued requests — the
    mid-burst disconnect case.
    """

    time: float
    session_index: int
    deadline_s: float | None = None
    features: np.ndarray | None = None
    record: bool = False
    close_session: bool = False


@dataclasses.dataclass(frozen=True)
class TickCost:
    """Virtual seconds one coalesced tick occupies the server.

    ``pass_overhead_s`` is paid once per stacked pass (kernel dispatch,
    the Amdahl serial term); ``per_sample_s`` scales with the samples in
    the group; ``per_request_downlink_s`` is added per response after the
    pass completes (each session still receives its own N feature maps).
    A *crashed* pass charges the same formula for the samples it
    attempted — failure does not refund server time.
    """

    pass_overhead_s: float = 0.0
    per_sample_s: float = 0.0
    per_request_downlink_s: float = 0.0

    def pass_seconds(self, num_samples: int) -> float:
        """Virtual seconds one stacked pass over ``num_samples`` costs."""
        return self.pass_overhead_s + num_samples * self.per_sample_s

    @classmethod
    def from_latency_model(cls, model, workload, num_nets: int,
                           codec="fp32") -> "TickCost":
        """Derive per-tick costs from the calibrated Table-III model.

        The per-sample server time comes from the workload's body FLOPs;
        the per-pass overhead is the fused engine's Amdahl serial term
        (paid once per pass, which is what coalescing amortises); the
        per-request downlink charges the N codec-narrowed feature maps.
        """
        per_sample = model.server.seconds(
            workload.server_body_flops / workload.batch_size)
        overhead = per_sample * model.serial_fraction * (num_nets - 1)
        downlink = model.network.downlink_seconds(
            model.codec_downlink_bytes(workload.download_bytes_per_net, codec)
            * num_nets, messages=num_nets)
        return cls(pass_overhead_s=overhead, per_sample_s=per_sample,
                   per_request_downlink_s=downlink)


@dataclasses.dataclass
class SimulationReport:
    """What an arrival trace experienced end to end.

    Besides the aggregate latency distribution, ``latencies_by_session``
    keeps each tenant's own latencies, so proportional-share policies
    (weighted fair scheduling, per-tenant rate limits) are measurable at
    per-tenant p50/p95 via :meth:`session_percentile`.

    At fleet scale the exact per-request lists are the memory bill, so
    they are **opt-in** (``retain_latencies=`` on the simulators): every
    replay always feeds ``latency_sketch`` (aggregate) and
    ``sketch_by_session`` (small per-tenant
    :class:`~repro.telemetry.QuantileSketch` summaries, O(sessions · k)
    total), and :meth:`percentile` / :meth:`session_percentile` fall
    back to the sketches when the exact lists were not retained.
    ``served_total`` counts served responses independently of the lists
    for the same reason.

    The resilience fields close the loop on fault tolerance:
    ``submitted`` counts the unique requests the trace produced,
    ``terminal_counts`` maps each terminal
    :class:`~repro.serving.errors.RequestState` name to how many requests
    ended there, and ``conservation_ok`` asserts the invariant the chaos
    gate enforces — every submitted request in exactly one terminal
    state.  ``rejected`` / ``throttled`` are *final-state* counts: with a
    retry policy a request rejected once but retried to completion
    counts as completed, not rejected (without retries this coincides
    with the historical per-attempt meaning).
    """

    scheduler: str
    latencies_s: list[float]
    violations: int  # served, but past their deadline
    rejected: int    # finally REJECTED (shed by backpressure / overload)
    ticks: int
    makespan_s: float
    throttled: int = 0  # finally THROTTLED (shed by per-tenant rate limits)
    latencies_by_session: dict[int, list[float]] = dataclasses.field(
        default_factory=dict)
    submitted: int = 0  # unique requests the trace produced
    terminal_counts: dict[str, int] = dataclasses.field(default_factory=dict)
    conservation_ok: bool = True  # every submission in exactly one terminal
    tick_failures: int = 0  # crashed stacked passes during this replay
    retries: int = 0        # resubmission attempts beyond each first try
    degraded: int = 0       # responses served narrowed / ensemble-shrunk
    privacy_refusals: int = 0  # submits/serves refused past budget exhaustion
    exhausted_sessions: int = 0  # sessions that spent their privacy budget
    rotations: int = 0      # switching-ensemble selector re-draws
    served_total: int = 0   # served responses (independent of exact lists)
    latency_sum_s: float = 0.0  # sum of served latencies (mean at any scale)
    latency_sketch: QuantileSketch | None = None  # aggregate, always fed
    sketch_by_session: dict[int, QuantileSketch] = dataclasses.field(
        default_factory=dict)

    @property
    def served(self) -> int:
        """How many submissions were actually served (not shed)."""
        return self.served_total if self.served_total else len(self.latencies_s)

    @property
    def mean_latency_s(self) -> float:
        """Mean served latency in seconds (0.0 when nothing served)."""
        return self.latency_sum_s / self.served if self.served else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completed requests per virtual second of makespan.

        *Goodput*, not throughput: only requests that reached their
        client count, so shed, expired, cancelled and failed work —
        however much server time it burned — contributes nothing.
        """
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile of the aggregate latency distribution.

        Exact (``np.percentile``) when the per-request list was
        retained; otherwise answered from ``latency_sketch`` (≤ 1% of
        rank error); 0.0 when nothing was served.
        """
        if self.latencies_s:
            return float(np.percentile(np.asarray(self.latencies_s), q))
        if self.latency_sketch is not None and len(self.latency_sketch):
            return self.latency_sketch.percentile(q)
        return 0.0

    def session_percentile(self, session_id: int, q: float) -> float:
        """One tenant's q-th latency percentile (0.0 if it served nothing).

        Exact when per-session lists were retained, else answered from
        the tenant's sketch.

        Args:
            session_id: the tenant's session id (``Session.session_id``).
            q: percentile in [0, 100], e.g. 50 or 95.
        """
        latencies = self.latencies_by_session.get(session_id)
        if latencies:
            return float(np.percentile(np.asarray(latencies), q))
        sketch = self.sketch_by_session.get(session_id)
        if sketch is not None and len(sketch):
            return sketch.percentile(q)
        return 0.0

    @property
    def p50_s(self) -> float:
        """Aggregate median latency in seconds."""
        return self.percentile(50)

    @property
    def p95_s(self) -> float:
        """Aggregate 95th-percentile latency in seconds."""
        return self.percentile(95)

    @property
    def p99_s(self) -> float:
        """Aggregate 99th-percentile latency in seconds."""
        return self.percentile(99)

    @property
    def violation_rate(self) -> float:
        """Fraction of admitted-or-rejected arrivals that missed an SLO
        or were shed (throttled arrivals count as shed: the tenant's own
        policy, but still traffic the fleet did not serve in time)."""
        total = self.served + self.rejected + self.throttled
        return ((self.violations + self.rejected + self.throttled) / total
                if total else 0.0)

    def summary(self) -> str:
        """One-line human-readable digest of the replay."""
        return (f"{self.scheduler}: {self.served} served in {self.ticks} ticks "
                f"over {self.makespan_s * 1e3:.1f} ms — p50 {self.p50_s * 1e3:.1f} / "
                f"p95 {self.p95_s * 1e3:.1f} / p99 {self.p99_s * 1e3:.1f} ms, "
                f"{self.violations} SLO violations, {self.rejected} rejected, "
                f"{self.throttled} throttled")


@dataclasses.dataclass
class _Pending:
    """Client-side bookkeeping for one traced submission's lifecycle."""

    session: Session
    request_id: int
    features: np.ndarray
    record: bool
    deadline: float | None
    arrived: float       # the intended submission time (latency epoch)
    attempts: int = 0    # submit attempts consumed (first try included)
    done: bool = False   # a response reached the client


#: Event kinds, tie-break order.  _SCALE is the autoscaler's periodic
#: control-loop check in :func:`simulate_fleet`.
_ARRIVAL, _SUBMIT, _TIMEOUT, _FAULT, _SCALE = 0, 1, 2, 3, 4


def _prepare_trace(trace, retain_latencies):
    """Resolve a trace into a lazy arrival iterator plus the retain flag.

    List/tuple traces are sorted eagerly (back-compat: arbitrary order
    allowed) and default to exact latency retention; any other iterable
    streams lazily — arrivals must then already be time-monotonic — and
    defaults to sketch-only reporting, since a streaming trace is
    exactly the fleet-scale case the exact lists would sink.
    """
    if isinstance(trace, (list, tuple)):
        arrivals = iter(sorted(trace, key=lambda a: a.time))
        retain = True if retain_latencies is None else bool(retain_latencies)
    else:
        arrivals = iter(trace)
        retain = False if retain_latencies is None else bool(retain_latencies)
    return arrivals, retain


def _publish_metrics(metrics, prefix, tracked_count, served_total,
                     violations, retry_attempts, sketch, latency_sum):
    """Publish one replay's aggregates into a MetricsRegistry."""
    metrics.counter(f"{prefix}.submitted").inc(tracked_count)
    metrics.counter(f"{prefix}.served").inc(served_total)
    metrics.counter(f"{prefix}.violations").inc(violations)
    metrics.counter(f"{prefix}.retries").inc(retry_attempts)
    histogram = metrics.histogram(f"{prefix}.latency_s",
                                  capacity=sketch.capacity)
    histogram.sketch.merge(sketch)
    histogram.sum += latency_sum


def simulate(service: InferenceService, sessions, trace, cost: TickCost,
             default_features: np.ndarray | None = None,
             retry: RetryPolicy | None = None,
             faults: FaultInjector | None = None,
             retain_latencies: bool | None = None,
             metrics=None) -> SimulationReport:
    """Replay ``trace`` through ``service`` on a virtual clock.

    ``sessions`` is an indexable of open :class:`Session` objects
    (``Arrival.session_index`` selects one).  Every arrival really
    submits (framed bytes, backpressure, scheduler admission); every tick
    really runs the stacked pass; only *time* is virtual, charged from
    ``cost``.  Responses are consumed as they complete so long traces
    stay memory-bounded.

    ``trace`` may be a list/tuple (sorted eagerly, any order — the
    historical contract) or any iterable/generator of
    :class:`Arrival` objects in non-decreasing time order, which is
    consumed **lazily**: a 10^6-arrival stream never materialises.
    ``retain_latencies`` controls the exact per-request latency lists on
    the report (``None`` = retain for list traces, sketch-only for
    streamed ones); the mergeable quantile sketches are always fed.
    ``metrics``, when given, receives the replay's aggregate counters
    and latency histogram (see :class:`~repro.telemetry.MetricsRegistry`)
    plus the service's stat fields as gauges.

    Trace times are *relative*: they are rebased onto the service's
    current (monotonic, never-rewinding) clock, so repeated ``simulate``
    calls against one service are well-defined — each replay starts at
    the service's "now", and reported latencies/makespan are unaffected.

    ``faults`` (defaulting to the service's own injector) adds network
    delay and session stalls client-side; the service consults the same
    injector for wire faults and tick crashes.  ``retry`` arms
    backoff resubmission of transient failures and — via ``timeout_s`` —
    loss detection for dropped frames; retries reuse the original
    request id, so the service deduplicates a retry whose earlier
    attempt actually survived.  The replay ends with a conservation
    sweep (see the module docstring).
    """
    faults = faults if faults is not None else service.faults
    session_by_id = {s.session_id: s for s in sessions}
    arrivals, retain = _prepare_trace(trace, retain_latencies)
    latencies: list[float] = []
    by_session: dict[int, list[float]] = {}
    sketch = QuantileSketch()
    by_sketch: dict[int, QuantileSketch] = {}
    served_total = 0
    latency_sum = 0.0
    tracked: list[_Pending] = []
    by_key: dict[tuple[int, int], _Pending] = {}
    violations = ticks = retry_attempts = 0
    failures_start = service.stats.tick_failures
    degraded_start = service.stats.degraded_responses
    refusals_start = service.stats.privacy_refusals
    exhausted_start = service.stats.privacy_exhausted_sessions
    rotations_start = service.stats.selector_rotations
    base = service.now  # rebase the trace's epoch; advance_clock never rewinds
    server_free_at = base
    makespan = base
    clock = base

    seq = itertools.count()
    heap: list[tuple[float, int, int, object]] = []
    next_arrival = next(arrivals, None)

    def pull_arrival() -> Arrival:
        """Consume the head arrival, enforcing stream monotonicity."""
        nonlocal next_arrival
        arrival = next_arrival
        next_arrival = next(arrivals, None)
        if next_arrival is not None and next_arrival.time < arrival.time:
            raise ValueError(
                "streaming traces must yield non-decreasing arrival times "
                f"(got {next_arrival.time} after {arrival.time}); "
                "materialise as a list to have the simulator sort")
        return arrival

    def push(at: float, kind: int, payload) -> None:
        heapq.heappush(heap, (at, next(seq), kind, payload))

    def attempt(pend: _Pending) -> None:
        """One real submission attempt; schedules its own retry on failure."""
        nonlocal retry_attempts
        pend.attempts += 1
        if pend.attempts > 1:
            retry_attempts += 1
        try:
            pend.session.submit_features(pend.features, record=pend.record,
                                         deadline=pend.deadline,
                                         request_id=pend.request_id)
        except ServingError as exc:
            if (retry is not None and pend.attempts < retry.max_attempts
                    and retry.retryable(exc)):
                push(clock + retry.delay_s(pend.attempts - 1,
                                           pend.session._retry_rng),
                     _SUBMIT, pend)
            return  # otherwise: the service marked the terminal state
        if retry is not None and retry.timeout_s is not None:
            push(clock + retry.timeout_s, _TIMEOUT, pend)

    while heap or next_arrival is not None or service.pending:
        arrival_at = (base + next_arrival.time if next_arrival is not None
                      else math.inf)
        heap_at = heap[0][0] if heap else math.inf
        next_event = min(arrival_at, heap_at)
        if service.pending:
            earliest = max(clock, server_free_at)
            tick_at = max(earliest, service.scheduler.next_event_time(earliest))
        else:
            tick_at = math.inf

        if next_event <= tick_at:
            if arrival_at <= heap_at:  # arrivals win ties (trace order)
                arrival = pull_arrival()
                clock = max(clock, arrival_at)
                service.advance_clock(clock)
                session = sessions[arrival.session_index]
                if arrival.close_session:
                    service.close_session(session)
                    continue
                features = (arrival.features if arrival.features is not None
                            else default_features)
                if features is None:
                    raise ValueError("arrival carries no features and no "
                                     "default_features was given")
                deadline = (clock + arrival.deadline_s
                            if arrival.deadline_s is not None else None)
                pend = _Pending(session=session,
                                request_id=session.reserve_request_id(),
                                features=features, record=arrival.record,
                                deadline=deadline, arrived=clock)
                tracked.append(pend)
                by_key[(session.session_id, pend.request_id)] = pend
                delay = 0.0
                if faults is not None:
                    delay = (faults.submission_delay()
                             + faults.session_stall(session.session_id))
                if delay > 0.0:
                    push(clock + delay, _SUBMIT, pend)
                else:
                    attempt(pend)
                continue
            at, _, kind, payload = heapq.heappop(heap)
            clock = max(clock, at)
            service.advance_clock(clock)
            if kind == _SUBMIT:
                if not payload.done:
                    attempt(payload)
            else:  # _TIMEOUT: loss detection for silently dropped frames
                pend = payload
                if (not pend.done and retry is not None
                        and pend.attempts < retry.max_attempts
                        and pend.session.request_state(pend.request_id)
                        is RequestState.QUEUED):
                    attempt(pend)
            continue

        clock = tick_at
        service.advance_clock(clock)
        failures_before = service.stats.tick_failures
        failed_samples_before = service.stats.tick_failure_samples
        expired_before = service.stats.expired_requests
        refusals_before = service.stats.privacy_refusals
        responses = service.tick()
        if not responses:
            if service.stats.tick_failures > failures_before:
                # The crashed pass still occupied the server: charge the
                # attempted group's cost before the retry pass can start.
                attempted = (service.stats.tick_failure_samples
                             - failed_samples_before)
                server_free_at = clock + cost.pass_seconds(attempted)
                continue
            if service.stats.expired_requests > expired_before:
                continue  # progress: expired requests were shed pre-schedule
            if service.stats.privacy_refusals > refusals_before:
                continue  # progress: budget-exhausted riders were refused
            break  # defensive: scheduler declined to form a group
        ticks += 1
        group_samples = sum(r.outputs[0].shape[0] for r in responses)
        pass_done = clock + cost.pass_seconds(group_samples)
        server_free_at = pass_done
        for response in responses:
            done = pass_done + cost.per_request_downlink_s
            makespan = max(makespan, done)
            key = (response.session_id, response.request_id)
            pend = by_key.pop(key, None)
            arrived, deadline = ((pend.arrived, pend.deadline) if pend
                                 else (clock, None))
            if pend is not None:
                pend.done = True
            latency = done - arrived
            served_total += 1
            latency_sum += latency
            sketch.add(latency)
            by_sketch.setdefault(
                response.session_id,
                QuantileSketch(_SESSION_SKETCH_CAPACITY)).add(latency)
            if retain:
                latencies.append(latency)
                by_session.setdefault(response.session_id, []).append(latency)
            if deadline is not None and done > deadline:
                violations += 1
            session = session_by_id.get(response.session_id)
            if session is not None:  # consume so memory stays bounded
                session.take_response(response.request_id)

    # Conservation sweep: every traced submission must sit in exactly one
    # terminal state.  Abandoned in-flight work (a frame lost on the wire
    # with no retry budget left, or a queue the scheduler declined to
    # drain) resolves client-side as FAILED — never silently dropped.
    terminal_counts = {state.value: 0 for state in TERMINAL_STATES}
    for pend in tracked:
        state = pend.session.request_state(pend.request_id)
        if state is None or not state.terminal:
            pend.session._resolve(pend.request_id, RequestState.FAILED)
            state = RequestState.FAILED
        terminal_counts[state.value] += 1
    conservation_ok = sum(terminal_counts.values()) == len(tracked)

    if metrics is not None:
        _publish_metrics(metrics, "sim", len(tracked), served_total,
                         violations, retry_attempts, sketch, latency_sum)
        service.stats.publish(metrics, "service")

    return SimulationReport(scheduler=service.config.scheduler,
                            latencies_s=latencies, violations=violations,
                            rejected=terminal_counts[RequestState.REJECTED.value],
                            ticks=ticks,
                            makespan_s=makespan - base,
                            throttled=terminal_counts[RequestState.THROTTLED.value],
                            latencies_by_session=by_session,
                            submitted=len(tracked),
                            terminal_counts=terminal_counts,
                            conservation_ok=conservation_ok,
                            served_total=served_total,
                            latency_sum_s=latency_sum,
                            latency_sketch=sketch,
                            sketch_by_session=by_sketch,
                            tick_failures=(service.stats.tick_failures
                                           - failures_start),
                            retries=retry_attempts,
                            degraded=(service.stats.degraded_responses
                                      - degraded_start),
                            privacy_refusals=(service.stats.privacy_refusals
                                              - refusals_start),
                            exhausted_sessions=(
                                service.stats.privacy_exhausted_sessions
                                - exhausted_start),
                            rotations=(service.stats.selector_rotations
                                       - rotations_start))


# -- fleet mode ----------------------------------------------------------


@dataclasses.dataclass
class FleetSimulationReport(SimulationReport):
    """A :class:`SimulationReport` plus the fleet-scope invariants.

    ``duplicate_serves`` counts responses delivered for a request that
    had already reached its client — the exactly-once violation the
    fleet's fencing and idempotent dedup exist to prevent; the chaos
    gate requires it to be **zero**.  ``migrated_sessions`` /
    ``failovers`` / ``lost_submits`` are deltas over the replay;
    ``health_log`` is the per-replica health timeline (``(time,
    replica, state)`` — times rebased to the trace epoch) and
    ``ticks_by_replica`` attributes every stacked pass to the replica
    that ran it.  ``completion_times_s`` records when each served
    response reached its client (same order as ``latencies_s``, rebased
    to the trace epoch), so goodput can be split around a mid-trace
    event such as a replica kill.
    """

    duplicate_serves: int = 0
    migrated_sessions: int = 0
    failovers: int = 0
    lost_submits: int = 0
    health_log: list[tuple[float, int, str]] = dataclasses.field(
        default_factory=list)
    ticks_by_replica: dict[int, int] = dataclasses.field(default_factory=dict)
    completion_times_s: list[float] = dataclasses.field(default_factory=list)
    #: sessions turned away / downgraded to best-effort at the door by
    #: the admission controller (whole sessions, not requests).
    admission_rejected: int = 0
    admission_downgraded: int = 0
    #: arrivals dropped because their session was rejected at the door
    #: (never submitted, so they are outside the conservation sweep).
    arrivals_rejected: int = 0
    #: autoscaler actions as ``(trace_time, action, replica_id,
    #: pressure)`` rows; ``spawns``/``drains_scaled`` are their counts.
    autoscale_log: list[tuple[float, str, int, float]] = dataclasses.field(
        default_factory=list)
    spawns: int = 0
    drains_scaled: int = 0
    replicas_final: int = 0  # replicas on the ring when the replay ended
    #: ``(session_id, spent_eps_before, spent_eps_after)`` for every
    #: migration during the replay — the ε-ratchet evidence.
    migration_epsilon_log: list[tuple[int, float, float]] = dataclasses.field(
        default_factory=list)

    @property
    def epsilon_ratchet_ok(self) -> bool:
        """True when no migration ever *decreased* spent ε (never minted)."""
        return all(after >= before - 1e-12
                   for _, before, after in self.migration_epsilon_log)

    def goodput_between(self, start_s: float, end_s: float) -> float:
        """Completed requests per second inside ``[start_s, end_s)``.

        Times are trace-relative (0 = first arrival epoch); use it to
        compare goodput before and after a mid-trace replica kill.
        """
        if end_s <= start_s:
            return 0.0
        served = sum(1 for t in self.completion_times_s
                     if start_s <= t < end_s)
        return served / (end_s - start_s)


def simulate_fleet(fleet, sessions, trace, cost: TickCost,
                   default_features: np.ndarray | None = None,
                   retry: RetryPolicy | None = None,
                   faults: FaultInjector | None = None,
                   retain_latencies: bool | None = None,
                   metrics=None,
                   autoscaler=None,
                   admission=None) -> FleetSimulationReport:
    """Replay ``trace`` through a :class:`~repro.serving.fleet.ServiceFleet`.

    The :func:`simulate` event loop, promoted to fleet scope: each
    replica keeps its **own** busy clock (``free_at``), so two replicas
    really do serve concurrently on virtual time; heartbeats are events
    (the loop advances to the next scheduled heartbeat when it precedes
    all traffic, so failure detection never stalls behind an idle
    trace); and the :class:`~repro.serving.faults.ReplicaFault` schedule
    of the fault plan fires mid-trace — crash, hang, partition, slow —
    through :meth:`~repro.serving.fleet.ServiceFleet.apply_fault`.

    A hung or partitioned replica's backlog waits for its window to
    clear (the loop wakes it then); a fenced replica's backlog is
    abandoned and recovered only by client retry timeouts re-routing
    through the ring.  A slow replica's passes cost
    ``handle.cost_factor`` times more.  The conservation sweep runs
    fleet-wide: every traced submission must end in exactly one
    terminal state *across failover*, and ``duplicate_serves`` proves
    no request was served twice.

    ``trace`` streams lazily exactly as in :func:`simulate` (see
    ``retain_latencies`` / ``metrics`` there).  An ``autoscaler``
    (:class:`~repro.serving.autoscale.Autoscaler` over this fleet) adds
    periodic control-loop events to the heap — its spawns and drains
    happen mid-replay, replicas appearing and disappearing under live
    traffic, and every migration's spent-ε ledger lands in
    ``migration_epsilon_log``.  An ``admission`` controller
    (:class:`~repro.serving.traffic.AdmissionController`) is consulted
    once per session at that session's **first** arrival: rejected
    sessions have all their arrivals dropped at the door (never
    submitted — no queue slot, no conservation entry, counted in
    ``arrivals_rejected``); downgraded sessions are re-weighted to 0
    (best-effort) before their first submit.
    """
    faults = faults if faults is not None else fleet.faults
    session_by_id = {s.session_id: s for s in sessions}
    arrivals, retain = _prepare_trace(trace, retain_latencies)
    latencies: list[float] = []
    completions: list[float] = []
    by_session: dict[int, list[float]] = {}
    sketch = QuantileSketch()
    by_sketch: dict[int, QuantileSketch] = {}
    served_total = 0
    latency_sum = 0.0
    tracked: list[_Pending] = []
    by_key: dict[tuple[int, int], _Pending] = {}
    ticks_by_replica: dict[int, int] = {}
    admission_decisions: dict[int, str] = {}  # session id -> outcome
    arrivals_rejected = 0
    scale_log: list[tuple[float, str, int, float]] = []
    violations = ticks = retry_attempts = duplicates = 0
    failures_start = fleet.stats.tick_failures
    degraded_start = fleet.stats.degraded_responses
    refusals_start = fleet.stats.privacy_refusals
    exhausted_start = fleet.stats.privacy_exhausted_sessions
    rotations_start = fleet.stats.selector_rotations
    migrated_start = fleet.fleet_stats.migrated_sessions
    failovers_start = fleet.fleet_stats.failovers
    lost_start = fleet.fleet_stats.lost_submits
    health_mark = len(fleet.health_log)
    epsilon_mark = len(fleet.migration_epsilon_log)
    base = fleet.now
    # Spawned replicas are absent here; next_tick defaults them to base
    # (free the moment they join).
    free_at = {rid: base for rid in fleet.replica_ids}
    makespan = base
    clock = base

    seq = itertools.count()
    heap: list[tuple[float, int, int, object]] = []
    next_arrival = next(arrivals, None)

    def pull_arrival() -> Arrival:
        """Consume the head arrival, enforcing stream monotonicity."""
        nonlocal next_arrival
        arrival = next_arrival
        next_arrival = next(arrivals, None)
        if next_arrival is not None and next_arrival.time < arrival.time:
            raise ValueError(
                "streaming traces must yield non-decreasing arrival times "
                f"(got {next_arrival.time} after {arrival.time}); "
                "materialise as a list to have the simulator sort")
        return arrival

    if faults is not None:
        for fault in faults.plan.replica_faults:
            heapq.heappush(heap, (base + fault.at_s, next(seq), _FAULT,
                                  fault))
    if autoscaler is not None:
        heapq.heappush(heap, (base + autoscaler.interval_s, next(seq),
                              _SCALE, None))

    def push(at: float, kind: int, payload) -> None:
        heapq.heappush(heap, (at, next(seq), kind, payload))

    def attempt(pend: _Pending) -> None:
        nonlocal retry_attempts
        pend.attempts += 1
        if pend.attempts > 1:
            retry_attempts += 1
        try:
            pend.session.submit_features(pend.features, record=pend.record,
                                         deadline=pend.deadline,
                                         request_id=pend.request_id)
        except ServingError as exc:
            if (retry is not None and pend.attempts < retry.max_attempts
                    and retry.retryable(exc)):
                push(clock + retry.delay_s(pend.attempts - 1,
                                           pend.session._retry_rng),
                     _SUBMIT, pend)
            return
        if retry is not None and retry.timeout_s is not None:
            push(clock + retry.timeout_s, _TIMEOUT, pend)

    def next_tick() -> tuple[float, object | None]:
        """Earliest (time, handle) a replica could tick, or (inf, None).

        Iterates the fleet's *current* replica ids, so replicas the
        autoscaler spawned mid-replay tick too (free the moment they
        joined — no ``free_at`` entry yet means never busy).
        """
        best_at, best = math.inf, None
        for rid in fleet.replica_ids:
            handle = fleet.handle(rid)
            if not handle.alive(clock) or not handle.service.pending:
                continue
            at = max(clock, free_at.get(rid, base))
            # A hung/partitioned replica wakes when its windows clear
            # (iterate: waking from one window can land inside the other).
            while True:
                woken = at
                if handle.hung(woken):
                    woken = max(woken, handle.hung_until)
                if handle.partitioned(woken):
                    woken = max(woken, handle.partitioned_until)
                if woken == at:
                    break
                at = woken
            at = max(at, handle.service.scheduler.next_event_time(at))
            if at < best_at:
                best_at, best = at, handle
        return best_at, best

    while True:
        arrival_at = (base + next_arrival.time if next_arrival is not None
                      else math.inf)
        heap_at = heap[0][0] if heap else math.inf
        next_event = min(arrival_at, heap_at)
        tick_at, tick_handle = next_tick()
        heartbeat_at = (fleet.next_heartbeat_time()
                        if (heap or next_arrival is not None
                            or tick_handle is not None) else math.inf)
        soonest = min(next_event, tick_at, heartbeat_at)
        if math.isinf(soonest):
            break

        if heartbeat_at < min(next_event, tick_at):
            clock = max(clock, heartbeat_at)
            fleet.advance_clock(clock)  # pumps: heartbeats, detection, ckpts
            continue

        if next_event <= tick_at:
            if arrival_at <= heap_at:  # arrivals win ties (trace order)
                arrival = pull_arrival()
                clock = max(clock, arrival_at)
                fleet.advance_clock(clock)
                session = sessions[arrival.session_index]
                if arrival.close_session:
                    fleet.close_session(session)
                    continue
                if admission is not None:
                    decision = admission_decisions.get(session.session_id)
                    if decision is None:  # the session's first arrival
                        decision = admission.decide(fleet.pressure)
                        admission_decisions[session.session_id] = decision
                        if decision == "downgrade":
                            # Best-effort from here on: weight 0 at the
                            # home replica's scheduler (no-op for
                            # weight-blind schedulers).
                            session.weight = 0.0
                            home = fleet.home_of(session.session_id)
                            fleet.handle(home).service.scheduler \
                                .set_session_weight(session.session_id, 0.0)
                    if decision == "reject":
                        arrivals_rejected += 1
                        continue  # dropped at the door: nothing submitted
                features = (arrival.features if arrival.features is not None
                            else default_features)
                if features is None:
                    raise ValueError("arrival carries no features and no "
                                     "default_features was given")
                deadline = (clock + arrival.deadline_s
                            if arrival.deadline_s is not None else None)
                pend = _Pending(session=session,
                                request_id=session.reserve_request_id(),
                                features=features, record=arrival.record,
                                deadline=deadline, arrived=clock)
                tracked.append(pend)
                by_key[(session.session_id, pend.request_id)] = pend
                delay = 0.0
                if faults is not None:
                    delay = (faults.submission_delay()
                             + faults.session_stall(session.session_id))
                if delay > 0.0:
                    push(clock + delay, _SUBMIT, pend)
                else:
                    attempt(pend)
                continue
            at, _, kind, payload = heapq.heappop(heap)
            clock = max(clock, at)
            fleet.advance_clock(clock)
            if kind == _SUBMIT:
                if not payload.done:
                    attempt(payload)
            elif kind == _TIMEOUT:
                pend = payload
                if (not pend.done and retry is not None
                        and pend.attempts < retry.max_attempts
                        and pend.session.request_state(pend.request_id)
                        is RequestState.QUEUED):
                    attempt(pend)  # re-arms its own timeout on success
            elif kind == _SCALE:  # the autoscaler's periodic check
                event = autoscaler.step(clock)
                if event is not None:
                    scale_log.append((event.time - base, event.action,
                                      event.replica_id, event.pressure))
                # Keep checking while traffic can still arrive or drain;
                # a finished, idle replay lets the loop wind down.
                if next_arrival is not None or heap or fleet.pending:
                    push(clock + autoscaler.interval_s, _SCALE, None)
            else:  # _FAULT: the replica-level schedule strikes
                fault = payload
                fleet.apply_fault(dataclasses.replace(fault,
                                                      at_s=clock))
            continue

        # A replica tick fires.
        clock = tick_at
        fleet.advance_clock(clock)
        handle = tick_handle
        if not handle.tickable(clock) or not handle.service.pending:
            continue  # the pump fenced it (or drained it) at this instant
        service = handle.service
        rid = handle.replica_id
        failures_before = service.stats.tick_failures
        failed_samples_before = service.stats.tick_failure_samples
        expired_before = service.stats.expired_requests
        refusals_before = service.stats.privacy_refusals
        responses = service.tick()
        factor = handle.cost_factor(clock)
        if not responses:
            if service.stats.tick_failures > failures_before:
                attempted = (service.stats.tick_failure_samples
                             - failed_samples_before)
                free_at[rid] = clock + cost.pass_seconds(attempted) * factor
                continue
            if service.stats.expired_requests > expired_before:
                continue
            if service.stats.privacy_refusals > refusals_before:
                continue  # progress: budget-exhausted riders were refused
            free_at[rid] = math.inf  # defensive: scheduler declined to group
            continue
        ticks += 1
        ticks_by_replica[rid] = ticks_by_replica.get(rid, 0) + 1
        group_samples = sum(r.outputs[0].shape[0] for r in responses)
        pass_done = clock + cost.pass_seconds(group_samples) * factor
        free_at[rid] = pass_done
        for response in responses:
            done = pass_done + cost.per_request_downlink_s
            makespan = max(makespan, done)
            key = (response.session_id, response.request_id)
            pend = by_key.get(key)
            arrived, deadline = ((pend.arrived, pend.deadline) if pend
                                 else (clock, None))
            if pend is not None:
                if pend.done:
                    # Second serve of one request: count the exactly-once
                    # violation, consume the response, never re-measure.
                    duplicates += 1
                    session = session_by_id.get(response.session_id)
                    if session is not None:
                        session.take_response(response.request_id)
                    continue
                pend.done = True
            latency = done - arrived
            served_total += 1
            latency_sum += latency
            sketch.add(latency)
            by_sketch.setdefault(
                response.session_id,
                QuantileSketch(_SESSION_SKETCH_CAPACITY)).add(latency)
            if retain:
                latencies.append(latency)
                completions.append(done - base)
                by_session.setdefault(response.session_id, []).append(latency)
            if deadline is not None and done > deadline:
                violations += 1
            session = session_by_id.get(response.session_id)
            if session is not None:
                session.take_response(response.request_id)

    # Fleet-wide conservation sweep: across kills, hangs, partitions and
    # failovers, every traced submission must end in exactly one terminal
    # state.  Work stranded on a fenced replica past its retry budget
    # resolves as FAILED — never silently dropped.
    terminal_counts = {state.value: 0 for state in TERMINAL_STATES}
    for pend in tracked:
        state = pend.session.request_state(pend.request_id)
        if state is None or not state.terminal:
            pend.session._resolve(pend.request_id, RequestState.FAILED)
            state = RequestState.FAILED
        terminal_counts[state.value] += 1
    conservation_ok = (sum(terminal_counts.values()) == len(tracked)
                       and duplicates == 0)

    stats = fleet.stats
    if metrics is not None:
        _publish_metrics(metrics, "sim", len(tracked), served_total,
                         violations, retry_attempts, sketch, latency_sum)
        stats.publish(metrics, "service")
        fleet.fleet_stats.publish(metrics, "fleet")
        metrics.gauge("fleet.ring_replicas").set(
            len(fleet.ring.replica_ids))
    admission_counts = {"downgrade": 0, "reject": 0}
    for decision in admission_decisions.values():
        if decision in admission_counts:
            admission_counts[decision] += 1
    return FleetSimulationReport(
        scheduler=fleet.replicas[0].config.scheduler,
        latencies_s=latencies, violations=violations,
        rejected=terminal_counts[RequestState.REJECTED.value],
        ticks=ticks, makespan_s=makespan - base,
        throttled=terminal_counts[RequestState.THROTTLED.value],
        latencies_by_session=by_session, submitted=len(tracked),
        terminal_counts=terminal_counts, conservation_ok=conservation_ok,
        served_total=served_total,
        latency_sum_s=latency_sum,
        latency_sketch=sketch,
        sketch_by_session=by_sketch,
        tick_failures=stats.tick_failures - failures_start,
        retries=retry_attempts,
        degraded=stats.degraded_responses - degraded_start,
        privacy_refusals=stats.privacy_refusals - refusals_start,
        exhausted_sessions=(stats.privacy_exhausted_sessions
                            - exhausted_start),
        rotations=stats.selector_rotations - rotations_start,
        duplicate_serves=duplicates,
        migrated_sessions=(fleet.fleet_stats.migrated_sessions
                           - migrated_start),
        failovers=fleet.fleet_stats.failovers - failovers_start,
        lost_submits=fleet.fleet_stats.lost_submits - lost_start,
        health_log=[(t - base, rid, state)
                    for t, rid, state in fleet.health_log[health_mark:]],
        ticks_by_replica=ticks_by_replica,
        completion_times_s=completions,
        admission_rejected=admission_counts["reject"],
        admission_downgraded=admission_counts["downgrade"],
        arrivals_rejected=arrivals_rejected,
        autoscale_log=scale_log,
        spawns=sum(1 for _, action, _, _ in scale_log if action == "spawn"),
        drains_scaled=sum(1 for _, action, _, _ in scale_log
                          if action == "drain"),
        replicas_final=len(fleet.ring.replica_ids),
        migration_epsilon_log=list(
            fleet.migration_epsilon_log[epsilon_mark:]))


# -- trace generators ----------------------------------------------------


def _weighted_session_cycle(num_sessions: int, session_weights=None):
    """Yield session indices forever, proportionally to ``session_weights``.

    Uses smooth weighted round-robin (each step every index gains its
    weight of credit; the richest index is emitted and pays the total),
    which interleaves deterministically — a (2, 1) weighting yields
    ``0, 1, 0, 0, 1, 0, ...`` rather than bursts of one index.  With
    ``session_weights=None`` this is plain round-robin.
    """
    if session_weights is None:
        index = 0
        while True:
            yield index % num_sessions
            index += 1
    weights = [float(w) for w in session_weights]
    if len(weights) != num_sessions:
        raise ValueError(f"need {num_sessions} session weights, "
                         f"got {len(weights)}")
    if any(w < 0 for w in weights) or not any(w > 0 for w in weights):
        raise ValueError("session weights must be >= 0 with a positive sum")
    total = sum(weights)
    credit = [0.0] * num_sessions
    while True:
        for i, w in enumerate(weights):
            credit[i] += w
        pick = max(range(num_sessions), key=credit.__getitem__)
        credit[pick] -= total
        yield pick


def bursty_trace(num_sessions: int, bursts: int, burst_size: int,
                 burst_gap_s: float, deadline_s: float | None = None,
                 jitter_s: float = 0.0, rng=None,
                 session_weights=None) -> list[Arrival]:
    """Synchronised bursts: every ``burst_gap_s``, ``burst_size`` requests
    land within ``jitter_s`` of the burst edge — the pathological regime
    for drain-the-queue FIFO, where fixed request-count groups make the
    tail of each burst wait many passes.

    Args:
        session_weights: per-session offered-load weights; requests in a
            burst are attributed to sessions proportionally (smooth
            weighted round-robin, continuing across bursts).  ``None``
            means plain round-robin — every session submits equally.
            Pair a (2, 1) trace with a weighted scheduler to measure
            proportional *service* shares under a proportional load.
    """
    cycle = _weighted_session_cycle(num_sessions, session_weights)
    trace = []
    for burst in range(bursts):
        edge = burst * burst_gap_s
        for _ in range(burst_size):
            offset = float(rng.uniform(0.0, jitter_s)) if rng is not None and jitter_s else 0.0
            trace.append(Arrival(time=edge + offset,
                                 session_index=next(cycle),
                                 deadline_s=deadline_s))
    return trace


def poisson_trace(num_sessions: int, num_requests: int, rate_hz: float,
                  deadline_s: float | None = None, rng=None,
                  session_weights=None) -> list[Arrival]:
    """Memoryless arrivals at ``rate_hz`` aggregate across all sessions.

    ``session_weights`` splits the aggregate stream across sessions
    proportionally (smooth weighted round-robin); ``None`` round-robins
    equally.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    cycle = _weighted_session_cycle(num_sessions, session_weights)
    gaps = rng.exponential(1.0 / rate_hz, size=num_requests)
    times = np.cumsum(gaps)
    return [Arrival(time=float(t), session_index=next(cycle),
                    deadline_s=deadline_s)
            for t in times]
