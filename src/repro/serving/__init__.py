"""Multi-tenant serving layer over the fused ensemble engine.

Ensembler's protocol (Fig. 2) makes the server run *all* N bodies per
upload so the client's P-subset selection stays secret; the fused
:class:`~repro.nn.batched.StackedBodies` engine made that affordable per
request, and this package makes it affordable per *fleet*: concurrent
client uploads are coalesced along the batch axis into one stacked
forward, so K waiting requests cost one fused pass instead of K.

* :mod:`repro.serving.protocol` — the typed wire protocol
  (:class:`UploadRequest` / :class:`FeatureResponse`) with real byte
  serialization and CRC32 frame checksums, so the channel accounts
  actual framed payloads and corruption is detected, not propagated;
* :mod:`repro.serving.errors` — the :class:`ServingError` hierarchy and
  the :class:`RequestState` lifecycle every submitted request traverses
  (exactly one terminal state per request — the conservation invariant);
* :mod:`repro.serving.session` — per-client :class:`Session` objects:
  own channel statistics, private selector, optional per-session noise;
* :mod:`repro.serving.service` — the :class:`InferenceService`: a
  deterministic tick-based front-end with bounded-queue backpressure,
  per-session codec negotiation and cross-client batch coalescing;
* :mod:`repro.serving.scheduler` — pluggable admission/grouping policies
  (:class:`FifoScheduler`, :class:`FairShareScheduler`,
  :class:`WeightedFairScheduler`, :class:`DeadlineScheduler`) the service
  delegates group formation to;
* :mod:`repro.serving.faults` — seeded deterministic fault injection
  (:class:`FaultInjector`) and client-side :class:`RetryPolicy` backoff;
* :mod:`repro.serving.overload` — the graceful-degradation ladder
  (:class:`OverloadController`): shed best-effort tenants, narrow the
  downlink codec, shrink the served ensemble — with hysteresis;
* :mod:`repro.serving.simulate` — an event-driven virtual-clock front-end
  replaying arrival-time traces (with faults, retries and mid-trace
  disconnects) and reporting latency percentiles, SLO violations and
  per-replay request conservation.

The single-tenant ``repro.ci`` pipelines are thin adapters over this API.
"""

from repro.serving.errors import (
    TERMINAL_STATES,
    BackpressureError,
    DeadlineExceededError,
    ProtocolError,
    RateLimitedError,
    RequestCancelledError,
    RequestState,
    ServingError,
    TickFailedError,
    UnknownSessionError,
)
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    RetryPolicy,
    is_serving_error,
)
from repro.serving.overload import (
    LADDER,
    OverloadController,
    OverloadPolicy,
)
from repro.serving.protocol import (
    Codec,
    FeatureResponse,
    UploadRequest,
    WIRE_VERSION,
)
from repro.serving.scheduler import (
    SCHEDULERS,
    DeadlineScheduler,
    FairShareScheduler,
    FifoScheduler,
    Scheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.serving.service import (
    InferenceService,
    RateLimit,
    RateLimiter,
    ServiceStats,
    ServingConfig,
)
from repro.serving.session import Session
from repro.serving.simulate import (
    Arrival,
    SimulationReport,
    TickCost,
    bursty_trace,
    poisson_trace,
    simulate,
)

__all__ = [
    "Arrival",
    "BackpressureError",
    "Codec",
    "DeadlineExceededError",
    "DeadlineScheduler",
    "FairShareScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FeatureResponse",
    "FifoScheduler",
    "InferenceService",
    "LADDER",
    "OverloadController",
    "OverloadPolicy",
    "ProtocolError",
    "RateLimit",
    "RateLimitedError",
    "RateLimiter",
    "RequestCancelledError",
    "RequestState",
    "RetryPolicy",
    "SCHEDULERS",
    "Scheduler",
    "ServiceStats",
    "ServingConfig",
    "ServingError",
    "Session",
    "SimulationReport",
    "TERMINAL_STATES",
    "TickCost",
    "TickFailedError",
    "UnknownSessionError",
    "UploadRequest",
    "WIRE_VERSION",
    "WeightedFairScheduler",
    "bursty_trace",
    "is_serving_error",
    "make_scheduler",
    "poisson_trace",
    "simulate",
]
