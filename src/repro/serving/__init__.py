"""Multi-tenant serving layer over the fused ensemble engine.

Ensembler's protocol (Fig. 2) makes the server run *all* N bodies per
upload so the client's P-subset selection stays secret; the fused
:class:`~repro.nn.batched.StackedBodies` engine made that affordable per
request, and this package makes it affordable per *fleet*: concurrent
client uploads are coalesced along the batch axis into one stacked
forward, so K waiting requests cost one fused pass instead of K.

* :mod:`repro.serving.protocol` — the typed wire protocol
  (:class:`UploadRequest` / :class:`FeatureResponse`) with real byte
  serialization, so the channel accounts actual framed payloads;
* :mod:`repro.serving.session` — per-client :class:`Session` objects:
  own channel statistics, private selector, optional per-session noise;
* :mod:`repro.serving.service` — the :class:`InferenceService`: a
  deterministic tick-based scheduler with bounded-queue backpressure
  and cross-client batch coalescing.

The single-tenant ``repro.ci`` pipelines are thin adapters over this API.
"""

from repro.serving.protocol import (
    FeatureResponse,
    ProtocolError,
    UploadRequest,
    WIRE_VERSION,
)
from repro.serving.service import (
    BackpressureError,
    InferenceService,
    ServiceStats,
    ServingConfig,
)
from repro.serving.session import Session

__all__ = [
    "BackpressureError",
    "FeatureResponse",
    "InferenceService",
    "ProtocolError",
    "ServiceStats",
    "ServingConfig",
    "Session",
    "UploadRequest",
    "WIRE_VERSION",
]
