"""Multi-tenant serving layer over the fused ensemble engine.

Ensembler's protocol (Fig. 2) makes the server run *all* N bodies per
upload so the client's P-subset selection stays secret; the fused
:class:`~repro.nn.batched.StackedBodies` engine made that affordable per
request, and this package makes it affordable per *fleet*: concurrent
client uploads are coalesced along the batch axis into one stacked
forward, so K waiting requests cost one fused pass instead of K.

* :mod:`repro.serving.protocol` — the typed wire protocol
  (:class:`UploadRequest` / :class:`FeatureResponse`) with real byte
  serialization, so the channel accounts actual framed payloads;
* :mod:`repro.serving.session` — per-client :class:`Session` objects:
  own channel statistics, private selector, optional per-session noise;
* :mod:`repro.serving.service` — the :class:`InferenceService`: a
  deterministic tick-based front-end with bounded-queue backpressure,
  per-session codec negotiation and cross-client batch coalescing;
* :mod:`repro.serving.scheduler` — pluggable admission/grouping policies
  (:class:`FifoScheduler`, :class:`FairShareScheduler`,
  :class:`WeightedFairScheduler`, :class:`DeadlineScheduler`) the service
  delegates group formation to;
* :mod:`repro.serving.simulate` — an event-driven virtual-clock front-end
  replaying arrival-time traces with deadline-aware tick triggering and
  reporting p50/p95/p99 latency plus SLO violations.

The single-tenant ``repro.ci`` pipelines are thin adapters over this API.
"""

from repro.serving.protocol import (
    Codec,
    FeatureResponse,
    ProtocolError,
    UploadRequest,
    WIRE_VERSION,
)
from repro.serving.scheduler import (
    SCHEDULERS,
    DeadlineScheduler,
    FairShareScheduler,
    FifoScheduler,
    Scheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.serving.service import (
    BackpressureError,
    InferenceService,
    RateLimit,
    RateLimitedError,
    RateLimiter,
    ServiceStats,
    ServingConfig,
)
from repro.serving.session import Session
from repro.serving.simulate import (
    Arrival,
    SimulationReport,
    TickCost,
    bursty_trace,
    poisson_trace,
    simulate,
)

__all__ = [
    "Arrival",
    "BackpressureError",
    "Codec",
    "DeadlineScheduler",
    "FairShareScheduler",
    "FeatureResponse",
    "FifoScheduler",
    "InferenceService",
    "ProtocolError",
    "RateLimit",
    "RateLimitedError",
    "RateLimiter",
    "SCHEDULERS",
    "Scheduler",
    "ServiceStats",
    "ServingConfig",
    "Session",
    "SimulationReport",
    "TickCost",
    "UploadRequest",
    "WIRE_VERSION",
    "WeightedFairScheduler",
    "bursty_trace",
    "make_scheduler",
    "poisson_trace",
    "simulate",
]
