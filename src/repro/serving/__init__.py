"""Multi-tenant serving layer over the fused ensemble engine.

Ensembler's protocol (Fig. 2) makes the server run *all* N bodies per
upload so the client's P-subset selection stays secret; the fused
:class:`~repro.nn.batched.StackedBodies` engine made that affordable per
request, and this package makes it affordable per *fleet*: concurrent
client uploads are coalesced along the batch axis into one stacked
forward, so K waiting requests cost one fused pass instead of K.

* :mod:`repro.serving.protocol` — the typed wire protocol
  (:class:`UploadRequest` / :class:`FeatureResponse`) with real byte
  serialization and CRC32 frame checksums, so the channel accounts
  actual framed payloads and corruption is detected, not propagated;
* :mod:`repro.serving.errors` — the :class:`ServingError` hierarchy and
  the :class:`RequestState` lifecycle every submitted request traverses
  (exactly one terminal state per request — the conservation invariant);
* :mod:`repro.serving.session` — per-client :class:`Session` objects:
  own channel statistics, private selector, optional per-session noise;
* :mod:`repro.serving.service` — the :class:`InferenceService`: a
  deterministic tick-based front-end with bounded-queue backpressure,
  per-session codec negotiation and cross-client batch coalescing;
* :mod:`repro.serving.scheduler` — pluggable admission/grouping policies
  (:class:`FifoScheduler`, :class:`FairShareScheduler`,
  :class:`WeightedFairScheduler`, :class:`DeadlineScheduler`) the service
  delegates group formation to;
* :mod:`repro.serving.faults` — seeded deterministic fault injection
  (:class:`FaultInjector`) and client-side :class:`RetryPolicy` backoff;
* :mod:`repro.serving.overload` — the graceful-degradation ladder
  (:class:`OverloadController`): shed best-effort tenants, narrow the
  downlink codec, shrink the served ensemble — with hysteresis;
* :mod:`repro.serving.simulate` — an event-driven virtual-clock front-end
  replaying arrival-time traces (with faults, retries and mid-trace
  disconnects) and reporting latency percentiles, SLO violations and
  per-replay request conservation — plus :func:`simulate_fleet`, the
  same loop at fleet scope (per-replica busy clocks, heartbeat events,
  mid-trace replica kills, zero-duplicate-serve accounting);
* :mod:`repro.serving.fleet` — the replicated tier: a
  :class:`ServiceFleet` of hardened replicas behind a consistent-hash
  :class:`HashRing` (sticky session routing, ~1/N failover blast
  radius), a heartbeat :class:`FailureDetector` with hysteresis, and
  checkpoint-driven session failover;
* :mod:`repro.serving.checkpoint` — versioned, CRC32-checked
  :class:`SessionState` byte encoding (selector subset, noise seed,
  codec, weight, token level, request lifecycle) with an in-memory
  :class:`CheckpointStore`; corrupt blobs raise a typed
  :class:`CheckpointError`, never restore silently-wrong state;
* :mod:`repro.serving.autoscale` — the elastic-sizing control loop: an
  :class:`Autoscaler` spawns/drains fleet replicas on a smoothed
  queue-pressure signal with hysteresis and cooldown, migrating
  sessions through the existing drain/checkpoint machinery so privacy
  state never replays;
* :mod:`repro.serving.traffic` — fleet-scale traffic shaping: a
  per-session :class:`AdmissionController` (admit / best-effort
  downgrade / reject at the door) and lazy streaming trace builders
  (:func:`heavy_tailed_trace`, :func:`diurnal_trace`) that generate
  10^4–10^6-session arrival streams without materialising them.

Sessions may additionally carry a per-session privacy budget and a
selector-rotation policy from :mod:`repro.privacy`: the service charges
a Rényi-accounted loss per served query, degrades along a budget ladder,
refuses exhausted sessions with :class:`PrivacyExhaustedError`, and
re-draws the secret subset per the rotation policy (``docs/privacy.md``).

The single-tenant ``repro.ci`` pipelines are thin adapters over this API.
"""

from repro.serving.autoscale import (
    Autoscaler,
    AutoscaleEvent,
    AutoscalePolicy,
)
from repro.serving.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    SessionState,
)
from repro.serving.errors import (
    TERMINAL_STATES,
    BackpressureError,
    CheckpointError,
    DeadlineExceededError,
    PrivacyExhaustedError,
    ProtocolError,
    RateLimitedError,
    RequestCancelledError,
    RequestState,
    ServingError,
    TickFailedError,
    UnknownSessionError,
)
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    ReplicaFault,
    RetryPolicy,
    is_serving_error,
)
from repro.serving.fleet import (
    FailureDetector,
    FleetPolicy,
    FleetStats,
    HashRing,
    ReplicaHandle,
    ReplicaHealth,
    ServiceFleet,
)
from repro.serving.overload import (
    LADDER,
    OverloadController,
    OverloadPolicy,
)
from repro.serving.protocol import (
    Codec,
    FeatureResponse,
    UploadRequest,
    WIRE_VERSION,
)
from repro.serving.scheduler import (
    SCHEDULERS,
    DeadlineScheduler,
    FairShareScheduler,
    FifoScheduler,
    Scheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.serving.service import (
    InferenceService,
    RateLimit,
    RateLimiter,
    ServiceStats,
    ServingConfig,
)
from repro.serving.session import Session
from repro.serving.simulate import (
    Arrival,
    FleetSimulationReport,
    SimulationReport,
    TickCost,
    bursty_trace,
    poisson_trace,
    simulate,
    simulate_fleet,
)
from repro.serving.traffic import (
    ADMIT,
    DOWNGRADE,
    REJECT,
    AdmissionController,
    AdmissionPolicy,
    diurnal_trace,
    heavy_tailed_trace,
)

__all__ = [
    "ADMIT",
    "AdmissionController",
    "AdmissionPolicy",
    "Arrival",
    "Autoscaler",
    "AutoscaleEvent",
    "AutoscalePolicy",
    "BackpressureError",
    "DOWNGRADE",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "Codec",
    "DeadlineExceededError",
    "DeadlineScheduler",
    "FailureDetector",
    "FairShareScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FeatureResponse",
    "FifoScheduler",
    "FleetPolicy",
    "FleetSimulationReport",
    "FleetStats",
    "HashRing",
    "InferenceService",
    "LADDER",
    "OverloadController",
    "OverloadPolicy",
    "PrivacyExhaustedError",
    "ProtocolError",
    "REJECT",
    "RateLimit",
    "RateLimitedError",
    "RateLimiter",
    "ReplicaFault",
    "ReplicaHandle",
    "ReplicaHealth",
    "RequestCancelledError",
    "RequestState",
    "RetryPolicy",
    "SCHEDULERS",
    "Scheduler",
    "ServiceFleet",
    "ServiceStats",
    "ServingConfig",
    "ServingError",
    "Session",
    "SessionState",
    "SimulationReport",
    "TERMINAL_STATES",
    "TickCost",
    "TickFailedError",
    "UnknownSessionError",
    "UploadRequest",
    "WIRE_VERSION",
    "WeightedFairScheduler",
    "bursty_trace",
    "diurnal_trace",
    "heavy_tailed_trace",
    "is_serving_error",
    "make_scheduler",
    "poisson_trace",
    "simulate",
    "simulate_fleet",
]
