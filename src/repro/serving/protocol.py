"""Typed wire protocol for the multi-tenant serving API.

The serving layer speaks two message types: :class:`UploadRequest` (client
-> server: one noised intermediate-feature tensor) and
:class:`FeatureResponse` (server -> client: the N per-body feature maps).
Both serialize to real bytes — ``to_bytes`` / ``from_bytes`` round-trip
exactly — so the byte-counting :class:`~repro.ci.channel.Channel` accounts
the *actual* framed payload rather than the historical
``ndarray.nbytes + 64`` approximation.

Frame layout
------------
A message is a sequence of frames, one per carried array.  Every frame is
a fixed 64-byte little-endian header followed by the raw array bytes::

    offset  size  field
         0     4  magic  b"ENSB"
         4     2  protocol version (WIRE_VERSION)
         6     2  message kind (1 = upload, 2 = response)
         8     8  session id (uint64)
        16     8  request id (uint64)
        24     2  flags (bit 0: record / attack-capture consent;
                  bit 1: response served from a degraded ensemble)
        26     2  array index within the message
        28     2  array count of the message
        30     2  dtype code (see _DTYPE_CODES)
        32     2  ndim (1..6)
        34     2  codec (see Codec; 0 = identity fp32 framing)
        36    24  shape, 6 x uint32 (unused dims zero; an int8-quantised
                  frame carries its float32 scale / offset bits in
                  slots 4 and 5, so it may use at most 4 real dims)
        60     4  CRC32 of the first 60 header bytes + the array payload
                  (wire version 3; this field was zero padding in v2)

The header size deliberately equals the channel's historical
``HEADER_BYTES`` framing constant, so ``wire_nbytes()`` — the exact length
of ``to_bytes()`` — coincides with the accounting every Table-III latency
calibration already used: ``sum(arr.nbytes + 64)``.

Codec negotiation
-----------------
Wire version 2 repurposes the formerly-reserved header field as a
:class:`Codec` code, negotiated per session at ``open_session``.  Two
non-identity codecs exist today:

* :attr:`Codec.FP16` narrows float32 ``FeatureResponse`` payloads — the
  dominant Table-III downlink term — to fp16 on the wire, halving
  downlink bytes at ~1e-3 absolute feature error.
* :attr:`Codec.INT8` quantises each float32 map *affinely* to int8
  (``q = round((x - offset) / scale) - 128`` with ``offset`` the map's
  minimum), quartering the payload.  The per-map ``scale`` and
  ``offset`` (float32 each) ride in the two
  highest shape slots of that map's own 64-byte header — the slots are
  reserved (zero) for the ≤4-d tensors the protocol ships, so the frame
  layout and size are unchanged.  Per-map parameters bound the round-trip
  error at ``(max - min) / 510`` per map, which is what keeps coarse
  quantisation compatible with the ensemble-inversion privacy framing:
  the reconstruction-relevant signal degrades before classification does.

Uplink frames always travel at the client's native dtype (codec 0).

Wire hardening (version 3)
--------------------------
Version 3 spends the formerly-reserved padding word on a **CRC32
checksum** of each frame (the first 60 header bytes plus the raw array
payload).  A truncated, bit-flipped or otherwise mangled frame therefore
fails parsing with a typed
:class:`~repro.serving.errors.ProtocolError` — never a raw
``struct.error`` / ``ValueError`` / a silently wrong-shaped array — which
is the contract the fault-injection layer (:mod:`repro.serving.faults`)
and the protocol fuzz tests hold ``from_bytes`` to.  The header stays 64
bytes, so ``wire_nbytes()`` and the historical byte accounting are
unchanged.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import struct
import zlib

import numpy as np

from repro.ci.channel import HEADER_BYTES
from repro.serving.errors import ProtocolError

WIRE_VERSION = 3
_MAGIC = b"ENSB"
_KIND_UPLOAD = 1
_KIND_RESPONSE = 2
_FLAG_RECORD = 1
_FLAG_DEGRADED = 2
_MAX_NDIM = 6

# magic, version, kind, session, request, flags, index, count, dtype, ndim,
# codec, shape[6] — the 60 checksummed bytes; the CRC32 itself follows.
_FRAME = struct.Struct("<4s2H2Q6H6I")
_CRC = struct.Struct("<I")
assert _FRAME.size + _CRC.size == HEADER_BYTES, \
    "frame header must match channel framing"


class Codec(enum.IntEnum):
    """Wire encoding of a message's array payloads, negotiated per session.

    ``FP32`` is the identity codec: arrays travel at their native dtype.
    ``FP16`` narrows float32 arrays to half precision on the wire.
    ``INT8`` quantises each float32 array affinely to int8 with per-map
    ``(scale, offset)`` parameters carried in that map's frame header.
    Whatever the codec, the byte accounting (``wire_nbytes``) charges the
    narrowed frames exactly.
    """

    FP32 = 0
    FP16 = 1
    INT8 = 2

    @classmethod
    def parse(cls, value: "Codec | int | str | None") -> "Codec":
        """Coerce a user-facing spec to a :class:`Codec` member.

        Args:
            value: ``'fp16'`` / ``'int8'`` (any case), a wire code int, a
                :class:`Codec` member, or ``None`` (meaning ``FP32``).

        Returns:
            The corresponding :class:`Codec`; raises ``ValueError`` on an
            unknown name or code.
        """
        if value is None:
            return cls.FP32
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown codec {value!r}; choose from "
                    f"{[c.name.lower() for c in cls]}") from None
        return cls(value)

    @property
    def wire_itemsize(self) -> int:
        """Bytes per element a float32 map occupies under this codec."""
        return {Codec.FP32: 4, Codec.FP16: 2, Codec.INT8: 1}[self]

    def narrow(self, arr: np.ndarray) -> np.ndarray:
        """Encode one array for the wire (fp16 narrows float32 maps).

        Only valid for the parameter-free codecs; :attr:`INT8` needs its
        per-map quantisation parameters, so use :meth:`encode_array`.
        """
        if self is Codec.INT8:
            raise ValueError("int8 carries per-map parameters; "
                             "use Codec.encode_array")
        if self is Codec.FP16 and arr.dtype == np.float32:
            return arr.astype(np.float16)
        return arr

    def widen(self, arr: np.ndarray) -> np.ndarray:
        """Decode one wire array back to compute dtype (fp16 -> float32).

        Only valid for the parameter-free codecs; :attr:`INT8` needs its
        per-map quantisation parameters, so use :meth:`decode_array`.
        """
        if self is Codec.INT8 and arr.dtype == np.int8:
            raise ValueError("int8 carries per-map parameters; "
                             "use Codec.decode_array")
        if self is Codec.FP16 and arr.dtype == np.float16:
            return arr.astype(np.float32)
        return arr

    def encode_array(self, arr: np.ndarray
                     ) -> "tuple[np.ndarray, tuple[float, float] | None]":
        """Encode one array for the wire, with any per-map parameters.

        Args:
            arr: a compute-dtype array (float32 maps are narrowed or
                quantised; other dtypes pass through unchanged).

        Returns:
            ``(wire_array, qparams)`` where ``qparams`` is the
            ``(scale, offset)`` pair for an int8-quantised map and
            ``None`` otherwise.
        """
        if self is Codec.INT8:
            if arr.dtype == np.float32:
                return _quantize_int8(arr)
            return arr, None  # non-float payloads pass through unquantised
        return self.narrow(arr), None

    def decode_array(self, arr: np.ndarray,
                     qparams: "tuple[float, float] | None" = None
                     ) -> np.ndarray:
        """Decode one wire array back to compute dtype.

        Args:
            arr: the wire-form array (fp16 or int8 for narrowed maps).
            qparams: the ``(scale, offset)`` pair carried in the
                frame header for int8-quantised maps; ``None`` otherwise.

        Returns:
            The float32 (or original-dtype) compute array.
        """
        if self is Codec.INT8 and arr.dtype == np.int8 and qparams is not None:
            return _dequantize_int8(arr, qparams)
        if self is Codec.INT8:
            return arr
        return self.widen(arr)


#: int8 affine quantisation spreads a map's [min, max] over 255 levels, so
#: the worst-case round-trip error is half a level: (max - min) / 510.
INT8_LEVELS = 255


def _quantize_int8(arr: np.ndarray
                   ) -> "tuple[np.ndarray, tuple[float, float]]":
    """Affine-quantise one float32 map: ``q = round((x - offset)/scale) - 128``.

    The per-map parameters are ``scale = (max - min) / 255`` and
    ``offset = min`` — the map's own minimum, which is already an exact
    float32 (anchoring at the minimum is what keeps the error bound
    offset-independent: a combined zero-point ``-128 - min/scale`` would
    lose whole quantisation levels to float32 rounding whenever the map
    sits far from zero).  ``scale`` is rounded through float32 *before*
    quantising, so the stored parameters are the exact ones the
    ``(max - min) / 510`` bound holds for.  A constant map quantises to
    all ``-128`` with ``scale = 1``, reproducing it exactly.
    """
    lo = float(arr.min())
    hi = float(arr.max())
    span = hi - lo  # float64: a full float32 range must not overflow
    offset = np.float32(lo)
    # Clamp the scale to the smallest *normal* float32: a sub-normal
    # span / 255 would round to 0.0 in the header, breaking the
    # "scale of 0 never occurs" invariant the decoder keys on.  Such a
    # map then quantises to all -128 and reconstructs as its minimum —
    # error <= span < 1e-40, far inside any practical tolerance.
    if span <= 0.0:
        scale = np.float32(1.0)
    else:
        scale = np.float32(max(span / INT8_LEVELS,
                               float(np.finfo(np.float32).tiny)))
    q = np.clip(np.rint((arr.astype(np.float64) - float(offset))
                        / float(scale)) - 128, -128, 127).astype(np.int8)
    return q, (float(scale), float(offset))


def _dequantize_int8(arr: np.ndarray,
                     qparams: "tuple[float, float]") -> np.ndarray:
    """Invert :func:`_quantize_int8`: ``x = (q + 128) * scale + offset``.

    Computed in float64 and rounded once to float32 at the end, so the
    reconstruction lands on the nearest representable value to the ideal
    dequantisation.
    """
    scale, offset = qparams
    return ((arr.astype(np.float64) + 128.0) * scale
            + offset).astype(np.float32)

_DTYPE_CODES: dict[np.dtype, int] = {
    np.dtype(np.float32): 0,
    np.dtype(np.float64): 1,
    np.dtype(np.float16): 2,
    np.dtype(np.int64): 3,
    np.dtype(np.int32): 4,
    np.dtype(np.int16): 5,
    np.dtype(np.int8): 6,
    np.dtype(np.uint8): 7,
    np.dtype(np.bool_): 8,
}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}


def _frame_nbytes(arrays: list[np.ndarray]) -> int:
    return sum(arr.nbytes + HEADER_BYTES for arr in arrays)


def _float_bits(value: float) -> int:
    """The uint32 bit pattern of a float32 (how shape slots carry floats)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_float(bits: int) -> float:
    """Invert :func:`_float_bits`."""
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def _pack(kind: int, session_id: int, request_id: int, flags: int,
          arrays: list[np.ndarray], codec: Codec = Codec.FP32,
          quant: "list[tuple[float, float] | None] | None" = None) -> bytes:
    if not arrays:
        raise ProtocolError("a message must carry at least one array")
    if quant is not None and len(quant) != len(arrays):
        raise ProtocolError("quant parameters must match the array count")
    chunks = []
    for index, arr in enumerate(arrays):
        if arr.dtype not in _DTYPE_CODES:
            raise ProtocolError(f"unsupported wire dtype {arr.dtype}")
        if not 1 <= arr.ndim <= _MAX_NDIM:
            raise ProtocolError(f"wire arrays must be 1..{_MAX_NDIM}-d, got {arr.ndim}-d")
        shape = list(arr.shape) + [0] * (_MAX_NDIM - arr.ndim)
        qparams = quant[index] if quant is not None else None
        if qparams is not None:
            # The per-map scale / offset ride in the two highest shape
            # slots, which an int8-quantised tensor must leave free.
            if arr.ndim > _MAX_NDIM - 2:
                raise ProtocolError(
                    f"int8-quantised arrays must be 1..{_MAX_NDIM - 2}-d so "
                    f"the header can carry scale/offset, got {arr.ndim}-d")
            scale, offset = qparams
            shape[_MAX_NDIM - 2] = _float_bits(scale)
            shape[_MAX_NDIM - 1] = _float_bits(offset)
        head = _FRAME.pack(_MAGIC, WIRE_VERSION, kind, session_id,
                           request_id, flags, index, len(arrays),
                           _DTYPE_CODES[arr.dtype], arr.ndim,
                           int(codec), *shape)
        payload = np.ascontiguousarray(arr).tobytes()
        # Per-frame CRC32 over the 60 header bytes + the payload: a flipped
        # bit anywhere in the frame fails the parse with a ProtocolError.
        chunks.append(head)
        chunks.append(_CRC.pack(zlib.crc32(payload, zlib.crc32(head))))
        chunks.append(payload)
    return b"".join(chunks)


def _unpack(data: bytes, expected_kind: int, zero_copy: bool = False
            ) -> "tuple[int, int, int, Codec, list[np.ndarray], list[tuple[float, float] | None]]":
    """Parse frames.

    Returns ``(session_id, request_id, flags, codec, arrays, quant)``
    where ``quant`` holds each frame's ``(scale, offset)`` pair (int8
    frames) or ``None``.

    With ``zero_copy=True`` and an *immutable* ``bytes`` input, the
    returned arrays are read-only :func:`numpy.frombuffer` views straight
    into ``data`` — no payload copy happens at decode time (the serving
    fast path copies exactly once, from these views into its staging
    buffer).  Mutable buffers (``bytearray``, writable ``memoryview``)
    always get defensive copies regardless of the flag: a view into a
    buffer the sender may recycle would let post-decode mutations alias
    into served features.
    """
    offset = 0
    # One memoryview over the whole message: slicing it is O(1), unlike
    # slicing ``bytes`` which would copy each payload before the parse
    # even decides whether a copy is needed.
    view = memoryview(data)
    share = zero_copy and isinstance(data, bytes)
    header: tuple[int, int, int, int] | None = None
    count = None
    arrays: list[np.ndarray] = []
    quant: list[tuple[float, float] | None] = []
    while offset < len(data):
        if len(data) - offset < HEADER_BYTES:
            raise ProtocolError("truncated frame header")
        (magic, version, kind, session_id, request_id, flags, index,
         array_count, dtype_code, ndim, codec_code, *shape6) = _FRAME.unpack_from(
            data, offset)
        (stored_crc,) = _CRC.unpack_from(data, offset + _FRAME.size)
        header_bytes = view[offset:offset + _FRAME.size]
        offset += HEADER_BYTES
        if magic != _MAGIC:
            raise ProtocolError(f"bad magic {magic!r}")
        if version != WIRE_VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if kind != expected_kind:
            raise ProtocolError(f"unexpected message kind {kind}")
        if not 1 <= ndim <= _MAX_NDIM:
            raise ProtocolError(f"bad ndim {ndim}")
        if dtype_code not in _CODE_DTYPES:
            raise ProtocolError(f"unknown dtype code {dtype_code}")
        try:
            codec = Codec(codec_code)
        except ValueError:
            raise ProtocolError(f"unknown codec code {codec_code}") from None
        if header is None:
            header, count = (session_id, request_id, flags, codec_code), array_count
        elif header != (session_id, request_id, flags, codec_code) or count != array_count:
            raise ProtocolError("inconsistent frame headers within one message")
        if index != len(arrays):
            raise ProtocolError(f"out-of-order frame index {index}")
        dtype = _CODE_DTYPES[dtype_code]
        shape = tuple(shape6[:ndim])
        # An int8-quantised frame stores its scale / offset float32
        # bits in the two highest shape slots (a scale of 0 never occurs,
        # so zero slots mean "plain int8 payload, no parameters").
        if (codec is Codec.INT8 and dtype == np.dtype(np.int8)
                and ndim <= _MAX_NDIM - 2 and shape6[_MAX_NDIM - 2] != 0):
            quant.append((_bits_float(shape6[_MAX_NDIM - 2]),
                          _bits_float(shape6[_MAX_NDIM - 1])))
        else:
            quant.append(None)
        # Element counts multiply in Python ints: 6 garbage uint32 shape
        # slots can overflow a fixed-width product into a negative nbytes,
        # which would slip past the length check below.
        count_elems = math.prod(shape)
        nbytes = count_elems * dtype.itemsize
        if len(data) - offset < nbytes:
            raise ProtocolError("truncated array payload")
        payload = view[offset:offset + nbytes]
        if zlib.crc32(payload, zlib.crc32(header_bytes)) != stored_crc:
            raise ProtocolError("frame checksum mismatch")
        # frombuffer over a memoryview of ``bytes`` yields a *read-only*
        # array, so the shared fast path cannot scribble on the wire
        # buffer even by accident — the aliasing fuzz tests assert this.
        arr = np.frombuffer(payload, dtype=dtype,
                            count=count_elems).reshape(shape)
        if not share:
            arr = arr.copy()
        arrays.append(arr)
        offset += nbytes
    if header is None:
        raise ProtocolError("empty message")
    if len(arrays) != count:
        raise ProtocolError(f"expected {count} arrays, got {len(arrays)}")
    session_id, request_id, flags, codec_code = header
    return (session_id, request_id, flags, Codec(codec_code), arrays, quant)


@dataclasses.dataclass
class UploadRequest:
    """Client -> server: one noised intermediate-feature tensor.

    ``record`` mirrors the pipelines' attack-capture flag: a semi-honest
    server may retain the uploaded features for its inversion decoder.

    ``arrival_time`` and ``deadline`` are *scheduling metadata*, not wire
    fields: the service stamps ``arrival_time`` from its virtual clock at
    admission, and a deadline-aware scheduler reads ``deadline`` (an
    absolute clock value) to order and group requests.  ``attempts``
    counts the failed stacked passes this request has ridden through (a
    crashed tick re-queues its group up to ``ServingConfig.tick_retries``
    times before the request fails terminally).  ``from_bytes`` leaves
    all three unset — they belong to the receiving scheduler, not the
    sender.
    """

    session_id: int
    request_id: int
    features: np.ndarray
    record: bool = False
    arrival_time: float | None = None
    deadline: float | None = None
    attempts: int = 0

    @property
    def batch_size(self) -> int:
        return int(self.features.shape[0])

    @property
    def coalesce_key(self) -> tuple:
        """Requests coalesce iff their per-sample shape and dtype agree."""
        return (self.features.shape[1:], self.features.dtype)

    def wire_nbytes(self) -> int:
        """Exact length of :meth:`to_bytes` without materialising it."""
        return _frame_nbytes([self.features])

    def to_bytes(self) -> bytes:
        """Serialise to wire frames; inverse of :meth:`from_bytes`."""
        flags = _FLAG_RECORD if self.record else 0
        return _pack(_KIND_UPLOAD, self.session_id, self.request_id, flags,
                     [self.features])

    @classmethod
    def from_bytes(cls, data: bytes, zero_copy: bool = False) -> "UploadRequest":
        """Parse one framed upload; inverse of :meth:`to_bytes`.

        ``zero_copy=True`` returns ``features`` as a read-only view into
        ``data`` when ``data`` is immutable ``bytes`` (see
        :func:`_unpack`); mutable buffers are still copied defensively.
        """
        session_id, request_id, flags, _codec, arrays, _quant = _unpack(
            data, _KIND_UPLOAD, zero_copy=zero_copy)
        if len(arrays) != 1:
            raise ProtocolError(f"upload carries one tensor, got {len(arrays)}")
        return cls(session_id, request_id, arrays[0],
                   record=bool(flags & _FLAG_RECORD))


@dataclasses.dataclass
class FeatureResponse:
    """Server -> client: all N per-body feature maps for one request.

    Every client always receives all N maps — which P of them the tail
    consumes is decided by the session's private selector and never
    crosses the wire.

    ``outputs`` holds the *wire-form* arrays: under a non-identity codec
    they are already narrowed (fp16) or quantised (int8), so
    ``wire_nbytes`` charges exactly what ``to_bytes`` frames.  ``quant``
    holds the per-map ``(scale, offset)`` pairs of int8-quantised
    outputs (``None`` for parameter-free codecs); on the wire they travel
    inside each map's own frame header.  Build narrowed responses with
    :meth:`encode` and read compute-dtype maps back with :meth:`decoded`.

    ``degraded`` (wire flag bit 1) marks a response served from a
    shrunken ensemble subset by an overloaded service: positions outside
    the served subset alias served maps cyclically, so the client knows
    its accuracy was traded for fleet capacity (see
    :mod:`repro.serving.overload`).
    """

    session_id: int
    request_id: int
    outputs: list[np.ndarray]
    codec: Codec = Codec.FP32
    quant: "list[tuple[float, float] | None] | None" = None
    degraded: bool = False

    @classmethod
    def encode(cls, session_id: int, request_id: int,
               outputs: list[np.ndarray],
               codec: "Codec | int | str | None" = Codec.FP32,
               degraded: bool = False) -> "FeatureResponse":
        """Apply the session's negotiated codec to fresh server outputs.

        Args:
            session_id / request_id: the request being answered.
            outputs: the N compute-dtype (float32) feature maps.
            codec: the session's negotiated downlink codec spec.
            degraded: whether an overloaded service served this response
                from a reduced ensemble subset (sets wire flag bit 1).

        Returns:
            A response holding the wire-form (narrowed / quantised)
            arrays plus any per-map quantisation parameters.
        """
        codec = Codec.parse(codec)
        encoded = [codec.encode_array(arr) for arr in outputs]
        params = [q for _, q in encoded]
        return cls(session_id, request_id, [arr for arr, _ in encoded], codec,
                   params if any(q is not None for q in params) else None,
                   degraded=degraded)

    def decoded(self) -> list[np.ndarray]:
        """The client-side view: wire maps decoded back to float32."""
        params = self.quant or [None] * len(self.outputs)
        return [self.codec.decode_array(arr, q)
                for arr, q in zip(self.outputs, params)]

    @property
    def num_nets(self) -> int:
        """How many per-body feature maps the response carries (N)."""
        return len(self.outputs)

    def wire_nbytes(self) -> int:
        """Exact length of :meth:`to_bytes` without materialising it."""
        return _frame_nbytes(self.outputs)

    def to_bytes(self) -> bytes:
        """Serialise to wire frames; inverse of :meth:`from_bytes`."""
        flags = _FLAG_DEGRADED if self.degraded else 0
        return _pack(_KIND_RESPONSE, self.session_id, self.request_id, flags,
                     list(self.outputs), codec=self.codec, quant=self.quant)

    @classmethod
    def from_bytes(cls, data: bytes, zero_copy: bool = False) -> "FeatureResponse":
        """Parse framed response bytes; inverse of :meth:`to_bytes`.

        ``zero_copy=True`` returns read-only views into immutable
        ``bytes`` input (see :func:`_unpack`).
        """
        session_id, request_id, flags, codec, arrays, quant = _unpack(
            data, _KIND_RESPONSE, zero_copy=zero_copy)
        return cls(session_id, request_id, arrays, codec,
                   quant if any(q is not None for q in quant) else None,
                   degraded=bool(flags & _FLAG_DEGRADED))
