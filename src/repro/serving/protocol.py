"""Typed wire protocol for the multi-tenant serving API.

The serving layer speaks two message types: :class:`UploadRequest` (client
-> server: one noised intermediate-feature tensor) and
:class:`FeatureResponse` (server -> client: the N per-body feature maps).
Both serialize to real bytes — ``to_bytes`` / ``from_bytes`` round-trip
exactly — so the byte-counting :class:`~repro.ci.channel.Channel` accounts
the *actual* framed payload rather than the historical
``ndarray.nbytes + 64`` approximation.

Frame layout
------------
A message is a sequence of frames, one per carried array.  Every frame is
a fixed 64-byte little-endian header followed by the raw array bytes::

    offset  size  field
         0     4  magic  b"ENSB"
         4     2  protocol version (WIRE_VERSION)
         6     2  message kind (1 = upload, 2 = response)
         8     8  session id (uint64)
        16     8  request id (uint64)
        24     2  flags (bit 0: record / attack-capture consent)
        26     2  array index within the message
        28     2  array count of the message
        30     2  dtype code (see _DTYPE_CODES)
        32     2  ndim (1..6)
        34     2  codec (see Codec; 0 = identity fp32 framing)
        36    24  shape, 6 x uint32 (unused dims zero)
        60     4  padding (zero)

The header size deliberately equals the channel's historical
``HEADER_BYTES`` framing constant, so ``wire_nbytes()`` — the exact length
of ``to_bytes()`` — coincides with the accounting every Table-III latency
calibration already used: ``sum(arr.nbytes + 64)``.

Codec negotiation
-----------------
Wire version 2 repurposes the formerly-reserved header field as a
:class:`Codec` code, negotiated per session at ``open_session``.  The only
non-identity codec today is :attr:`Codec.FP16`: the server narrows float32
``FeatureResponse`` payloads — the dominant Table-III downlink term — to
fp16 on the wire, halving downlink bytes at ~1e-3 absolute feature error.
Uplink frames always travel at the client's native dtype (codec 0).
"""

from __future__ import annotations

import dataclasses
import enum
import struct

import numpy as np

from repro.ci.channel import HEADER_BYTES

WIRE_VERSION = 2
_MAGIC = b"ENSB"
_KIND_UPLOAD = 1
_KIND_RESPONSE = 2
_FLAG_RECORD = 1
_MAX_NDIM = 6

# magic, version, kind, session, request, flags, index, count, dtype, ndim,
# codec, shape[6], pad.
_FRAME = struct.Struct("<4s2H2Q6H6I4x")
assert _FRAME.size == HEADER_BYTES, "frame header must match channel framing"


class Codec(enum.IntEnum):
    """Wire encoding of a message's array payloads, negotiated per session.

    ``FP32`` is the identity codec: arrays travel at their native dtype.
    ``FP16`` narrows float32 arrays to half precision on the wire — the
    byte accounting (``wire_nbytes``) charges the narrowed frames exactly.
    """

    FP32 = 0
    FP16 = 1

    @classmethod
    def parse(cls, value: "Codec | int | str | None") -> "Codec":
        """Coerce a user-facing spec (``'fp16'``, 1, ``Codec.FP16``)."""
        if value is None:
            return cls.FP32
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown codec {value!r}; choose from "
                    f"{[c.name.lower() for c in cls]}") from None
        return cls(value)

    def narrow(self, arr: np.ndarray) -> np.ndarray:
        """Encode one array for the wire (fp16 narrows float32 maps)."""
        if self is Codec.FP16 and arr.dtype == np.float32:
            return arr.astype(np.float16)
        return arr

    def widen(self, arr: np.ndarray) -> np.ndarray:
        """Decode one wire array back to compute dtype (fp16 -> float32)."""
        if self is Codec.FP16 and arr.dtype == np.float16:
            return arr.astype(np.float32)
        return arr

_DTYPE_CODES: dict[np.dtype, int] = {
    np.dtype(np.float32): 0,
    np.dtype(np.float64): 1,
    np.dtype(np.float16): 2,
    np.dtype(np.int64): 3,
    np.dtype(np.int32): 4,
    np.dtype(np.int16): 5,
    np.dtype(np.int8): 6,
    np.dtype(np.uint8): 7,
    np.dtype(np.bool_): 8,
}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}


class ProtocolError(ValueError):
    """Raised when bytes on the wire do not parse as a valid message."""


def _frame_nbytes(arrays: list[np.ndarray]) -> int:
    return sum(arr.nbytes + HEADER_BYTES for arr in arrays)


def _pack(kind: int, session_id: int, request_id: int, flags: int,
          arrays: list[np.ndarray], codec: Codec = Codec.FP32) -> bytes:
    if not arrays:
        raise ProtocolError("a message must carry at least one array")
    chunks = []
    for index, arr in enumerate(arrays):
        if arr.dtype not in _DTYPE_CODES:
            raise ProtocolError(f"unsupported wire dtype {arr.dtype}")
        if not 1 <= arr.ndim <= _MAX_NDIM:
            raise ProtocolError(f"wire arrays must be 1..{_MAX_NDIM}-d, got {arr.ndim}-d")
        shape = tuple(arr.shape) + (0,) * (_MAX_NDIM - arr.ndim)
        chunks.append(_FRAME.pack(_MAGIC, WIRE_VERSION, kind, session_id,
                                  request_id, flags, index, len(arrays),
                                  _DTYPE_CODES[arr.dtype], arr.ndim,
                                  int(codec), *shape))
        chunks.append(np.ascontiguousarray(arr).tobytes())
    return b"".join(chunks)


def _unpack(data: bytes, expected_kind: int
            ) -> tuple[int, int, int, Codec, list[np.ndarray]]:
    """Parse frames; returns ``(session_id, request_id, flags, codec, arrays)``."""
    offset = 0
    header: tuple[int, int, int, int] | None = None
    count = None
    arrays: list[np.ndarray] = []
    while offset < len(data):
        if len(data) - offset < _FRAME.size:
            raise ProtocolError("truncated frame header")
        (magic, version, kind, session_id, request_id, flags, index,
         array_count, dtype_code, ndim, codec_code, *shape6) = _FRAME.unpack_from(
            data, offset)
        offset += _FRAME.size
        if magic != _MAGIC:
            raise ProtocolError(f"bad magic {magic!r}")
        if version != WIRE_VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if kind != expected_kind:
            raise ProtocolError(f"unexpected message kind {kind}")
        if not 1 <= ndim <= _MAX_NDIM:
            raise ProtocolError(f"bad ndim {ndim}")
        if dtype_code not in _CODE_DTYPES:
            raise ProtocolError(f"unknown dtype code {dtype_code}")
        try:
            codec = Codec(codec_code)
        except ValueError:
            raise ProtocolError(f"unknown codec code {codec_code}") from None
        if header is None:
            header, count = (session_id, request_id, flags, codec_code), array_count
        elif header != (session_id, request_id, flags, codec_code) or count != array_count:
            raise ProtocolError("inconsistent frame headers within one message")
        if index != len(arrays):
            raise ProtocolError(f"out-of-order frame index {index}")
        dtype = _CODE_DTYPES[dtype_code]
        shape = tuple(shape6[:ndim])
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if len(data) - offset < nbytes:
            raise ProtocolError("truncated array payload")
        arr = np.frombuffer(data, dtype=dtype, count=int(np.prod(shape)),
                            offset=offset).reshape(shape).copy()
        arrays.append(arr)
        offset += nbytes
    if header is None:
        raise ProtocolError("empty message")
    if len(arrays) != count:
        raise ProtocolError(f"expected {count} arrays, got {len(arrays)}")
    session_id, request_id, flags, codec_code = header
    return (session_id, request_id, flags, Codec(codec_code), arrays)


@dataclasses.dataclass
class UploadRequest:
    """Client -> server: one noised intermediate-feature tensor.

    ``record`` mirrors the pipelines' attack-capture flag: a semi-honest
    server may retain the uploaded features for its inversion decoder.

    ``arrival_time`` and ``deadline`` are *scheduling metadata*, not wire
    fields: the service stamps ``arrival_time`` from its virtual clock at
    admission, and a deadline-aware scheduler reads ``deadline`` (an
    absolute clock value) to order and group requests.  ``from_bytes``
    leaves both unset — timestamps belong to the receiving scheduler, not
    the sender.
    """

    session_id: int
    request_id: int
    features: np.ndarray
    record: bool = False
    arrival_time: float | None = None
    deadline: float | None = None

    @property
    def batch_size(self) -> int:
        return int(self.features.shape[0])

    @property
    def coalesce_key(self) -> tuple:
        """Requests coalesce iff their per-sample shape and dtype agree."""
        return (self.features.shape[1:], self.features.dtype)

    def wire_nbytes(self) -> int:
        """Exact length of :meth:`to_bytes` without materialising it."""
        return _frame_nbytes([self.features])

    def to_bytes(self) -> bytes:
        flags = _FLAG_RECORD if self.record else 0
        return _pack(_KIND_UPLOAD, self.session_id, self.request_id, flags,
                     [self.features])

    @classmethod
    def from_bytes(cls, data: bytes) -> "UploadRequest":
        session_id, request_id, flags, _codec, arrays = _unpack(data, _KIND_UPLOAD)
        if len(arrays) != 1:
            raise ProtocolError(f"upload carries one tensor, got {len(arrays)}")
        return cls(session_id, request_id, arrays[0],
                   record=bool(flags & _FLAG_RECORD))


@dataclasses.dataclass
class FeatureResponse:
    """Server -> client: all N per-body feature maps for one request.

    Every client always receives all N maps — which P of them the tail
    consumes is decided by the session's private selector and never
    crosses the wire.

    ``outputs`` holds the *wire-form* arrays: under a non-identity codec
    they are already narrowed (fp16), so ``wire_nbytes`` charges exactly
    what ``to_bytes`` frames.  Build narrowed responses with
    :meth:`encode` and read compute-dtype maps back with :meth:`decoded`.
    """

    session_id: int
    request_id: int
    outputs: list[np.ndarray]
    codec: Codec = Codec.FP32

    @classmethod
    def encode(cls, session_id: int, request_id: int,
               outputs: list[np.ndarray],
               codec: "Codec | int | str | None" = Codec.FP32) -> "FeatureResponse":
        """Apply the session's negotiated codec to fresh server outputs."""
        codec = Codec.parse(codec)
        return cls(session_id, request_id,
                   [codec.narrow(arr) for arr in outputs], codec)

    def decoded(self) -> list[np.ndarray]:
        """The client-side view: fp16 wire maps widened back to float32."""
        return [self.codec.widen(arr) for arr in self.outputs]

    @property
    def num_nets(self) -> int:
        return len(self.outputs)

    def wire_nbytes(self) -> int:
        """Exact length of :meth:`to_bytes` without materialising it."""
        return _frame_nbytes(self.outputs)

    def to_bytes(self) -> bytes:
        return _pack(_KIND_RESPONSE, self.session_id, self.request_id, 0,
                     list(self.outputs), codec=self.codec)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FeatureResponse":
        session_id, request_id, _flags, codec, arrays = _unpack(data, _KIND_RESPONSE)
        return cls(session_id, request_id, arrays, codec)
