"""Elastic fleet sizing: spawn/drain replicas on smoothed load signals.

A static :class:`~repro.serving.fleet.ServiceFleet` sized for peak load
idles through the troughs and sized for the mean melts at the peak; the
:class:`Autoscaler` closes that loop.  It watches one scalar — the
fleet-wide queue pressure (:attr:`ServiceFleet.pressure`, queued work
over total queue capacity) — smooths it with an EWMA so a single burst
cannot flap the fleet, and acts only after ``patience`` consecutive
breaches of a threshold *and* outside a post-action ``cooldown_s``
window (double hysteresis: both conditions are load-signal debouncing,
the same pattern as the overload ladder's patience counters and the
failure detector's SUSPECT band).

Scaling actions reuse the fleet's existing migration machinery, which is
what keeps the privacy story intact:

* **Scale up** — :meth:`ServiceFleet.spawn_replica` adds a replica to
  the consistent-hash ring; the sessions on its arcs (~1/N) migrate
  *live* (the shared :class:`~repro.serving.session.Session` object
  moves, so the Rényi accountant and selector rotation state carry
  without replay) and are checkpointed at the new home.
* **Scale down** — :meth:`ServiceFleet.drain` marks the emptiest ring
  replica ``DRAINING``: it leaves the ring (new work re-homes via
  checkpointed graceful migration, no epoch bump) but keeps ticking its
  backlog, so no queued request is abandoned by the act of scaling in.

Both paths append to ``fleet.migration_epsilon_log``; the fleet-scale
benchmark gate asserts spent ε only ever ratchets up across every such
migration — elasticity can never mint privacy budget.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["AutoscaleEvent", "AutoscalePolicy", "Autoscaler"]

#: Autoscale action names, as they appear in :class:`AutoscaleEvent`.
SCALE_UP = "spawn"
SCALE_DOWN = "drain"


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and debouncing for the scaling control loop.

    The smoothed pressure must sit above ``scale_up_pressure`` (or below
    ``scale_down_pressure``) for ``patience`` consecutive observations
    before the autoscaler acts, and after any action it sleeps for
    ``cooldown_s`` virtual seconds — long enough for the migration the
    action triggered to show up in the signal, so one overload never
    cascades into a spawn storm.  ``smoothing`` is the EWMA weight of
    the newest observation (1.0 = no smoothing).  The replica count is
    clamped to ``[min_replicas, max_replicas]`` counting only replicas
    on the ring (draining/fenced replicas no longer absorb load).
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_pressure: float = 0.7
    scale_down_pressure: float = 0.2
    smoothing: float = 0.3
    patience: int = 2
    cooldown_s: float = 0.5
    check_interval_s: float = 0.05

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if not 0.0 <= self.scale_down_pressure < self.scale_up_pressure <= 1.0:
            raise ValueError("need 0 <= scale_down_pressure < "
                             "scale_up_pressure <= 1 (the gap is the "
                             "hysteresis band)")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        if not self.check_interval_s > 0.0:
            raise ValueError("check_interval_s must be positive")


@dataclasses.dataclass(frozen=True)
class AutoscaleEvent:
    """One scaling action: what happened, when, and on which signal."""

    time: float        # virtual time of the action
    action: str        # SCALE_UP ("spawn") or SCALE_DOWN ("drain")
    replica_id: int    # the replica spawned or drained
    pressure: float    # the smoothed signal that triggered it
    ring_replicas: int  # replicas on the ring after the action
    migrated: int      # sessions re-homed by the action


class Autoscaler:
    """The scaling control loop over one :class:`ServiceFleet`.

    ``replica_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.serving.service.InferenceService` (same ensemble, so
    a migrated session's selector indices stay valid); it is invoked
    once per scale-up.  Drive the loop by calling :meth:`step` on a
    cadence (:attr:`AutoscalePolicy.check_interval_s` — the fleet
    simulator schedules these as heap events); each call folds the
    current fleet pressure into the EWMA and possibly acts, returning
    the :class:`AutoscaleEvent` if it did.
    """

    def __init__(self, fleet, policy: AutoscalePolicy | None = None,
                 replica_factory=None):
        self.fleet = fleet
        self.policy = policy if policy is not None else AutoscalePolicy()
        self.replica_factory = replica_factory
        self.smoothed: float | None = None  # EWMA of fleet pressure
        self.events: list[AutoscaleEvent] = []
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown_until = -math.inf

    @property
    def interval_s(self) -> float:
        """The observation cadence (policy's ``check_interval_s``)."""
        return self.policy.check_interval_s

    def observe(self, pressure: float) -> float:
        """Fold one pressure sample into the EWMA; returns the new level."""
        alpha = self.policy.smoothing
        if self.smoothed is None:
            self.smoothed = float(pressure)
        else:
            self.smoothed = (1.0 - alpha) * self.smoothed + alpha * float(pressure)
        return self.smoothed

    def _pick_drain_target(self) -> int:
        """The ring replica with the least queued work (cheapest drain)."""
        ring_ids = self.fleet.ring.replica_ids
        return min(ring_ids,
                   key=lambda rid: (self.fleet.handle(rid).service.pending,
                                    rid))

    def step(self, now: float) -> AutoscaleEvent | None:
        """One control-loop pass: observe, debounce, maybe scale.

        Returns the :class:`AutoscaleEvent` when a replica was spawned
        or drained, else ``None``.  Observations inside the cooldown
        window still update the EWMA but can neither act nor build
        streaks (the signal is still dominated by the last action).
        """
        policy = self.policy
        pressure = self.observe(self.fleet.pressure)
        if now < self._cooldown_until:
            self._up_streak = self._down_streak = 0
            return None
        ring_size = len(self.fleet.ring.replica_ids)
        if pressure >= policy.scale_up_pressure:
            self._down_streak = 0
            if ring_size >= policy.max_replicas:
                self._up_streak = 0
                return None
            self._up_streak += 1
            if self._up_streak < policy.patience:
                return None
            if self.replica_factory is None:
                raise RuntimeError("scale-up signalled but the autoscaler "
                                   "has no replica_factory")
            migrated_before = self.fleet.fleet_stats.migrated_sessions
            replica_id = self.fleet.spawn_replica(self.replica_factory())
            moved = self.fleet.fleet_stats.migrated_sessions - migrated_before
            event = AutoscaleEvent(time=now, action=SCALE_UP,
                                   replica_id=replica_id, pressure=pressure,
                                   ring_replicas=len(
                                       self.fleet.ring.replica_ids),
                                   migrated=moved)
        elif pressure <= policy.scale_down_pressure:
            self._up_streak = 0
            if ring_size <= policy.min_replicas:
                self._down_streak = 0
                return None
            self._down_streak += 1
            if self._down_streak < policy.patience:
                return None
            replica_id = self._pick_drain_target()
            moved = self.fleet.drain(replica_id)
            event = AutoscaleEvent(time=now, action=SCALE_DOWN,
                                   replica_id=replica_id, pressure=pressure,
                                   ring_replicas=len(
                                       self.fleet.ring.replica_ids),
                                   migrated=moved)
        else:
            self._up_streak = self._down_streak = 0
            return None
        self._up_streak = self._down_streak = 0
        self._cooldown_until = now + policy.cooldown_s
        self.events.append(event)
        return event
