"""Deterministic fault injection and client-side retry for the serving
stack.

A production fleet fails in boring, repeatable ways — frames arrive
corrupted or truncated, packets drop, networks add latency, a worker
crashes mid stacked pass, a client stalls.  This module makes every one
of those failures a *seeded, reproducible event*: a
:class:`FaultInjector` draws each decision from its own
``numpy`` generator in a fixed call order, so a chaos replay is exactly
as deterministic as a fault-free one — the same seed produces the same
corrupted frame on the same request, which is what lets
``scripts/check_perf.py`` gate goodput-under-faults as a hard number
rather than a flaky estimate.

The injector plugs into both halves of the stack:

* :class:`~repro.serving.service.InferenceService` consults it at
  ``submit`` (uplink wire faults: corruption, truncation, drop — a
  mangled frame really is serialised, mangled and re-parsed, so the
  CRC32-hardened protocol proves it raises
  :class:`~repro.serving.errors.ProtocolError`) and at ``tick``
  (injected stacked-pass crashes);
* :func:`~repro.serving.simulate.simulate` consults it per submission
  for network delay and session stalls (client-side time effects the
  service never observes).

:class:`RetryPolicy` is the client half of fault tolerance: exponential
backoff with deterministic jitter, reusing the *same request id* on
every attempt so the service can deduplicate a retry whose original
actually survived (see ``ServiceStats.deduped_requests``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.serving.errors import (
    BackpressureError,
    ProtocolError,
    RateLimitedError,
    ServingError,
    TickFailedError,
)

#: uplink wire-fault outcomes, in the order the injector draws them.
UPLINK_OK = "ok"
UPLINK_CORRUPT = "corrupt"
UPLINK_TRUNCATE = "truncate"
UPLINK_DROP = "drop"

#: replica-level fault kinds (consumed by the fleet simulator).
REPLICA_CRASH = "crash"        # process dies; queued requests are lost
REPLICA_HANG = "hang"          # accepts submits but stops ticking
REPLICA_PARTITION = "partition"  # router <-> replica link severed
REPLICA_SLOW = "slow"          # ticks run ``factor`` x slower

_REPLICA_KINDS = (REPLICA_CRASH, REPLICA_HANG, REPLICA_PARTITION,
                  REPLICA_SLOW)


@dataclasses.dataclass(frozen=True)
class ReplicaFault:
    """One scheduled replica-level fault in a fleet replay.

    ``replica`` names the target by fleet index; ``at_s`` is the virtual
    time the fault strikes.  ``kind`` selects the failure mode:

    * :data:`REPLICA_CRASH` — the replica dies, taking its queued
      requests with it (recovered client-side via retry timeouts and
      checkpoint failover).  Crashes are permanent; ``duration_s`` is
      ignored.
    * :data:`REPLICA_HANG` — the replica keeps *accepting* submits but
      stops ticking for ``duration_s`` seconds: the
      hang-while-holding-requests scenario, the nastiest failure for
      exactly-once accounting.
    * :data:`REPLICA_PARTITION` — the router cannot reach the replica
      for ``duration_s`` seconds; submits routed to it are lost on the
      wire (the replica itself keeps ticking its backlog).
    * :data:`REPLICA_SLOW` — ticks cost ``factor`` x their normal time
      for ``duration_s`` seconds (a gray failure the detector must
      *not* over-react to).
    """

    replica: int
    at_s: float
    kind: str = REPLICA_CRASH
    duration_s: float = 0.0
    factor: float = 4.0  # slow-tick multiplier (REPLICA_SLOW only)

    def __post_init__(self):
        if self.replica < 0:
            raise ValueError("replica index must be >= 0")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.kind not in _REPLICA_KINDS:
            raise ValueError(f"unknown replica fault kind '{self.kind}'; "
                             f"choose from {_REPLICA_KINDS}")
        if self.kind != REPLICA_CRASH and self.duration_s <= 0:
            raise ValueError(f"{self.kind} faults need duration_s > 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (slow means slower)")

    @property
    def until_s(self) -> float:
        """When the fault clears (``inf`` for a permanent crash)."""
        if self.kind == REPLICA_CRASH:
            return float("inf")
        return self.at_s + self.duration_s


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """What to break, and how often (all rates are probabilities in [0, 1]).

    ``tick_failures_at`` names exact tick indices (0-based, counted over
    tick *attempts*) that fail regardless of ``tick_failure_rate`` — the
    deterministic "worker crashes mid-pass at tick 3" scenario the chaos
    gate replays.  ``stall_rate``/``stall_s`` model a client that goes
    quiet: the simulator delays that submission by ``stall_s`` virtual
    seconds.  ``delay_s`` is the *maximum* added network delay (uniform
    draw).
    """

    corrupt_rate: float = 0.0    # uplink frame bytes flipped
    truncate_rate: float = 0.0   # uplink frame cut short
    drop_rate: float = 0.0       # uplink frame lost on the wire
    delay_rate: float = 0.0      # probability of added network delay
    delay_s: float = 0.0         # max added delay (uniform [0, delay_s])
    tick_failure_rate: float = 0.0
    tick_failures_at: tuple[int, ...] = ()
    stall_rate: float = 0.0      # probability a submission stalls
    stall_s: float = 0.0         # stall duration (virtual seconds)
    replica_faults: tuple[ReplicaFault, ...] = ()  # fleet-level schedule

    def __post_init__(self):
        for name in ("corrupt_rate", "truncate_rate", "drop_rate",
                     "delay_rate", "tick_failure_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.corrupt_rate + self.truncate_rate + self.drop_rate > 1.0:
            raise ValueError("corrupt + truncate + drop rates must not "
                             "exceed 1 (one fault per frame)")
        if self.delay_s < 0 or self.stall_s < 0:
            raise ValueError("delay_s and stall_s must be >= 0")
        object.__setattr__(self, "tick_failures_at",
                           tuple(int(t) for t in self.tick_failures_at))
        object.__setattr__(self, "replica_faults",
                           tuple(sorted(self.replica_faults,
                                        key=lambda f: f.at_s)))

    @property
    def frame_fault_rate(self) -> float:
        """Total probability an uplink frame is corrupted/truncated/lost."""
        return self.corrupt_rate + self.truncate_rate + self.drop_rate


@dataclasses.dataclass
class FaultStats:
    """How many of each fault the injector actually dealt out."""

    corrupted_frames: int = 0
    truncated_frames: int = 0
    dropped_frames: int = 0
    delays: int = 0
    tick_failures: int = 0
    stalls: int = 0
    replica_crashes: int = 0      # replicas killed outright
    replica_hangs: int = 0        # tick loops frozen while holding work
    replica_partitions: int = 0   # router <-> replica links severed
    replica_slowdowns: int = 0    # slow-tick windows applied

    @property
    def total(self) -> int:
        """Every injected fault, across all kinds."""
        return sum(getattr(self, field.name)
                   for field in dataclasses.fields(self))

    def as_dict(self) -> dict:
        """The counters as a plain dict (for benchmark JSON records)."""
        return dataclasses.asdict(self)


class FaultInjector:
    """Seeded source of deterministic serving faults.

    One injector instance may be shared between an
    :class:`~repro.serving.service.InferenceService` and a
    :func:`~repro.serving.simulate.simulate` replay; decisions are drawn
    from a private generator in call order, so a single-threaded replay
    with the same seed reproduces the same fault sequence byte for byte.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = int(seed)
        self.stats = FaultStats()
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> "FaultInjector":
        """Rewind the generator and zero the counters (same fault replay)."""
        self._rng = np.random.default_rng(self.seed)
        self.stats = FaultStats()
        return self

    # -- uplink wire faults ---------------------------------------------

    def upload_outcome(self) -> str:
        """Draw one uplink frame's fate: ok / corrupt / truncate / drop."""
        plan = self.plan
        if plan.frame_fault_rate <= 0.0:
            return UPLINK_OK
        roll = float(self._rng.random())
        if roll < plan.corrupt_rate:
            self.stats.corrupted_frames += 1
            return UPLINK_CORRUPT
        if roll < plan.corrupt_rate + plan.truncate_rate:
            self.stats.truncated_frames += 1
            return UPLINK_TRUNCATE
        if roll < plan.frame_fault_rate:
            self.stats.dropped_frames += 1
            return UPLINK_DROP
        return UPLINK_OK

    def mangle(self, data: bytes, outcome: str) -> bytes:
        """Apply a drawn wire fault to real frame bytes.

        Corruption XORs 1..4 bytes at random offsets with non-zero
        masks; truncation cuts the frame at a random interior offset.
        Either way the CRC32-hardened parser must reject the result with
        a :class:`~repro.serving.errors.ProtocolError`.
        """
        if outcome == UPLINK_CORRUPT:
            blob = bytearray(data)
            flips = int(self._rng.integers(1, 5))
            for _ in range(flips):
                pos = int(self._rng.integers(0, len(blob)))
                blob[pos] ^= int(self._rng.integers(1, 256))
            return bytes(blob)
        if outcome == UPLINK_TRUNCATE:
            cut = int(self._rng.integers(0, len(data)))
            return data[:cut]
        return data

    # -- time faults (consumed by the simulator) ------------------------

    def submission_delay(self) -> float:
        """Added network delay for one submission (0.0 = on time)."""
        plan = self.plan
        if plan.delay_rate <= 0.0 or plan.delay_s <= 0.0:
            return 0.0
        if float(self._rng.random()) >= plan.delay_rate:
            return 0.0
        self.stats.delays += 1
        return float(self._rng.uniform(0.0, plan.delay_s))

    def session_stall(self, session_id: int) -> float:
        """Virtual seconds this session's submission stalls (0.0 = none)."""
        plan = self.plan
        if plan.stall_rate <= 0.0 or plan.stall_s <= 0.0:
            return 0.0
        if float(self._rng.random()) >= plan.stall_rate:
            return 0.0
        self.stats.stalls += 1
        return float(plan.stall_s)

    # -- replica-level faults (consumed by the fleet) --------------------

    def record_replica_fault(self, fault: ReplicaFault) -> ReplicaFault:
        """Count a scheduled :class:`ReplicaFault` as it is applied.

        Replica faults are *scheduled*, not drawn — the fleet simulator
        applies them at their ``at_s`` — so the injector only keeps the
        books: the matching ``replica_*`` counter in :attr:`stats` bumps
        and the fault is returned for chaining.
        """
        counter = {REPLICA_CRASH: "replica_crashes",
                   REPLICA_HANG: "replica_hangs",
                   REPLICA_PARTITION: "replica_partitions",
                   REPLICA_SLOW: "replica_slowdowns"}[fault.kind]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        return fault

    # -- server-side crashes --------------------------------------------

    def tick_fails(self, tick_index: int) -> bool:
        """Whether tick attempt ``tick_index`` crashes mid stacked pass."""
        if tick_index in self.plan.tick_failures_at:
            self.stats.tick_failures += 1
            return True
        if self.plan.tick_failure_rate > 0.0 \
                and float(self._rng.random()) < self.plan.tick_failure_rate:
            self.stats.tick_failures += 1
            return True
        return False


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Client-side exponential backoff with deterministic jitter.

    Attempt ``k`` (0-based) backs off
    ``min(base_delay_s * multiplier**k, max_delay_s)`` plus a uniform
    jitter of up to ``jitter`` times that delay — jitter decorrelates
    retry storms after a shared fault.  Every retry reuses the original
    request id, so the service deduplicates a retry whose first
    transmission actually made it into the queue.

    ``timeout_s`` arms loss detection: a submitted request with no
    response after that many (virtual) seconds is resubmitted — the only
    way a client can recover a frame dropped on the wire.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.1
    timeout_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff must not "
                             "shrink)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when set")

    def delay_s(self, attempt: int, rng: np.random.Generator | None = None
                ) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter included."""
        base = min(self.base_delay_s * self.multiplier ** max(0, attempt),
                   self.max_delay_s)
        if self.jitter > 0.0 and rng is not None:
            base += base * self.jitter * float(rng.random())
        return base

    def retryable(self, exc: BaseException) -> bool:
        """Whether a submit failure is worth retrying under this policy.

        Backpressure, rate limiting, corrupt frames and crashed ticks are
        transient; anything outside the :class:`ServingError` hierarchy
        (or a non-transient member of it) is not.
        """
        return isinstance(exc, (BackpressureError, RateLimitedError,
                                ProtocolError, TickFailedError))


def is_serving_error(exc: BaseException) -> bool:
    """True when ``exc`` belongs to the typed :class:`ServingError` family.

    The serving stack's contract — held by a regression test — is that a
    request path never raises anything for which this returns False.
    """
    return isinstance(exc, ServingError)
