"""Streaming telemetry: quantile sketches and a mergeable metrics plane.

Fleet-scale traffic (10^4–10^6 sessions) cannot afford O(requests)
latency lists or per-measurement schema changes, so this package
provides the two primitives the serving/simulation tier aggregates
through:

* :class:`QuantileSketch` — a deterministic, mergeable streaming
  quantile summary (Munro–Paterson-style multi-level compaction) with
  ≤ 1%-of-rank error against ``np.percentile``, used by
  :class:`~repro.serving.simulate.SimulationReport` for p50/p95/p99 at
  O(capacity · log n) memory and merged across replicas/sessions.
* :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments that any component publishes into
  without a schema change; registries merge like
  :class:`~repro.serving.service.ServiceStats` (counters sum, gauges
  max, histograms merge sketches).

The package is dependency-light (NumPy only) and imports nothing from
:mod:`repro.serving`, so telemetry can be consumed anywhere in the
stack without cycles.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sketch import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
]
