"""A lightweight metrics plane: counters, gauges and sketch histograms.

The serving tier accumulates its own typed counters
(:class:`~repro.serving.service.ServiceStats`,
:class:`~repro.serving.fleet.FleetStats`), but those are *schemas* —
adding a measurement means adding a dataclass field.  The
:class:`MetricsRegistry` is the open-ended complement: any component
(the simulators, the autoscaler, the admission controller, ad-hoc
experiments) can publish named counters, gauges and latency histograms
without touching a schema, and registries merge across replicas exactly
like the stats plane does (counters sum, gauges take the max — they are
levels, mirroring ``_LEVEL_STATS`` — histograms merge their sketches).

Publishing is explicit and cheap: ``registry.counter("sim.arrivals")``
gets-or-creates, so hot paths hold the instrument and pay one attribute
bump per event.  ``ServiceStats.publish`` / ``FleetStats.publish``
snapshot their dataclass fields into gauges under a prefix, which is how
the typed stats plane surfaces in the same namespace as the free-form
one.
"""

from __future__ import annotations

import math

from repro.telemetry.sketch import QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (merges by summing)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        amount = float(amount)
        if not amount >= 0.0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value:g})"


class Gauge:
    """A point-in-time level (merges by max, like ``_LEVEL_STATS``)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the current level."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"gauge values must be finite, got {value!r}")
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value:g})"


class Histogram:
    """A latency/size distribution backed by a :class:`QuantileSketch`."""

    def __init__(self, name: str, capacity: int = 1024):
        self.name = name
        self.sketch = QuantileSketch(capacity)
        self.sum = 0.0

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self.sketch.count

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        """Record one observation into the sketch."""
        self.sketch.add(value)
        self.sum += float(value)

    def percentile(self, p: float) -> float:
        """The estimated ``p``-th percentile (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.sketch.percentile(p)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's sketch and sum into this one."""
        self.sketch.merge(other.sketch)
        self.sum += other.sum
        return self

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named instruments, get-or-create, mergeable across replicas.

    One flat namespace: a name registered as one instrument kind cannot
    be re-registered as another (typo protection — a counter silently
    shadowed by a gauge is the classic metrics-plane bug).
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{other_kind}, cannot re-register as a {kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        """Get or create the named histogram (``capacity`` first use only)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, capacity)
        return instrument

    @property
    def names(self) -> tuple[str, ...]:
        """Every registered instrument name, sorted."""
        return tuple(sorted([*self._counters, *self._gauges,
                             *self._histograms]))

    def publish_fields(self, stats, prefix: str) -> None:
        """Snapshot a stats dataclass's fields into ``prefix.field`` gauges.

        Works for any dataclass of numeric fields
        (:class:`~repro.serving.service.ServiceStats`,
        :class:`~repro.serving.fleet.FleetStats`, ...); non-numeric
        fields are skipped.
        """
        import dataclasses
        for field in dataclasses.fields(stats):
            value = getattr(stats, field.name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.gauge(f"{prefix}.{field.name}").set(value)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in: counters sum, gauges max, histograms
        merge their sketches.  Returns ``self``."""
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.value = max(mine.value, gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, histogram.sketch.capacity)
            mine.merge(histogram)
        return self

    def snapshot(self) -> dict:
        """A JSON-friendly dump: counters/gauges as numbers, histograms as
        ``{count, sum, p50, p95, p99}``."""
        out: dict = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            out[name] = {"count": histogram.count, "sum": histogram.sum,
                         "p50": histogram.percentile(50),
                         "p95": histogram.percentile(95),
                         "p99": histogram.percentile(99)}
        return out

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)")
