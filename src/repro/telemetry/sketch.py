"""Streaming quantile sketches: bounded-memory percentiles at fleet scale.

``SimulationReport`` historically kept every latency sample in a Python
list — O(requests) memory that rules out the 10^4–10^6-session traces
the fleet simulator targets.  :class:`QuantileSketch` replaces the
sorted list with a **deterministic multi-level compaction summary** in
the Munro–Paterson / KLL family:

* level ``i`` holds a buffer of values each standing for ``2^i``
  original observations;
* when a buffer reaches ``capacity`` it is sorted and *compacted* —
  every other element (the survivor offset alternates deterministically
  per level, so consecutive compactions cancel rather than accumulate
  rank bias) is promoted to level ``i + 1`` at doubled weight;
* a quantile query sorts the O(capacity · log(n / capacity)) surviving
  weighted points and walks the cumulative weight to the target rank.

With ``H = log2(n / capacity)`` populated levels the worst-case rank
error is about ``H / (2 · capacity)`` of ``n`` — under 0.5% of rank at
the default capacity for a million observations, and far smaller in
practice (the accuracy suite holds it to ≤ 1% of rank against
``np.percentile`` on uniform, heavy-tailed and adversarially sorted
streams).  Everything is deterministic: no randomized compaction, so a
replayed trace reports bit-identical percentiles.

Sketches are **mergeable**: :meth:`QuantileSketch.merge` concatenates
per-level buffers and re-compacts, so per-replica (or per-session)
sketches roll up into fleet aggregates exactly like
:class:`~repro.serving.service.ServiceStats` counters do — merging
shards is equivalent, up to the same error bound, to sketching the
concatenated stream.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Mergeable streaming quantile summary with deterministic error.

    ``capacity`` bounds each level's buffer (and therefore the total
    footprint at ``O(capacity · log(n / capacity))`` floats).  The exact
    minimum and maximum are tracked separately, so ``quantile(0.0)`` and
    ``quantile(1.0)`` are always exact and every estimate is clamped
    into the observed range.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        if capacity % 2:
            raise ValueError(f"capacity must be even, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._levels: list[list[float]] = [[]]
        self._offsets: list[int] = [0]  # per-level alternating survivor offset

    # -- ingest ----------------------------------------------------------

    def add(self, value: float) -> None:
        """Observe one value (must be finite)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"sketch values must be finite, got {value!r}")
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        level0 = self._levels[0]
        level0.append(value)
        if len(level0) >= self.capacity:
            self._compact(0)

    def extend(self, values) -> None:
        """Observe every value of an iterable (or array)."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.add(value)

    def _grow_to(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._offsets.append(0)

    def _compact(self, level: int) -> None:
        """Promote half of a full buffer to the next level (weight x2).

        The buffer is sorted; survivors are every other element starting
        at the level's alternating offset, so the ±half-weight rank
        perturbation of consecutive compactions cancels instead of
        drifting.  An odd element count keeps one value behind at this
        level (weights must stay exact powers of two).
        """
        buffer = self._levels[level]
        buffer.sort()
        carry = [buffer.pop()] if len(buffer) % 2 else []
        offset = self._offsets[level]
        self._offsets[level] ^= 1
        survivors = buffer[offset::2]
        self._levels[level] = carry
        self._grow_to(level + 1)
        self._levels[level + 1].extend(survivors)
        if len(self._levels[level + 1]) >= self.capacity:
            self._compact(level + 1)

    # -- merge -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one (returns ``self``).

        Per-level buffers concatenate (weights line up: level ``i`` is
        weight ``2^i`` in both sketches) and any buffer pushed past
        capacity re-compacts, so merging R shards answers quantiles of
        the concatenated stream within the same rank-error bound.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"can only merge QuantileSketch, got "
                            f"{type(other).__name__}")
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._grow_to(len(other._levels) - 1)
        for level, buffer in enumerate(other._levels):
            self._levels[level].extend(buffer)
        for level in range(len(self._levels)):
            if len(self._levels[level]) >= self.capacity:
                self._compact(level)
        return self

    # -- query -----------------------------------------------------------

    @property
    def footprint(self) -> int:
        """Values currently retained across all levels (memory proxy)."""
        return sum(len(buffer) for buffer in self._levels)

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``q`` in [0, 1]) of the stream.

        Raises:
            ValueError: ``q`` is outside [0, 1] or the sketch is empty.
        """
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        values = np.concatenate(
            [np.asarray(buffer, dtype=np.float64)
             for buffer in self._levels if buffer])
        weights = np.concatenate(
            [np.full(len(buffer), float(2 ** level))
             for level, buffer in enumerate(self._levels) if buffer])
        order = np.argsort(values, kind="stable")
        cumulative = np.cumsum(weights[order])
        target = q * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, len(order) - 1)
        estimate = float(values[order[index]])
        return min(max(estimate, self.min), self.max)

    def percentile(self, p: float) -> float:
        """The estimated ``p``-th percentile (``p`` in [0, 100])."""
        return self.quantile(p / 100.0)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return f"QuantileSketch(capacity={self.capacity}, empty)"
        return (f"QuantileSketch(capacity={self.capacity}, n={self.count}, "
                f"footprint={self.footprint}, "
                f"p50={self.quantile(0.5):.4g})")
