"""Collaborative-inference protocol: roles, channel and pipelines."""

from repro.ci.channel import HEADER_BYTES, Channel, TransferStats, payload_nbytes
from repro.ci.pipeline import Client, EnsembleCIPipeline, Server, StandardCIPipeline

__all__ = [
    "Channel",
    "Client",
    "EnsembleCIPipeline",
    "HEADER_BYTES",
    "Server",
    "StandardCIPipeline",
    "TransferStats",
    "payload_nbytes",
]
