"""In-process transport between the CI client and server.

The channel moves payloads and records exact byte/message counts in each
direction.  Those counts drive the communication column of the Table III
latency model, so they must reflect what a real deployment would
serialise.  Two payload families are accounted:

* **wire messages** — the typed serving protocol
  (:class:`~repro.serving.protocol.UploadRequest` /
  :class:`~repro.serving.protocol.FeatureResponse`): anything exposing
  ``wire_nbytes()`` is charged the exact length of its ``to_bytes()``
  framing;
* **raw arrays** — a bare ndarray (or list of them) is charged its dtype
  bytes plus a fixed :data:`HEADER_BYTES` framing per array, which by
  construction equals the framed size the protocol would produce.
"""

from __future__ import annotations

import dataclasses

import numpy as np

HEADER_BYTES = 64  # shape/dtype/tensor-id framing per message


@dataclasses.dataclass
class TransferStats:
    """Accumulated traffic counters for one channel.

    Stats are composable: ``a + b`` returns the combined counters and
    ``a.merge(b)`` accumulates in place, so per-session stats roll up
    into service-level totals (``sum(stats_list, TransferStats())``).
    """

    uplink_messages: int = 0
    uplink_bytes: int = 0
    downlink_messages: int = 0
    downlink_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.uplink_bytes + self.downlink_bytes

    @property
    def total_messages(self) -> int:
        return self.uplink_messages + self.downlink_messages

    def reset(self) -> None:
        self.uplink_messages = 0
        self.uplink_bytes = 0
        self.downlink_messages = 0
        self.downlink_bytes = 0

    def merge(self, other: "TransferStats") -> "TransferStats":
        """Accumulate ``other``'s counters into this instance (returns self)."""
        self.uplink_messages += other.uplink_messages
        self.uplink_bytes += other.uplink_bytes
        self.downlink_messages += other.downlink_messages
        self.downlink_bytes += other.downlink_bytes
        return self

    def __add__(self, other: "TransferStats") -> "TransferStats":
        if not isinstance(other, TransferStats):
            return NotImplemented
        return dataclasses.replace(self).merge(other)

    def __radd__(self, other) -> "TransferStats":
        if other == 0:  # allow plain sum(list_of_stats)
            return dataclasses.replace(self)
        return NotImplemented


def payload_nbytes(payload) -> int:
    """Wire size of a payload.

    Protocol messages report their exact framed length; raw arrays are
    charged dtype bytes plus :data:`HEADER_BYTES` framing per array.
    """
    wire = getattr(payload, "wire_nbytes", None)
    if callable(wire):
        return wire()
    if isinstance(payload, np.ndarray):
        return payload.nbytes + HEADER_BYTES
    return sum(arr.nbytes + HEADER_BYTES for arr in payload)


class Channel:
    """Bidirectional client<->server link with byte accounting.

    ``send_up`` models client-to-server transmission (feature uploads);
    ``send_down`` models server-to-client transmission (feature maps /
    logits).  Payloads pass through unchanged — the simulation is about
    *accounting*, not copies.
    """

    def __init__(self):
        self.stats = TransferStats()

    def send_up(self, payload):
        self.stats.uplink_messages += 1
        self.stats.uplink_bytes += payload_nbytes(payload)
        return payload

    def send_down(self, payload):
        self.stats.downlink_messages += 1
        self.stats.downlink_bytes += payload_nbytes(payload)
        return payload
