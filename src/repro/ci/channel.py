"""In-process transport between the CI client and server.

The channel moves NumPy payloads and records exact byte/message counts in
each direction.  Those counts drive the communication column of the Table III
latency model, so they must reflect what a real deployment would serialise:
the array payload (dtype bytes) plus a small framing header.
"""

from __future__ import annotations

import dataclasses

import numpy as np

HEADER_BYTES = 64  # shape/dtype/tensor-id framing per message


@dataclasses.dataclass
class TransferStats:
    """Accumulated traffic counters for one channel."""

    uplink_messages: int = 0
    uplink_bytes: int = 0
    downlink_messages: int = 0
    downlink_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.uplink_bytes + self.downlink_bytes

    @property
    def total_messages(self) -> int:
        return self.uplink_messages + self.downlink_messages

    def reset(self) -> None:
        self.uplink_messages = 0
        self.uplink_bytes = 0
        self.downlink_messages = 0
        self.downlink_bytes = 0


def payload_nbytes(payload: np.ndarray | list[np.ndarray]) -> int:
    """Wire size of a payload: array bytes plus framing per array."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes + HEADER_BYTES
    return sum(arr.nbytes + HEADER_BYTES for arr in payload)


class Channel:
    """Bidirectional client<->server link with byte accounting.

    ``send_up`` models client-to-server transmission (intermediate features);
    ``send_down`` models server-to-client transmission (feature maps / logits).
    Payloads pass through unchanged — the simulation is about *accounting*,
    not copies.
    """

    def __init__(self):
        self.stats = TransferStats()

    def send_up(self, payload: np.ndarray | list[np.ndarray]):
        self.stats.uplink_messages += 1
        self.stats.uplink_bytes += payload_nbytes(payload)
        return payload

    def send_down(self, payload: np.ndarray | list[np.ndarray]):
        self.stats.downlink_messages += 1
        self.stats.downlink_bytes += payload_nbytes(payload)
        return payload
