"""Collaborative-inference pipelines (Fig. 1a and Fig. 2 of the paper).

``StandardCIPipeline`` is the classical split: client head -> server body ->
client tail.  ``EnsembleCIPipeline`` is Ensembler's inference path: the client
uploads noised intermediate features once, the server runs *all* N bodies and
returns all N feature vectors, and the client privately selects P of them
before its tail.  Both run over a byte-counting :class:`~repro.ci.channel.Channel`.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.ci.channel import Channel
from repro.nn.tensor import Tensor, no_grad


class Client:
    """Edge-device role: holds ``M_c,h``, the noise layer, the (optional)
    selector and ``M_c,t``.  Never reveals selector or head weights."""

    def __init__(self, head: nn.Module, tail: nn.Module, noise: nn.Module | None = None,
                 selector=None):
        self.head = head
        self.tail = tail
        self.noise = noise if noise is not None else nn.Identity()
        self._selector = selector  # private by convention: the server must not see it

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Compute the intermediate features ``M_c,h(x) + noise`` to upload."""
        with no_grad():
            features = self.noise(self.head(Tensor(images)))
        return features.data

    def decide(self, returned: np.ndarray | list[np.ndarray]) -> np.ndarray:
        """Run the private selector (if any) and the tail on returned features."""
        with no_grad():
            if self._selector is not None:
                tensors = [Tensor(arr) for arr in returned]
                combined = self._selector(tensors)
            else:
                combined = Tensor(returned)
            logits = self.tail(combined)
        return logits.data


class Server:
    """Cloud role: holds one or more bodies ``M_s^i`` and runs them all.

    The server is semi-honest: it follows the protocol but may retain the
    uploaded features for a model-inversion attack.
    """

    def __init__(self, bodies: list[nn.Module]):
        if not bodies:
            raise ValueError("server needs at least one body network")
        self.bodies = bodies
        self.observed_features: list[np.ndarray] = []

    def compute(self, features: np.ndarray, record: bool = False) -> list[np.ndarray]:
        """Run every body on the uploaded features and return all outputs."""
        if record:
            self.observed_features.append(np.array(features, copy=True))
        with no_grad():
            x = Tensor(features)
            return [body(x).data for body in self.bodies]


class StandardCIPipeline:
    """Classical collaborative inference with a single server body."""

    def __init__(self, client: Client, server: Server, channel: Channel | None = None):
        if len(server.bodies) != 1:
            raise ValueError("standard CI uses exactly one server body")
        self.client = client
        self.server = server
        self.channel = channel if channel is not None else Channel()

    def infer(self, images: np.ndarray, record: bool = False) -> np.ndarray:
        features = self.client.encode(images)
        uploaded = self.channel.send_up(features)
        outputs = self.server.compute(uploaded, record=record)
        returned = self.channel.send_down(outputs[0])
        return self.client.decide(returned)


class EnsembleCIPipeline:
    """Ensembler inference: one upload, N bodies, N downloads, private select."""

    def __init__(self, client: Client, server: Server, channel: Channel | None = None):
        if client._selector is None:
            raise ValueError("ensemble CI requires a client-side selector")
        self.client = client
        self.server = server
        self.channel = channel if channel is not None else Channel()

    @property
    def num_nets(self) -> int:
        return len(self.server.bodies)

    def infer(self, images: np.ndarray, record: bool = False) -> np.ndarray:
        features = self.client.encode(images)
        uploaded = self.channel.send_up(features)
        outputs = self.server.compute(uploaded, record=record)
        returned = self.channel.send_down(outputs)  # all N go back; selection is private
        return self.client.decide(returned)
