"""Collaborative-inference pipelines (Fig. 1a and Fig. 2 of the paper).

``StandardCIPipeline`` is the classical split: client head -> server body ->
client tail.  ``EnsembleCIPipeline`` is Ensembler's inference path: the client
uploads noised intermediate features once, the server runs *all* N bodies and
returns all N feature vectors, and the client privately selects P of them
before its tail.  Both run over a byte-counting :class:`~repro.ci.channel.Channel`.

Since the serving redesign both pipelines are thin *single-session adapters*
over the multi-tenant API in :mod:`repro.serving`: each ``infer`` call frames
a typed :class:`~repro.serving.protocol.UploadRequest`, runs one scheduler
tick and decodes the returned feature maps client-side.  Multi-client
deployments that want cross-client batch coalescing use
:class:`~repro.serving.service.InferenceService` directly.

Server execution backends
-------------------------
The server's mandatory "run every body" step supports two backends:

* ``"batched"`` (default) — the bodies are compiled once into a
  :class:`~repro.nn.batched.StackedBodies` and each request runs them as a
  single fused NumPy pass; this is the serving-throughput path.  Servers
  with a single body, or with architecturally heterogeneous bodies that
  cannot be stacked, fall back to the looped backend automatically.
* ``"looped"`` — a Python loop over the bodies; the reference path.

Both backends produce the same per-body outputs (≤1e-5), so the wire
protocol and the client are backend-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.ci.channel import Channel
from repro.nn.batched import StackedBodies
from repro.nn.tensor import Tensor, no_grad


class Client:
    """Edge-device role: holds ``M_c,h``, the noise layer, the (optional)
    selector and ``M_c,t``.  Never reveals selector or head weights."""

    def __init__(self, head: nn.Module, tail: nn.Module, noise: nn.Module | None = None,
                 selector=None):
        self.head = head
        self.tail = tail
        self.noise = noise if noise is not None else nn.Identity()
        self._selector = selector  # private by convention: the server must not see it

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Compute the intermediate features ``M_c,h(x) + noise`` to upload."""
        with no_grad():
            features = self.noise(self.head(Tensor(images)))
        return features.data

    def decide(self, returned: np.ndarray | list[np.ndarray]) -> np.ndarray:
        """Run the private selector (if any) and the tail on returned features."""
        with no_grad():
            if self._selector is not None:
                tensors = [Tensor(arr) for arr in returned]
                combined = self._selector(tensors)
            else:
                combined = Tensor(returned)
            logits = self.tail(combined)
        return logits.data


class Server:
    """Cloud role: holds one or more bodies ``M_s^i`` and runs them all.

    The server is semi-honest: it follows the protocol but may retain the
    uploaded features for a model-inversion attack.  With the default
    ``"batched"`` backend, multi-body servers execute all bodies as one
    fused :class:`~repro.nn.batched.StackedBodies` pass; heterogeneous or
    single-body deployments run the looped reference path.  The stacked
    engine snapshots the bodies' weights at construction — call
    :meth:`sync` after mutating them.
    """

    def __init__(self, bodies: list[nn.Module], backend: str = "batched",
                 fold_bn: bool = True):
        if not bodies:
            raise ValueError("server needs at least one body network")
        if backend not in ("batched", "looped"):
            raise ValueError("backend must be 'batched' or 'looped'")
        self.bodies = bodies
        self.observed_features: list[np.ndarray] = []
        self.backend = "looped"
        self.fold_bn = fold_bn
        self._stacked: StackedBodies | None = None
        # Lazily-built fused engines over body *prefixes* (bodies[:k]) —
        # the overload controller's shrunken-ensemble passes reuse them.
        self._subset_cache: dict[int, StackedBodies | None] = {}
        # True when a train-mode looped pass has mutated the bodies (BN
        # running statistics) since the mirror last synced.
        self._stacked_stale = False
        if backend == "batched" and len(bodies) > 1:
            # None for heterogeneous bodies: serve them with the loop.
            self._stacked = StackedBodies.try_build(bodies, fold_bn=fold_bn)
            if self._stacked is not None:
                self.backend = "batched"

    def sync(self) -> "Server":
        """Refresh the stacked engine after the bodies' weights changed."""
        self._subset_cache.clear()  # subset mirrors rebuild from fresh weights
        if self._stacked is not None:
            self._stacked.sync_from(self.bodies)
            self._stacked.train(self.bodies[0].training)
            self._stacked_stale = False
        return self

    @property
    def padding_safe(self) -> bool:
        """Whether the fused engine tolerates speculative canvas padding.

        True only for spatially-pointwise body trees (see
        :func:`repro.nn.batched.padding_safe`): zero-padding the input
        canvas then cropping the output is then exact.  Looped or
        train-mode servers always report False.
        """
        return (self._stacked is not None
                and not any(body.training for body in self.bodies)
                and self._stacked.padding_safe())

    def _subset_engine(self, k: int) -> StackedBodies | None:
        """The fused engine over ``bodies[:k]``, built lazily (or ``None``
        when the prefix cannot be stacked and must run the loop)."""
        if self.backend != "batched" or k < 2:
            return None
        if self._stacked_stale:
            self.sync()  # refresh mirrors before building from the bodies
        if k not in self._subset_cache:
            self._subset_cache[k] = StackedBodies.try_build(
                self.bodies[:k], fold_bn=self.fold_bn)
        return self._subset_cache[k]

    def compute(self, features: np.ndarray, record: bool = False,
                num_bodies: int | None = None) -> list[np.ndarray]:
        """Run every body on the uploaded features and return all outputs.

        The uploaded buffer is only copied on the (rare) recording path —
        the common ``record=False`` serve path wraps it once, zero-copy, and
        shares that one tensor across the whole body ensemble.

        ``num_bodies`` restricts the pass to the first ``k`` bodies — the
        overload controller's shrunken-ensemble degradation — returning
        ``k`` outputs; fused prefix engines are cached per ``k``.
        """
        total = len(self.bodies)
        k = total if num_bodies is None else int(num_bodies)
        if not 1 <= k <= total:
            raise ValueError(f"num_bodies must be in [1, {total}], got {k}")
        if record:
            # Snapshot: the buffer belongs to the channel/client and may be
            # reused, while a retained feature map must stay immutable.
            self.observed_features.append(np.array(features, copy=True))
        with no_grad():
            x = Tensor(features)
            # The fused engine serves eval-mode bodies only; any train-mode
            # body sends the whole request down the loop so BN running
            # statistics update in place (the stacked mirror must never
            # hold the only copy).  Mode is read off the *bodies* —
            # ``body.train()`` called directly (without sync()) must not
            # leave stale eval-mode semantics being served from the mirror.
            any_training = any(body.training for body in self.bodies)
            if any_training:
                # The looped train-mode forward mutates the bodies in
                # place, so the mirror (if any) no longer matches them.
                self._stacked_stale = True
                return [body(x).data for body in self.bodies[:k]]
            engine = (self._stacked if k == total and self._stacked is not None
                      else self._subset_engine(k))
            if engine is not None:
                if self._stacked_stale:
                    # A train-mode pass moved the bodies' BN statistics
                    # since the last sync; refresh before serving fused.
                    self.sync()
                if engine.training:
                    engine.eval()
                stacked_out = engine(x).data
                return [np.ascontiguousarray(stacked_out[i])
                        for i in range(k)]
            return [body(x).data for body in self.bodies[:k]]


class _SingleSessionPipeline:
    """Shared adapter core: one client, one session, a drained-per-call service.

    Both pipelines are now thin single-tenant views over the multi-tenant
    serving API (:mod:`repro.serving`): ``infer`` submits one typed
    :class:`~repro.serving.protocol.UploadRequest`, drains the service and
    decodes the :class:`~repro.serving.protocol.FeatureResponse`.  The wire
    accounting is therefore the *actual framed payload* of the protocol
    messages, which coincides with the historical per-array framing.
    """

    def __init__(self, client: Client, server: Server, channel: Channel | None = None):
        # Deferred import: repro.serving builds on the roles defined above.
        from repro.serving.service import InferenceService

        self.client = client
        self.server = server
        self.channel = channel if channel is not None else Channel()
        # Single-tenant adapters pin the historical policy: FIFO scheduling
        # and the identity fp32 codec, so byte accounting and outputs stay
        # bit-for-bit comparable with the pre-serving pipelines.
        self._service = InferenceService(server, max_batch=1, max_queue=1,
                                         scheduler="fifo", codec="fp32")
        self._session = self._service.adopt_session(client, channel=self.channel)

    @property
    def session(self):
        """The underlying serving session (single-tenant view)."""
        return self._session

    def infer(self, images: np.ndarray, record: bool = False) -> np.ndarray:
        request_id = self._session.submit(images, record=record)
        self._service.run_until_idle()
        return self._session.result(request_id)


class StandardCIPipeline(_SingleSessionPipeline):
    """Classical collaborative inference with a single server body."""

    def __init__(self, client: Client, server: Server, channel: Channel | None = None):
        if len(server.bodies) != 1:
            raise ValueError("standard CI uses exactly one server body")
        super().__init__(client, server, channel)


class EnsembleCIPipeline(_SingleSessionPipeline):
    """Ensembler inference: one upload, N bodies, N downloads, private select.

    The server side runs on whichever backend its :class:`Server` resolved
    (fused batched pass by default); the protocol — byte counts, message
    counts, returned tensors — is identical either way.
    """

    def __init__(self, client: Client, server: Server, channel: Channel | None = None):
        if client._selector is None:
            raise ValueError("ensemble CI requires a client-side selector")
        super().__init__(client, server, channel)

    @property
    def num_nets(self) -> int:
        return len(self.server.bodies)
