"""Brute-force subset attack and its cost model (Section III-D).

Because an arbitrary reconstruction against *some* subset of the ensemble
looks successful to the attacker (the shadow converges), the server cannot
tell which subset is the client's secret: to be sure it must enumerate them —
``2^N - 1`` subsets, or ``C(N, P)`` if P leaks.  This module implements both
the enumeration (practical only for small N; used to validate the claim) and
the cost estimator used in the §III-D discussion.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.evaluation import ReconstructionMetrics, evaluate_reconstruction
from repro.attacks.mia import InversionAttack
from repro.core.selector import brute_force_search_space, enumerate_subsets
from repro.defenses.base import FittedDefense


@dataclasses.dataclass(frozen=True)
class BruteForceOutcome:
    """Result of a full subset enumeration."""

    per_subset: tuple[tuple[tuple[int, ...], ReconstructionMetrics], ...]
    search_space: int
    subsets_tried: int

    def best(self, metric: str = "ssim") -> tuple[tuple[int, ...], ReconstructionMetrics]:
        """The subset whose reconstruction looks strongest to the attacker."""
        return max(self.per_subset, key=lambda item: getattr(item[1], metric))


def brute_force_attack(
    defense: FittedDefense,
    attack: InversionAttack,
    probe_images: np.ndarray,
    known_p: int | None = None,
    max_subsets: int | None = None,
    backend: str = "fused",
    chunk_size: int = 8,
) -> BruteForceOutcome:
    """Enumerate candidate selector subsets and attack each one.

    ``known_p`` restricts to subsets of the leaked size; ``max_subsets``
    truncates the enumeration (for tests), with the truncation reflected in
    ``subsets_tried`` versus ``search_space``.

    ``backend="fused"`` chunks the enumeration through the multi-attack
    engine (:meth:`~repro.attacks.mia.InversionAttack.attack_subsets`):
    consecutive equally-sized subsets — the enumeration order groups them
    naturally — train their shadows and decoders as one stacked pass of up
    to ``chunk_size`` members, instead of one full training per subset.
    ``backend="looped"`` keeps the reference per-subset loop; both backends
    consume identical RNG streams per subset.

    Each chunk's artifacts are evaluated and dropped before the next chunk
    trains, so peak memory stays O(``chunk_size``) trained networks even for
    the full ``2^N - 1`` enumeration, not O(K).
    """
    num_nets = len(defense.bodies)
    space = brute_force_search_space(num_nets, known_p)
    subsets = []
    for count, subset in enumerate(enumerate_subsets(num_nets, known_p)):
        if max_subsets is not None and count >= max_subsets:
            break
        subsets.append(subset)
    bodies = list(defense.bodies)
    results = []
    for _, chunk in InversionAttack.iter_subset_chunks(subsets, chunk_size):
        artifacts = attack.attack_subsets(bodies, chunk, backend=backend,
                                          chunk_size=chunk_size)
        results.extend((subset, evaluate_reconstruction(defense, one, probe_images))
                       for subset, one in zip(chunk, artifacts))
    return BruteForceOutcome(tuple(results), space, len(results))


def expected_attack_work(num_nets: int, known_p: int | None = None,
                         single_attack_seconds: float = 1.0) -> float:
    """Expected wall-clock to enumerate the subset space (Section III-D).

    With no oracle for success the attacker must try every candidate, so the
    expectation is half the space; we report the full sweep as the paper's
    ``O(2^N)`` bound.
    """
    return brute_force_search_space(num_nets, known_p) * single_attack_seconds
