"""Query-free model-inversion attack (He et al., 2019; Sections II-B, III-B).

The semi-honest server knows: the architecture, its own body weights
``M_s`` (or all N bodies ``{M_s^i}`` under Ensembler), and a dataset from the
same distribution as the private training data.  It cannot query the client.
The attack has two phases:

1. **Shadow training** — fit a shadow head ``~M_c,h`` (three convolutions per
   Section IV-A) and shadow tail ``~M_c,t`` so the pipeline through the
   *frozen, known* server bodies classifies the auxiliary data well.  If the
   shadow head converges near the client's head, its inverse transfers.
2. **Decoder training** — fit ``~M_c,h^{-1}`` to invert the shadow head by
   reconstruction on auxiliary data, then apply it to intercepted features.

Two constructions from Section III-B are provided: ``attack_single`` trains
the shadow against one chosen body; ``attack_adaptive`` trains against all N
bodies through a selector-shaped activation (uniform 1/N concatenation, since
the true selection is secret).

Multi-attack engine
-------------------
The brute-force validation of Section III-D (and the per-body sweep of
Table I) mounts *K independent* attacks that differ only in which body
subset the shadow trains against.  ``train_shadows`` / ``train_decoders``
run all K as **one fused stacked pass** (:mod:`repro.nn.batched`): the K
shadow heads, the gathered K·P frozen body copies and the K decoders stack
along the ensemble axis, each member keeps its own RNG streams (init, batch
order, noise augmentation), and one :func:`~repro.core.training.run_stacked_sgd`
drives all members.  ``attack_subsets`` orchestrates both phases and spawns
the per-member streams in exactly the order the looped path would, so
``backend="fused"`` and ``backend="looped"`` consume identical randomness
and agree up to float reassociation in the batched kernels.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro import nn
from repro.core.training import (
    TrainingConfig,
    recalibrate_batchnorm,
    run_sgd,
    run_stacked_sgd,
)
from repro.data.datasets import ArrayDataset
from repro.models.decoder import build_decoder, build_decoders
from repro.models.resnet import ResNetConfig
from repro.models.shadow import build_shadow_head, build_shadow_tail
from repro.nn import functional as F
from repro.nn.batched import (
    StackedBatchNorm2d,
    UnstackableError,
    batched_cross_entropy,
    batched_mse,
    stack_modules,
)
from repro.nn.tensor import Tensor, concat, no_grad
from repro.utils.config import FrozenConfig
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass
class MemberRngs:
    """The six RNG streams one subset attack consumes, in spawn order.

    The looped path spawns them lazily (head init, tail init, shadow batch
    order, then — after shadow training — decoder init, augmentation noise,
    decoder batch order).  The fused engine pre-spawns the same sequence per
    member before training anything, which keeps the two backends on
    identical random streams.
    """

    head: np.random.Generator
    tail: np.random.Generator
    shadow_sgd: np.random.Generator
    decoder: np.random.Generator
    aug: np.random.Generator
    decoder_sgd: np.random.Generator


@dataclasses.dataclass(frozen=True)
class AttackConfig(FrozenConfig):
    """Budgets for the two attack phases.

    ``moment_weight`` scales the traffic moment-matching term: the semi-honest
    server observes the client's uploaded features during normal service, so
    it can align its shadow head's per-channel feature statistics with the
    observed marginal distribution.  This uses no queries (it never sees
    input/feature *pairs*) and substantially strengthens the shadow — set it
    to 0 to ablate.
    """

    shadow: TrainingConfig = TrainingConfig(epochs=3, lr=0.05)
    decoder: TrainingConfig = TrainingConfig(epochs=3, lr=3e-3, optimizer="adam")
    decoder_width: int = 32
    moment_weight: float = 10.0
    gram_weight: float = 10.0
    bn_weight: float = 5.0
    decoder_noise_aug: float = 0.1
    standardize_features: bool = True
    shadow_mode: str = "matched"  # 'matched' (victim architecture) or 'paper' (3-conv)


@dataclasses.dataclass
class AttackArtifacts:
    """What a completed attack hands to the evaluation: the trained decoder
    (plus the shadow head it inverts, for inspection).

    ``input_mean`` / ``input_std`` standardise the decoder's input; at attack
    time they are the statistics of *observed victim traffic*, which cancels
    the element-wise scale/shift mismatch between shadow and victim features.
    """

    name: str
    shadow_head: nn.Module
    decoder: nn.Module
    input_mean: np.ndarray | None = None
    input_std: np.ndarray | None = None
    details: dict[str, Any] = dataclasses.field(default_factory=dict)

    def reconstruct(self, intercepted_features: np.ndarray) -> np.ndarray:
        """Apply the inversion decoder to intercepted intermediate features."""
        self.decoder.eval()
        features = np.asarray(intercepted_features, dtype=np.float32)
        if self.input_mean is not None:
            features = (features - self.input_mean) / (self.input_std + 1e-3)
        with no_grad():
            return self.decoder(Tensor(features)).data


class InversionAttack:
    """The adversarial server's attack toolkit."""

    def __init__(
        self,
        model_config: ResNetConfig,
        image_shape: tuple[int, int, int],
        aux_dataset: ArrayDataset,
        config: AttackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.model_config = model_config
        self.image_shape = image_shape
        self.aux_dataset = aux_dataset
        self.config = config if config is not None else AttackConfig()
        self.rng = rng if rng is not None else new_rng()
        self.intermediate_shape = model_config.intermediate_shape(image_shape[1])
        self._observed_mean: np.ndarray | None = None
        self._observed_std: np.ndarray | None = None
        self._observed_gram: np.ndarray | None = None
        self._fusable_cache: dict[tuple[int, ...], bool] = {}

    def observe_traffic(self, intercepted_features: np.ndarray) -> None:
        """Record marginal statistics of intercepted client traffic.

        The server sees every uploaded feature tensor while providing the
        service; it keeps the element-wise mean and standard-deviation maps
        and the channel Gram matrix over observed uploads.  All are marginal
        statistics (never paired with inputs), so the query-free assumption
        holds.  The Gram matrix pins down channel identities, which is what
        makes the shadow head converge to the victim's representation.
        """
        features = np.asarray(intercepted_features)
        if features.ndim != 4:
            raise ValueError("expected NCHW intercepted features")
        self._observed_mean = features.mean(axis=0).astype(np.float32)
        self._observed_std = features.std(axis=0).astype(np.float32)
        n, c, h, w = features.shape
        flat = features.reshape(n, c, h * w)
        gram = np.einsum("ncl,ndl->cd", flat, flat) / (n * h * w)
        self._observed_gram = gram.astype(np.float32)

    def _spawn_member_rngs(self, count: int) -> list[MemberRngs]:
        """Spawn ``count`` per-member RNG bundles in looped-path order."""
        return [MemberRngs(*(spawn_rng(self.rng) for _ in range(6)))
                for _ in range(count)]

    # -- phase 1: shadow network ----------------------------------------
    def train_shadow(self, bodies: list[nn.Module]) -> nn.Module:
        """Fit a shadow head/tail against the frozen ``bodies``.

        With one body this is the standard CI shadow; with several, the
        attacker imitates the selector with a uniform 1/K concatenation.
        """
        if not bodies:
            raise ValueError("attack needs at least one server body")
        shadow_head = build_shadow_head(self.model_config, self.config.shadow_mode,
                                        spawn_rng(self.rng))
        shadow_tail = build_shadow_tail(self.model_config, in_multiplier=len(bodies),
                                        rng=spawn_rng(self.rng))
        return self._train_shadow_impl(bodies, shadow_head, shadow_tail,
                                       spawn_rng(self.rng))

    def _train_shadow_impl(self, bodies: list[nn.Module], shadow_head: nn.Module,
                           shadow_tail: nn.Module,
                           sgd_rng: np.random.Generator) -> nn.Module:
        """The looped shadow-training body, with modules/streams injected."""
        for body in bodies:
            body.requires_grad_(False)
            body.eval()
        shadow_head.train()
        shadow_tail.train()
        scale = 1.0 / len(bodies)
        moment_weight = self.config.moment_weight
        gram_weight = self.config.gram_weight
        bn_weight = self.config.bn_weight
        use_moments = moment_weight > 0 and self._observed_mean is not None
        use_gram = gram_weight > 0 and self._observed_gram is not None
        if use_moments:
            observed_mean = Tensor(self._observed_mean)
            observed_std = Tensor(self._observed_std)
        if use_gram:
            observed_gram = Tensor(self._observed_gram)

        body_bns: list[nn.BatchNorm2d] = []
        if bn_weight > 0:
            for body in bodies:
                for module in body.modules():
                    if isinstance(module, nn.BatchNorm2d):
                        module.record_batch_stats = True
                        body_bns.append(module)

        def loss_fn(images, labels):
            features = shadow_head(Tensor(images))
            outputs = [body(features) * scale for body in bodies]
            logits = shadow_tail(concat(outputs, axis=1))
            loss = F.cross_entropy(logits, labels)
            if use_moments:
                mean = features.mean(axis=0)
                std = (features.var(axis=0) + 1e-6).sqrt()
                moment_gap = (((mean - observed_mean) ** 2).mean()
                              + ((std - observed_std) ** 2).mean())
                loss = loss + moment_weight * moment_gap
            if use_gram:
                n, c, h, w = features.shape
                flat = features.reshape(n, c, h * w)
                gram = (flat @ flat.transpose(0, 2, 1)).sum(axis=0) / (n * h * w)
                loss = loss + gram_weight * ((gram - observed_gram) ** 2).mean()
            if body_bns:
                # DeepInversion-style prior: the frozen bodies' BatchNorm
                # running statistics describe the activations the victim's
                # head produced; a matching shadow reproduces them.
                gaps = []
                for bn in body_bns:
                    batch_mean, batch_var = bn.recorded_stats
                    gaps.append(((batch_mean - Tensor(bn.running_mean)) ** 2).mean()
                                + ((batch_var - Tensor(bn.running_var)) ** 2).mean())
                loss = loss + bn_weight * nn.stack(gaps).mean()
            return loss

        params = shadow_head.parameters() + shadow_tail.parameters()
        try:
            history = run_sgd(params, loss_fn, self.aux_dataset, self.config.shadow,
                              sgd_rng)
        finally:
            for bn in body_bns:
                bn.record_batch_stats = False
                bn.recorded_stats = None
        recalibrate_batchnorm([shadow_head],
                              lambda images: shadow_head(Tensor(images)),
                              self.aux_dataset.images, self.config.shadow.batch_size)
        logger.info("shadow training final loss %.4f", history[-1])
        shadow_head.eval()
        return shadow_head

    # -- fused multi-attack engine ----------------------------------------
    @staticmethod
    def _validated_subsets(bodies: list[nn.Module],
                           subsets: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
        subsets = [tuple(int(i) for i in subset) for subset in subsets]
        if not subsets:
            raise ValueError("need at least one subset to attack")
        sizes = {len(subset) for subset in subsets}
        if len(sizes) != 1:
            raise ValueError(f"subsets must share one size, got sizes {sorted(sizes)}")
        if not sizes.pop():
            raise ValueError("subsets must be non-empty")
        for subset in subsets:
            for index in subset:
                if not 0 <= index < len(bodies):
                    raise ValueError(f"body index {index} out of range")
        return subsets

    def train_shadows(self, bodies: list[nn.Module],
                      subsets: Sequence[Sequence[int]],
                      rngs: list[MemberRngs] | None = None) -> list[nn.Module]:
        """Fit K shadow heads — one per body subset — as one stacked pass.

        All subsets must share one size P (``attack_subsets`` chunks a mixed
        enumeration accordingly).  The K heads/tails and the K·P gathered
        frozen body copies stack along the ensemble axis; each member draws
        its own batches and the per-member losses (cross-entropy plus the
        moment/Gram/BN-prior terms of :meth:`train_shadow`) sum into one
        backward.  Falls back to K looped trainings — on the same
        pre-spawned streams — when the modules cannot be stacked.
        """
        subsets = self._validated_subsets(bodies, subsets)
        k, p = len(subsets), len(subsets[0])
        if rngs is None:
            rngs = self._spawn_member_rngs(k)
        chosen_lists = [[bodies[i] for i in subset] for subset in subsets]
        for chosen in chosen_lists:
            for body in chosen:
                body.requires_grad_(False)
                body.eval()
        heads = [build_shadow_head(self.model_config, self.config.shadow_mode,
                                   member.head) for member in rngs]
        tails = [build_shadow_tail(self.model_config, in_multiplier=p,
                                   rng=member.tail) for member in rngs]
        try:
            stacked_heads = stack_modules(heads)
            stacked_tails = stack_modules(tails)
            stacked_bodies = stack_modules(
                [body for chosen in chosen_lists for body in chosen])
        except UnstackableError:
            logger.info("multi-attack ensemble not stackable; running %d looped "
                        "shadow trainings", k)
            return [self._train_shadow_impl(chosen, head, tail, member.shadow_sgd)
                    for chosen, head, tail, member
                    in zip(chosen_lists, heads, tails, rngs)]
        self._train_shadows_fused(stacked_heads, stacked_tails, stacked_bodies,
                                  k, p, [member.shadow_sgd for member in rngs])
        stacked_heads.unstack_to(heads)
        for head in heads:
            head.eval()
        return heads

    def _train_shadows_fused(self, stacked_heads: nn.Module, stacked_tails: nn.Module,
                             stacked_bodies: nn.Module, k: int, p: int,
                             sgd_rngs: list[np.random.Generator]) -> None:
        """Run the fused K-member shadow optimisation in place."""
        stacked_bodies.train(False)
        stacked_heads.train(True)
        stacked_tails.train(True)
        scale = 1.0 / p
        feature_dim = self.model_config.feature_dim
        moment_weight = self.config.moment_weight
        gram_weight = self.config.gram_weight
        bn_weight = self.config.bn_weight
        use_moments = moment_weight > 0 and self._observed_mean is not None
        use_gram = gram_weight > 0 and self._observed_gram is not None
        if use_moments:
            observed_mean = Tensor(self._observed_mean)
            observed_std = Tensor(self._observed_std)
        if use_gram:
            observed_gram = Tensor(self._observed_gram)

        stacked_bns: list[StackedBatchNorm2d] = []
        if bn_weight > 0:
            for module in stacked_bodies.modules():
                if isinstance(module, StackedBatchNorm2d):
                    module.record_batch_stats = True
                    stacked_bns.append(module)
        # Member k's features feed each of its P gathered body copies.
        gather = np.repeat(np.arange(k), p)

        def loss_fn(images, labels):
            features = stacked_heads(Tensor(images))  # (K, B, c, h, w)
            branch_in = features[gather] if p > 1 else features
            outputs = stacked_bodies(branch_in) * scale  # (K*P, B, feat)
            batch = outputs.shape[1]
            # (K*P, B, F) -> (K, B, P*F): the per-subset 1/P-scaled
            # concatenation of Eq. 1, all members at once.
            merged = (outputs.reshape(k, p, batch, feature_dim)
                      .transpose(0, 2, 1, 3).reshape(k, batch, p * feature_dim))
            logits = stacked_tails(merged)
            loss = batched_cross_entropy(logits, labels)  # (K,)
            if use_moments:
                mean = features.mean(axis=1)
                std = (features.var(axis=1) + 1e-6).sqrt()
                moment_gap = (((mean - observed_mean) ** 2).mean(axis=(1, 2, 3))
                              + ((std - observed_std) ** 2).mean(axis=(1, 2, 3)))
                loss = loss + moment_weight * moment_gap
            if use_gram:
                _, n, c, h, w = features.shape
                flat = features.reshape(k, n, c, h * w)
                gram = (flat @ flat.transpose(0, 1, 3, 2)).sum(axis=1) / (n * h * w)
                loss = loss + gram_weight * ((gram - observed_gram) ** 2).mean(axis=(1, 2))
            if stacked_bns:
                gaps = []
                for bn in stacked_bns:
                    rec_mean, rec_var = bn.recorded_stats  # (K*P, C) each
                    gap = (((rec_mean - Tensor(bn.running_mean)) ** 2).mean(axis=1)
                           + ((rec_var - Tensor(bn.running_var)) ** 2).mean(axis=1))
                    gaps.append(gap.reshape(k, p))
                loss = loss + bn_weight * nn.stack(gaps).mean(axis=(0, 2))
            return loss

        params = stacked_heads.parameters() + stacked_tails.parameters()
        try:
            histories = run_stacked_sgd(params, loss_fn, self.aux_dataset,
                                        self.config.shadow, sgd_rngs)
        finally:
            for bn in stacked_bns:
                bn.record_batch_stats = False
                bn.recorded_stats = None
        recalibrate_batchnorm([stacked_heads],
                              lambda images: stacked_heads(Tensor(images)),
                              self.aux_dataset.images, self.config.shadow.batch_size)
        for index, history in enumerate(histories):
            logger.info("shadow %d training final loss %.4f", index, history[-1])

    # -- phase 2: inversion decoder ---------------------------------------
    def _shadow_feature_stats(self, shadow_head: nn.Module) -> tuple[np.ndarray, np.ndarray]:
        """Element-wise mean/std maps of the shadow features over aux data."""
        shadow_head.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(self.aux_dataset), 128):
                batch = self.aux_dataset.images[start:start + 128]
                outputs.append(shadow_head(Tensor(batch)).data)
        features = np.concatenate(outputs)
        return features.mean(axis=0), features.std(axis=0)

    def train_decoder(self, shadow_head: nn.Module) -> tuple[nn.Module, np.ndarray, np.ndarray]:
        """Fit ``~M_c,h^{-1}``: reconstruct aux images from shadow features.

        Two transfer aids are applied: (1) the decoder input is standardised
        element-wise — at training time with shadow-feature statistics, at
        attack time with observed-traffic statistics — cancelling the
        first-order mismatch between shadow and victim features; (2) Gaussian
        input augmentation makes the decoder a denoising inverse, widening
        its basin so residual mismatch (and the victim's additive noise) do
        not break it.  Returns the decoder and the shadow stats.
        """
        decoder = build_decoder(self.intermediate_shape, self.image_shape,
                                width=self.config.decoder_width, rng=spawn_rng(self.rng))
        aug_rng = spawn_rng(self.rng)
        return self._train_decoder_impl(shadow_head, decoder, aug_rng,
                                        spawn_rng(self.rng))

    def _train_decoder_impl(self, shadow_head: nn.Module, decoder: nn.Module,
                            aug_rng: np.random.Generator,
                            sgd_rng: np.random.Generator
                            ) -> tuple[nn.Module, np.ndarray, np.ndarray]:
        """The looped decoder-training body, with modules/streams injected."""
        shadow_head.eval()
        decoder.train()
        aug_sigma = self.config.decoder_noise_aug
        if self.config.standardize_features:
            shadow_mean, shadow_std = self._shadow_feature_stats(shadow_head)
        else:
            shadow_mean = np.zeros(self.intermediate_shape, dtype=np.float32)
            shadow_std = np.ones(self.intermediate_shape, dtype=np.float32)

        def loss_fn(images, _labels):
            x = Tensor(images)
            with no_grad():
                features = shadow_head(x)
            feature_data = (features.data - shadow_mean) / (shadow_std + 1e-3)
            if aug_sigma > 0:
                feature_data = feature_data + aug_rng.normal(
                    0.0, aug_sigma, size=feature_data.shape).astype(np.float32)
            reconstruction = decoder(Tensor(feature_data.astype(np.float32)))
            return F.mse_loss(reconstruction, x)

        history = run_sgd(decoder.parameters(), loss_fn, self.aux_dataset,
                          self.config.decoder, sgd_rng)
        logger.info("decoder training final loss %.4f", history[-1])
        decoder.eval()
        return decoder, shadow_mean, shadow_std

    def train_decoders(self, shadow_heads: list[nn.Module],
                       rngs: list[MemberRngs] | None = None
                       ) -> list[tuple[nn.Module, np.ndarray, np.ndarray]]:
        """Fit K inversion decoders — one per trained shadow head — fused.

        The K (frozen) shadow heads and K fresh decoders stack along the
        ensemble axis; feature standardisation statistics, Gaussian input
        augmentation and batch order all stay per-member.  Falls back to K
        looped :meth:`train_decoder` runs on the same pre-spawned streams
        when stacking fails.  Returns ``(decoder, shadow_mean, shadow_std)``
        per member, exactly like :meth:`train_decoder`.
        """
        shadow_heads = list(shadow_heads)
        if not shadow_heads:
            raise ValueError("need at least one shadow head")
        k = len(shadow_heads)
        if rngs is None:
            rngs = self._spawn_member_rngs(k)
        decoders = build_decoders(self.intermediate_shape, self.image_shape,
                                  [member.decoder for member in rngs],
                                  width=self.config.decoder_width)
        try:
            stacked_heads = stack_modules(shadow_heads)
            stacked_decoders = stack_modules(decoders)
        except UnstackableError:
            logger.info("decoders not stackable; running %d looped trainings", k)
            return [self._train_decoder_impl(head, decoder, member.aug,
                                             member.decoder_sgd)
                    for head, decoder, member in zip(shadow_heads, decoders, rngs)]
        stacked_heads.train(False)
        stacked_decoders.train(True)
        aug_sigma = self.config.decoder_noise_aug
        aug_rngs = [member.aug for member in rngs]
        if self.config.standardize_features:
            means, stds = self._stacked_shadow_feature_stats(stacked_heads)
        else:
            means = np.zeros((k, *self.intermediate_shape), dtype=np.float32)
            stds = np.ones((k, *self.intermediate_shape), dtype=np.float32)
        mean_arr = means[:, None]  # (K, 1, C, h, w) against (K, B, C, h, w)
        std_arr = stds[:, None]

        def loss_fn(images, _labels):
            x = Tensor(images)
            with no_grad():
                features = stacked_heads(x)
            feature_data = (features.data - mean_arr) / (std_arr + 1e-3)
            if aug_sigma > 0:
                noise = np.stack([rng.normal(0.0, aug_sigma,
                                             size=feature_data.shape[1:])
                                  for rng in aug_rngs])
                feature_data = feature_data + noise.astype(np.float32)
            reconstruction = stacked_decoders(Tensor(feature_data.astype(np.float32)))
            return batched_mse(reconstruction, x)

        histories = run_stacked_sgd(stacked_decoders.parameters(), loss_fn,
                                    self.aux_dataset, self.config.decoder,
                                    [member.decoder_sgd for member in rngs])
        stacked_decoders.unstack_to(decoders)
        for index, history in enumerate(histories):
            logger.info("decoder %d training final loss %.4f", index, history[-1])
        for decoder in decoders:
            decoder.eval()
        return [(decoder, means[i], stds[i]) for i, decoder in enumerate(decoders)]

    def _stacked_shadow_feature_stats(self, stacked_heads: nn.Module
                                      ) -> tuple[np.ndarray, np.ndarray]:
        """Per-member element-wise mean/std maps over aux data, one fused pass."""
        outputs = []
        with no_grad():
            for start in range(0, len(self.aux_dataset), 128):
                batch = self.aux_dataset.images[start:start + 128]
                outputs.append(stacked_heads(Tensor(batch)).data)
        features = np.concatenate(outputs, axis=1)  # (K, M, C, h, w)
        return features.mean(axis=1), features.std(axis=1)

    def _attack_time_stats(self, shadow_mean: np.ndarray,
                           shadow_std: np.ndarray) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
        """Standardisation stats applied to intercepted features.

        Observed victim-traffic statistics when available, else the shadow's
        own statistics (the attacker's best guess).
        """
        if not self.config.standardize_features:
            return None, None
        if self._observed_mean is not None:
            return self._observed_mean, self._observed_std
        return shadow_mean, shadow_std

    # -- attack constructions (Section III-B) ------------------------------
    def _assemble(self, name: str, shadow_head: nn.Module,
                  details: dict[str, Any]) -> AttackArtifacts:
        decoder, shadow_mean, shadow_std = self.train_decoder(shadow_head)
        mean, std = self._attack_time_stats(shadow_mean, shadow_std)
        return AttackArtifacts(name, shadow_head, decoder,
                               input_mean=mean, input_std=std, details=details)

    def attack_single(self, body: nn.Module, index: int | None = None) -> AttackArtifacts:
        """Proposition 1 setting: shadow built from a single server net."""
        shadow_head = self.train_shadow([body])
        name = "single" if index is None else f"single[{index}]"
        return self._assemble(name, shadow_head, {"body_index": index})

    def attack_adaptive(self, bodies: list[nn.Module]) -> AttackArtifacts:
        """Proposition 2 setting: shadow trained on the entire ensemble with a
        selector-shaped (uniform) activation."""
        shadow_head = self.train_shadow(list(bodies))
        return self._assemble("adaptive", shadow_head, {"num_bodies": len(bodies)})

    def attack_subset(self, bodies: list[nn.Module], subset: tuple[int, ...]) -> AttackArtifacts:
        """Brute-force building block: shadow trained on a chosen subset."""
        chosen = [bodies[i] for i in subset]
        shadow_head = self.train_shadow(chosen)
        return self._assemble(f"subset{tuple(subset)}", shadow_head,
                              {"subset": tuple(subset)})

    # -- multi-attack orchestration (Section III-D sweeps) -----------------
    def _fusable(self, bodies: list[nn.Module]) -> bool:
        """Can this attack configuration compile to stacked trees?

        Probes the body ensemble plus throwaway shadow-head/decoder builds
        (no stream from ``self.rng`` is consumed), so a negative answer
        falls back to the looped path *before* any member RNGs are spawned —
        keeping the fallback bit-identical to ``backend="looped"``.  The
        verdict is cached per body-ensemble identity, so repeated sweeps
        (the chunked brute force) probe once.
        """
        cache_key = tuple(id(body) for body in bodies)
        cached = self._fusable_cache.get(cache_key)
        if cached is not None:
            return cached
        probe_rng = np.random.default_rng(0)
        try:
            if len(bodies) > 1:
                stack_modules(list(bodies))
            head = build_shadow_head(self.model_config, self.config.shadow_mode,
                                     probe_rng)
            stack_modules([head, head])
            decoder = build_decoder(self.intermediate_shape, self.image_shape,
                                    width=self.config.decoder_width, rng=probe_rng)
            stack_modules([decoder, decoder])
        except UnstackableError:
            self._fusable_cache[cache_key] = False
            return False
        self._fusable_cache[cache_key] = True
        return True

    def _attack_chunk_fused(self, bodies: list[nn.Module],
                            subsets: list[tuple[int, ...]], names: list[str],
                            details: list[dict[str, Any]]) -> list[AttackArtifacts]:
        """Mount one fused chunk of equally-sized subset attacks."""
        rngs = self._spawn_member_rngs(len(subsets))
        shadow_heads = self.train_shadows(bodies, subsets, rngs=rngs)
        decoder_results = self.train_decoders(shadow_heads, rngs=rngs)
        artifacts = []
        for name, detail, head, (decoder, shadow_mean, shadow_std) in zip(
                names, details, shadow_heads, decoder_results):
            mean, std = self._attack_time_stats(shadow_mean, shadow_std)
            artifacts.append(AttackArtifacts(name, head, decoder, input_mean=mean,
                                             input_std=std, details=detail))
        return artifacts

    @staticmethod
    def iter_subset_chunks(subsets: Sequence[tuple[int, ...]],
                           chunk_size: int):
        """Yield ``(start, chunk)`` runs of consecutive equally-sized subsets.

        The canonical chunking of a subset enumeration: every fused consumer
        (``attack_subsets`` itself, and callers that want to stream results
        chunk by chunk, like ``brute_force_attack``) uses this one splitter
        so chunk boundaries — and therefore RNG spawn order — never diverge.
        """
        start = 0
        while start < len(subsets):
            end = start
            while (end < len(subsets) and end - start < chunk_size
                   and len(subsets[end]) == len(subsets[start])):
                end += 1
            yield start, list(subsets[start:end])
            start = end

    def attack_subsets(self, bodies: list[nn.Module],
                       subsets: Sequence[Sequence[int]],
                       backend: str = "fused", chunk_size: int = 8,
                       names: list[str] | None = None,
                       details: list[dict[str, Any]] | None = None
                       ) -> list[AttackArtifacts]:
        """Mount K independent subset attacks, fused where possible.

        ``backend="fused"`` splits the enumeration into consecutive
        equal-size runs of at most ``chunk_size`` subsets (the fused pass
        needs one tail width per chunk; the cap bounds the K·P stacked body
        memory) and trains each chunk's shadows and decoders as one stacked
        pass.  ``backend="looped"`` is the reference per-subset loop; the
        fused path spawns per-member streams in the same order, so both
        backends consume identical randomness and the per-subset artifacts
        agree up to float reassociation in the batched kernels.
        """
        if backend not in ("fused", "looped"):
            raise ValueError("backend must be 'fused' or 'looped'")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        bodies = list(bodies)
        subsets = [tuple(int(i) for i in subset) for subset in subsets]
        if names is None:
            names = [f"subset{subset}" for subset in subsets]
        if details is None:
            details = [{"subset": subset} for subset in subsets]
        if len(names) != len(subsets) or len(details) != len(subsets):
            raise ValueError("names/details must align with subsets")
        if backend == "looped" or not self._fusable(bodies):
            artifacts = []
            for subset, name, detail in zip(subsets, names, details):
                shadow_head = self.train_shadow([bodies[i] for i in subset])
                artifacts.append(self._assemble(name, shadow_head, detail))
            return artifacts
        artifacts = []
        for start, chunk in self.iter_subset_chunks(subsets, chunk_size):
            end = start + len(chunk)
            artifacts.extend(self._attack_chunk_fused(
                bodies, chunk, names[start:end], details[start:end]))
        return artifacts

    def attack_all_single(self, bodies: list[nn.Module], backend: str = "fused",
                          chunk_size: int = 8) -> list[AttackArtifacts]:
        """Proposition 1 against every server body at once (the Table I rows).

        Equivalent to ``[attack_single(body, index=i) for i, body in ...]``
        but runs the N shadow/decoder trainings as fused stacked passes.
        """
        bodies = list(bodies)
        subsets = [(i,) for i in range(len(bodies))]
        names = [f"single[{i}]" for i in range(len(bodies))]
        details = [{"body_index": i} for i in range(len(bodies))]
        return self.attack_subsets(bodies, subsets, backend=backend,
                                   chunk_size=chunk_size, names=names,
                                   details=details)
