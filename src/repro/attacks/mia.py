"""Query-free model-inversion attack (He et al., 2019; Sections II-B, III-B).

The semi-honest server knows: the architecture, its own body weights
``M_s`` (or all N bodies ``{M_s^i}`` under Ensembler), and a dataset from the
same distribution as the private training data.  It cannot query the client.
The attack has two phases:

1. **Shadow training** — fit a shadow head ``~M_c,h`` (three convolutions per
   Section IV-A) and shadow tail ``~M_c,t`` so the pipeline through the
   *frozen, known* server bodies classifies the auxiliary data well.  If the
   shadow head converges near the client's head, its inverse transfers.
2. **Decoder training** — fit ``~M_c,h^{-1}`` to invert the shadow head by
   reconstruction on auxiliary data, then apply it to intercepted features.

Two constructions from Section III-B are provided: ``attack_single`` trains
the shadow against one chosen body; ``attack_adaptive`` trains against all N
bodies through a selector-shaped activation (uniform 1/N concatenation, since
the true selection is secret).
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro import nn
from repro.core.training import TrainingConfig, recalibrate_batchnorm, run_sgd
from repro.data.datasets import ArrayDataset
from repro.models.decoder import build_decoder
from repro.models.resnet import ResNetConfig
from repro.models.shadow import build_shadow_head, build_shadow_tail
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat, no_grad
from repro.utils.config import FrozenConfig
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class AttackConfig(FrozenConfig):
    """Budgets for the two attack phases.

    ``moment_weight`` scales the traffic moment-matching term: the semi-honest
    server observes the client's uploaded features during normal service, so
    it can align its shadow head's per-channel feature statistics with the
    observed marginal distribution.  This uses no queries (it never sees
    input/feature *pairs*) and substantially strengthens the shadow — set it
    to 0 to ablate.
    """

    shadow: TrainingConfig = TrainingConfig(epochs=3, lr=0.05)
    decoder: TrainingConfig = TrainingConfig(epochs=3, lr=3e-3, optimizer="adam")
    decoder_width: int = 32
    moment_weight: float = 10.0
    gram_weight: float = 10.0
    bn_weight: float = 5.0
    decoder_noise_aug: float = 0.1
    standardize_features: bool = True
    shadow_mode: str = "matched"  # 'matched' (victim architecture) or 'paper' (3-conv)


@dataclasses.dataclass
class AttackArtifacts:
    """What a completed attack hands to the evaluation: the trained decoder
    (plus the shadow head it inverts, for inspection).

    ``input_mean`` / ``input_std`` standardise the decoder's input; at attack
    time they are the statistics of *observed victim traffic*, which cancels
    the element-wise scale/shift mismatch between shadow and victim features.
    """

    name: str
    shadow_head: nn.Module
    decoder: nn.Module
    input_mean: np.ndarray | None = None
    input_std: np.ndarray | None = None
    details: dict[str, Any] = dataclasses.field(default_factory=dict)

    def reconstruct(self, intercepted_features: np.ndarray) -> np.ndarray:
        """Apply the inversion decoder to intercepted intermediate features."""
        self.decoder.eval()
        features = np.asarray(intercepted_features, dtype=np.float32)
        if self.input_mean is not None:
            features = (features - self.input_mean) / (self.input_std + 1e-3)
        with no_grad():
            return self.decoder(Tensor(features)).data


class InversionAttack:
    """The adversarial server's attack toolkit."""

    def __init__(
        self,
        model_config: ResNetConfig,
        image_shape: tuple[int, int, int],
        aux_dataset: ArrayDataset,
        config: AttackConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.model_config = model_config
        self.image_shape = image_shape
        self.aux_dataset = aux_dataset
        self.config = config if config is not None else AttackConfig()
        self.rng = rng if rng is not None else new_rng()
        self.intermediate_shape = model_config.intermediate_shape(image_shape[1])
        self._observed_mean: np.ndarray | None = None
        self._observed_std: np.ndarray | None = None
        self._observed_gram: np.ndarray | None = None

    def observe_traffic(self, intercepted_features: np.ndarray) -> None:
        """Record marginal statistics of intercepted client traffic.

        The server sees every uploaded feature tensor while providing the
        service; it keeps the element-wise mean and standard-deviation maps
        and the channel Gram matrix over observed uploads.  All are marginal
        statistics (never paired with inputs), so the query-free assumption
        holds.  The Gram matrix pins down channel identities, which is what
        makes the shadow head converge to the victim's representation.
        """
        features = np.asarray(intercepted_features)
        if features.ndim != 4:
            raise ValueError("expected NCHW intercepted features")
        self._observed_mean = features.mean(axis=0).astype(np.float32)
        self._observed_std = features.std(axis=0).astype(np.float32)
        n, c, h, w = features.shape
        flat = features.reshape(n, c, h * w)
        gram = np.einsum("ncl,ndl->cd", flat, flat) / (n * h * w)
        self._observed_gram = gram.astype(np.float32)

    # -- phase 1: shadow network ----------------------------------------
    def train_shadow(self, bodies: list[nn.Module]) -> nn.Module:
        """Fit a shadow head/tail against the frozen ``bodies``.

        With one body this is the standard CI shadow; with several, the
        attacker imitates the selector with a uniform 1/K concatenation.
        """
        if not bodies:
            raise ValueError("attack needs at least one server body")
        for body in bodies:
            body.requires_grad_(False)
            body.eval()
        shadow_head = build_shadow_head(self.model_config, self.config.shadow_mode,
                                        spawn_rng(self.rng))
        shadow_tail = build_shadow_tail(self.model_config, in_multiplier=len(bodies),
                                        rng=spawn_rng(self.rng))
        shadow_head.train()
        shadow_tail.train()
        scale = 1.0 / len(bodies)
        moment_weight = self.config.moment_weight
        gram_weight = self.config.gram_weight
        bn_weight = self.config.bn_weight
        use_moments = moment_weight > 0 and self._observed_mean is not None
        use_gram = gram_weight > 0 and self._observed_gram is not None
        if use_moments:
            observed_mean = Tensor(self._observed_mean)
            observed_std = Tensor(self._observed_std)
        if use_gram:
            observed_gram = Tensor(self._observed_gram)

        body_bns: list[nn.BatchNorm2d] = []
        if bn_weight > 0:
            for body in bodies:
                for module in body.modules():
                    if isinstance(module, nn.BatchNorm2d):
                        module.record_batch_stats = True
                        body_bns.append(module)

        def loss_fn(images, labels):
            features = shadow_head(Tensor(images))
            outputs = [body(features) * scale for body in bodies]
            logits = shadow_tail(concat(outputs, axis=1))
            loss = F.cross_entropy(logits, labels)
            if use_moments:
                mean = features.mean(axis=0)
                std = (features.var(axis=0) + 1e-6).sqrt()
                moment_gap = (((mean - observed_mean) ** 2).mean()
                              + ((std - observed_std) ** 2).mean())
                loss = loss + moment_weight * moment_gap
            if use_gram:
                n, c, h, w = features.shape
                flat = features.reshape(n, c, h * w)
                gram = (flat @ flat.transpose(0, 2, 1)).sum(axis=0) / (n * h * w)
                loss = loss + gram_weight * ((gram - observed_gram) ** 2).mean()
            if body_bns:
                # DeepInversion-style prior: the frozen bodies' BatchNorm
                # running statistics describe the activations the victim's
                # head produced; a matching shadow reproduces them.
                gaps = []
                for bn in body_bns:
                    batch_mean, batch_var = bn.recorded_stats
                    gaps.append(((batch_mean - Tensor(bn.running_mean)) ** 2).mean()
                                + ((batch_var - Tensor(bn.running_var)) ** 2).mean())
                loss = loss + bn_weight * nn.stack(gaps).mean()
            return loss

        params = shadow_head.parameters() + shadow_tail.parameters()
        try:
            history = run_sgd(params, loss_fn, self.aux_dataset, self.config.shadow,
                              spawn_rng(self.rng))
        finally:
            for bn in body_bns:
                bn.record_batch_stats = False
                bn.recorded_stats = None
        recalibrate_batchnorm([shadow_head],
                              lambda images: shadow_head(Tensor(images)),
                              self.aux_dataset.images, self.config.shadow.batch_size)
        logger.info("shadow training final loss %.4f", history[-1])
        shadow_head.eval()
        return shadow_head

    # -- phase 2: inversion decoder ---------------------------------------
    def _shadow_feature_stats(self, shadow_head: nn.Module) -> tuple[np.ndarray, np.ndarray]:
        """Element-wise mean/std maps of the shadow features over aux data."""
        shadow_head.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(self.aux_dataset), 128):
                batch = self.aux_dataset.images[start:start + 128]
                outputs.append(shadow_head(Tensor(batch)).data)
        features = np.concatenate(outputs)
        return features.mean(axis=0), features.std(axis=0)

    def train_decoder(self, shadow_head: nn.Module) -> tuple[nn.Module, np.ndarray, np.ndarray]:
        """Fit ``~M_c,h^{-1}``: reconstruct aux images from shadow features.

        Two transfer aids are applied: (1) the decoder input is standardised
        element-wise — at training time with shadow-feature statistics, at
        attack time with observed-traffic statistics — cancelling the
        first-order mismatch between shadow and victim features; (2) Gaussian
        input augmentation makes the decoder a denoising inverse, widening
        its basin so residual mismatch (and the victim's additive noise) do
        not break it.  Returns the decoder and the shadow stats.
        """
        decoder = build_decoder(self.intermediate_shape, self.image_shape,
                                width=self.config.decoder_width, rng=spawn_rng(self.rng))
        shadow_head.eval()
        decoder.train()
        aug_sigma = self.config.decoder_noise_aug
        aug_rng = spawn_rng(self.rng)
        if self.config.standardize_features:
            shadow_mean, shadow_std = self._shadow_feature_stats(shadow_head)
        else:
            shadow_mean = np.zeros(self.intermediate_shape, dtype=np.float32)
            shadow_std = np.ones(self.intermediate_shape, dtype=np.float32)

        def loss_fn(images, _labels):
            x = Tensor(images)
            with no_grad():
                features = shadow_head(x)
            feature_data = (features.data - shadow_mean) / (shadow_std + 1e-3)
            if aug_sigma > 0:
                feature_data = feature_data + aug_rng.normal(
                    0.0, aug_sigma, size=feature_data.shape).astype(np.float32)
            reconstruction = decoder(Tensor(feature_data.astype(np.float32)))
            return F.mse_loss(reconstruction, x)

        history = run_sgd(decoder.parameters(), loss_fn, self.aux_dataset,
                          self.config.decoder, spawn_rng(self.rng))
        logger.info("decoder training final loss %.4f", history[-1])
        decoder.eval()
        return decoder, shadow_mean, shadow_std

    def _attack_time_stats(self, shadow_mean: np.ndarray,
                           shadow_std: np.ndarray) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
        """Standardisation stats applied to intercepted features.

        Observed victim-traffic statistics when available, else the shadow's
        own statistics (the attacker's best guess).
        """
        if not self.config.standardize_features:
            return None, None
        if self._observed_mean is not None:
            return self._observed_mean, self._observed_std
        return shadow_mean, shadow_std

    # -- attack constructions (Section III-B) ------------------------------
    def _assemble(self, name: str, shadow_head: nn.Module,
                  details: dict[str, Any]) -> AttackArtifacts:
        decoder, shadow_mean, shadow_std = self.train_decoder(shadow_head)
        mean, std = self._attack_time_stats(shadow_mean, shadow_std)
        return AttackArtifacts(name, shadow_head, decoder,
                               input_mean=mean, input_std=std, details=details)

    def attack_single(self, body: nn.Module, index: int | None = None) -> AttackArtifacts:
        """Proposition 1 setting: shadow built from a single server net."""
        shadow_head = self.train_shadow([body])
        name = "single" if index is None else f"single[{index}]"
        return self._assemble(name, shadow_head, {"body_index": index})

    def attack_adaptive(self, bodies: list[nn.Module]) -> AttackArtifacts:
        """Proposition 2 setting: shadow trained on the entire ensemble with a
        selector-shaped (uniform) activation."""
        shadow_head = self.train_shadow(list(bodies))
        return self._assemble("adaptive", shadow_head, {"num_bodies": len(bodies)})

    def attack_subset(self, bodies: list[nn.Module], subset: tuple[int, ...]) -> AttackArtifacts:
        """Brute-force building block: shadow trained on a chosen subset."""
        chosen = [bodies[i] for i in subset]
        shadow_head = self.train_shadow(chosen)
        return self._assemble(f"subset{tuple(subset)}", shadow_head,
                              {"subset": tuple(subset)})
