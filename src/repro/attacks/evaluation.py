"""Attack evaluation: reconstruction quality against a fitted defense.

Produces the SSIM / PSNR numbers of Tables I and II.  For the single-net
attack the paper reports the *strongest* reconstruction over the N server
nets — separately for SSIM and PSNR ("Ours - SSIM" / "Ours - PSNR" rows);
``best_single_net`` implements exactly that reduction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.mia import AttackArtifacts, InversionAttack
from repro.defenses.base import FittedDefense
from repro.metrics import batch_psnr, batch_ssim


@dataclasses.dataclass(frozen=True)
class ReconstructionMetrics:
    """Reconstruction quality of one attack against one defense."""

    attack_name: str
    ssim: float
    psnr: float

    def stronger_than(self, other: "ReconstructionMetrics") -> bool:
        """Strictly better reconstruction on both metrics."""
        return self.ssim > other.ssim and self.psnr > other.psnr


def evaluate_reconstruction(
    defense: FittedDefense,
    artifacts: AttackArtifacts,
    probe_images: np.ndarray,
) -> ReconstructionMetrics:
    """Reconstruct the victim's probe inputs from intercepted features.

    The attacker sees exactly what crosses the wire — ``defense.intermediate``
    (head output plus the client's secret noise) — and inverts it.
    """
    intercepted = defense.intermediate(probe_images)
    reconstructions = artifacts.reconstruct(intercepted)
    return ReconstructionMetrics(
        attack_name=artifacts.name,
        ssim=batch_ssim(probe_images.astype(np.float64), reconstructions.astype(np.float64)),
        psnr=batch_psnr(probe_images.astype(np.float64), reconstructions.astype(np.float64)),
    )


def observe_victim_traffic(
    defense: FittedDefense,
    attack: InversionAttack,
    traffic_images: np.ndarray,
) -> None:
    """Let the server record the features the victim uploads while being
    served — the marginal statistics the moment-matching shadow loss uses."""
    attack.observe_traffic(defense.intermediate(traffic_images))


def run_single_net_attacks(
    defense: FittedDefense,
    attack: InversionAttack,
    probe_images: np.ndarray,
    traffic_images: np.ndarray | None = None,
    backend: str = "fused",
) -> list[ReconstructionMetrics]:
    """Mount the Proposition-1 attack against every server body separately.

    ``backend="fused"`` trains the N shadow/decoder pairs as stacked passes
    through the multi-attack engine; ``backend="looped"`` runs the reference
    one-training-per-body loop on the same RNG streams.
    """
    if traffic_images is not None:
        observe_victim_traffic(defense, attack, traffic_images)
    artifacts_list = attack.attack_all_single(list(defense.bodies), backend=backend)
    return [evaluate_reconstruction(defense, artifacts, probe_images)
            for artifacts in artifacts_list]


def run_adaptive_attack(
    defense: FittedDefense,
    attack: InversionAttack,
    probe_images: np.ndarray,
    traffic_images: np.ndarray | None = None,
) -> ReconstructionMetrics:
    """Mount the Proposition-2 attack using all deployed bodies."""
    if traffic_images is not None:
        observe_victim_traffic(defense, attack, traffic_images)
    artifacts = attack.attack_adaptive(list(defense.bodies))
    return evaluate_reconstruction(defense, artifacts, probe_images)


def best_single_net(results: list[ReconstructionMetrics],
                    metric: str) -> ReconstructionMetrics:
    """The paper's reduction: strongest attack (worst defense) per metric."""
    if not results:
        raise ValueError("no attack results to reduce")
    if metric not in ("ssim", "psnr"):
        raise ValueError("metric must be 'ssim' or 'psnr'")
    return max(results, key=lambda r: getattr(r, metric))
