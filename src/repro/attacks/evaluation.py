"""Attack evaluation: reconstruction quality against a fitted defense.

Produces the SSIM / PSNR numbers of Tables I and II.  For the single-net
attack the paper reports the *strongest* reconstruction over the N server
nets — separately for SSIM and PSNR ("Ours - SSIM" / "Ours - PSNR" rows);
``best_single_net`` implements exactly that reduction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attacks.mia import AttackArtifacts, InversionAttack
from repro.defenses.base import FittedDefense
from repro.metrics import batch_psnr, batch_ssim


@dataclasses.dataclass(frozen=True)
class ReconstructionMetrics:
    """Reconstruction quality of one attack against one defense."""

    attack_name: str
    ssim: float
    psnr: float

    def stronger_than(self, other: "ReconstructionMetrics") -> bool:
        """Strictly better reconstruction on both metrics."""
        return self.ssim > other.ssim and self.psnr > other.psnr


def evaluate_reconstruction(
    defense: FittedDefense,
    artifacts: AttackArtifacts,
    probe_images: np.ndarray,
) -> ReconstructionMetrics:
    """Reconstruct the victim's probe inputs from intercepted features.

    The attacker sees exactly what crosses the wire — ``defense.intermediate``
    (head output plus the client's secret noise) — and inverts it.
    """
    intercepted = defense.intermediate(probe_images)
    reconstructions = artifacts.reconstruct(intercepted)
    return ReconstructionMetrics(
        attack_name=artifacts.name,
        ssim=batch_ssim(probe_images.astype(np.float64), reconstructions.astype(np.float64)),
        psnr=batch_psnr(probe_images.astype(np.float64), reconstructions.astype(np.float64)),
    )


def observe_victim_traffic(
    defense: FittedDefense,
    attack: InversionAttack,
    traffic_images: np.ndarray,
) -> None:
    """Let the server record the features the victim uploads while being
    served — the marginal statistics the moment-matching shadow loss uses."""
    attack.observe_traffic(defense.intermediate(traffic_images))


def run_single_net_attacks(
    defense: FittedDefense,
    attack: InversionAttack,
    probe_images: np.ndarray,
    traffic_images: np.ndarray | None = None,
    backend: str = "fused",
) -> list[ReconstructionMetrics]:
    """Mount the Proposition-1 attack against every server body separately.

    ``backend="fused"`` trains the N shadow/decoder pairs as stacked passes
    through the multi-attack engine; ``backend="looped"`` runs the reference
    one-training-per-body loop on the same RNG streams.
    """
    if traffic_images is not None:
        observe_victim_traffic(defense, attack, traffic_images)
    artifacts_list = attack.attack_all_single(list(defense.bodies), backend=backend)
    return [evaluate_reconstruction(defense, artifacts, probe_images)
            for artifacts in artifacts_list]


def run_adaptive_attack(
    defense: FittedDefense,
    attack: InversionAttack,
    probe_images: np.ndarray,
    traffic_images: np.ndarray | None = None,
) -> ReconstructionMetrics:
    """Mount the Proposition-2 attack using all deployed bodies."""
    if traffic_images is not None:
        observe_victim_traffic(defense, attack, traffic_images)
    artifacts = attack.attack_adaptive(list(defense.bodies))
    return evaluate_reconstruction(defense, artifacts, probe_images)


def best_single_net(results: list[ReconstructionMetrics],
                    metric: str) -> ReconstructionMetrics:
    """The paper's reduction: strongest attack (worst defense) per metric."""
    if not results:
        raise ValueError("no attack results to reduce")
    if metric not in ("ssim", "psnr"):
        raise ValueError("metric must be 'ssim' or 'psnr'")
    return max(results, key=lambda r: getattr(r, metric))


def selected_aggregate(outputs, selector) -> np.ndarray:
    """Eq. 1 over raw downlink arrays: scale the subset by 1/P and concat.

    ``outputs`` are the N per-body feature maps of one response (plain
    ``np.ndarray``, channels on axis 1), ``selector`` the subset applied.
    This is the adversary-side mirror of what the client's tail consumes
    — used by the subset-leak analysis below, where the adversary holds a
    *candidate* subset rather than the client's true one.
    """
    scale = 1.0 / selector.num_active
    return np.concatenate([np.asarray(outputs[i]) * scale
                           for i in selector.indices], axis=1)


def _global_ssim(x: np.ndarray, y: np.ndarray, data_range: float) -> float:
    """SSIM with a single window spanning the whole signal.

    The windowed estimator needs spatial extent; globally-pooled feature
    *vectors* (the common tail input of ResNet-style bodies) have none,
    so their structural similarity is the SSIM index computed once over
    all elements — identical inputs score exactly 1.0, and the usual
    luminance/contrast/structure constants (k1=0.01, k2=0.03) apply.
    """
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mx, my = x.mean(), y.mean()
    vx, vy = x.var(), y.var()
    cov = ((x - mx) * (y - my)).mean()
    return float((2 * mx * my + c1) * (2 * cov + c2)
                 / ((mx * mx + my * my + c1) * (vx + vy + c2)))


def subset_leak_ssim(responses, true_selectors, leaked_selector,
                     win_size: int = 3) -> float:
    """How useful a once-leaked subset stays against later traffic.

    The switching-ensembles threat model: an adversary learned the
    client's secret subset once (side channel, brute-force hit) and now
    decodes every subsequent downlink with that *stale* subset.  For each
    response ``t`` the prediction is ``Sel_leaked(downlink_t)`` and the
    truth ``Sel_{S_t}(downlink_t)`` — under a static selector the two are
    identical (SSIM 1.0); under rotation they align only on the
    overlapping channels, so the score drops toward the subset overlap.

    Spatial (NCHW) aggregates score with the windowed
    :func:`~repro.metrics.batch_ssim`; globally-pooled feature vectors
    (no spatial extent to slide a window over) fall back to the
    single-window global SSIM index.

    Args:
        responses: per-query lists of the N downlink feature maps.
        true_selectors: the client's subset in force at each query.
        leaked_selector: the stale subset the adversary decodes with.
        win_size: SSIM window (3 suits small representation maps).

    Returns:
        Mean SSIM between predicted and true tail inputs across queries.
    """
    if len(responses) != len(true_selectors):
        raise ValueError(f"{len(responses)} responses vs "
                         f"{len(true_selectors)} selectors")
    if not responses:
        raise ValueError("no responses to score")
    scores = []
    for outputs, true_selector in zip(responses, true_selectors):
        truth = selected_aggregate(outputs, true_selector).astype(np.float64)
        guess = selected_aggregate(outputs, leaked_selector).astype(np.float64)
        lo = min(truth.min(), guess.min())
        hi = max(truth.max(), guess.max())
        rng = float(hi - lo) if hi > lo else 1.0
        if truth.ndim == 4 and min(truth.shape[2:]) >= win_size:
            scores.append(batch_ssim(truth, guess, data_range=rng,
                                     win_size=win_size))
        else:
            scores.append(_global_ssim(truth, guess, data_range=rng))
    return float(np.mean(scores))
