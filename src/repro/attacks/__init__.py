"""Model-inversion attacks mounted by the semi-honest server."""

from repro.attacks.brute_force import (
    BruteForceOutcome,
    brute_force_attack,
    expected_attack_work,
)
from repro.attacks.evaluation import (
    ReconstructionMetrics,
    best_single_net,
    evaluate_reconstruction,
    run_adaptive_attack,
    run_single_net_attacks,
    selected_aggregate,
    subset_leak_ssim,
)
from repro.attacks.mia import AttackArtifacts, AttackConfig, InversionAttack, MemberRngs

__all__ = [
    "AttackArtifacts",
    "AttackConfig",
    "BruteForceOutcome",
    "InversionAttack",
    "MemberRngs",
    "ReconstructionMetrics",
    "best_single_net",
    "brute_force_attack",
    "evaluate_reconstruction",
    "expected_attack_work",
    "run_adaptive_attack",
    "run_single_net_attacks",
    "selected_aggregate",
    "subset_leak_ssim",
]
