"""Structural similarity (SSIM) — Wang et al., 2004.

This is the primary defense-quality metric of the paper (lower SSIM between
the private input and the attacker's reconstruction = better defense).  The
implementation follows the standard formulation with either a uniform 7x7
window (scikit-image default) or a Gaussian window with sigma = 1.5 (the
original paper's setting); both operate per channel and average.

The windowed statistics run as one :mod:`scipy.ndimage` filtering pass per
statistic over the whole stacked ``(N*C, H, W)`` plane batch (the filter is
size/sigma 1 along the stacking axis, so planes never bleed into each
other).  ``batch_ssim`` therefore scores an entire probe batch with five
filter calls total instead of five per image and channel — it sits on the
brute-force sweep's hot path, where it runs once per enumerated subset.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

_K1 = 0.01
_K2 = 0.03


def _filter(planes: np.ndarray, window: str, win_size: int, sigma: float) -> np.ndarray:
    """Filter a stacked (M, H, W) plane batch spatially, planes independent."""
    if window == "uniform":
        return ndimage.uniform_filter(planes, size=(1, win_size, win_size),
                                      mode="reflect")
    if window == "gaussian":
        return ndimage.gaussian_filter(planes, sigma=(0.0, sigma, sigma),
                                       truncate=3.5, mode="reflect")
    raise ValueError(f"unknown window '{window}'")


def _ssim_planes(
    reference: np.ndarray,
    candidate: np.ndarray,
    data_range: float,
    window: str,
    win_size: int,
    sigma: float,
) -> np.ndarray:
    """Per-plane mean SSIM for stacked ``(M, H, W)`` inputs, one fused pass."""
    if min(reference.shape[1:]) < win_size:
        raise ValueError("image smaller than SSIM window")
    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2
    mu_x = _filter(reference, window, win_size, sigma)
    mu_y = _filter(candidate, window, win_size, sigma)
    xx = _filter(reference * reference, window, win_size, sigma)
    yy = _filter(candidate * candidate, window, win_size, sigma)
    xy = _filter(reference * candidate, window, win_size, sigma)
    var_x = xx - mu_x * mu_x
    var_y = yy - mu_y * mu_y
    cov = xy - mu_x * mu_y
    numerator = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
    denominator = (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
    return (numerator / denominator).mean(axis=(1, 2))


def ssim(
    reference: np.ndarray,
    candidate: np.ndarray,
    data_range: float = 1.0,
    window: str = "uniform",
    win_size: int = 7,
    sigma: float = 1.5,
) -> float:
    """SSIM between two images of shape (C, H, W) or (H, W).

    Returns the mean SSIM over pixels and channels, in [-1, 1].
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    if reference.ndim == 2:
        reference = reference[None]
        candidate = candidate[None]
    if reference.ndim != 3:
        raise ValueError("expected (C, H, W) or (H, W) images")
    return float(np.mean(_ssim_planes(reference, candidate, data_range, window,
                                      win_size, sigma)))


def batch_ssim(references: np.ndarray, candidates: np.ndarray, data_range: float = 1.0,
               window: str = "uniform", win_size: int = 7, sigma: float = 1.5) -> float:
    """Mean SSIM over a batch of NCHW images (one stacked filtering pass)."""
    references = np.asarray(references, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if references.shape != candidates.shape:
        raise ValueError("batch shapes must match")
    if references.ndim != 4:
        raise ValueError("expected NCHW image batches")
    n, c, h, w = references.shape
    scores = _ssim_planes(references.reshape(n * c, h, w),
                          candidates.reshape(n * c, h, w),
                          data_range, window, win_size, sigma)
    # Every image contributes C equally-sized plane means, so the global
    # mean equals the mean of per-image SSIMs.
    return float(scores.mean())
