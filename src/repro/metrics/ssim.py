"""Structural similarity (SSIM) — Wang et al., 2004.

This is the primary defense-quality metric of the paper (lower SSIM between
the private input and the attacker's reconstruction = better defense).  The
implementation follows the standard formulation with either a uniform 7x7
window (scikit-image default) or a Gaussian window with sigma = 1.5 (the
original paper's setting); both operate per channel and average.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

_K1 = 0.01
_K2 = 0.03


def _filter(channel: np.ndarray, window: str, win_size: int, sigma: float) -> np.ndarray:
    if window == "uniform":
        return ndimage.uniform_filter(channel, size=win_size, mode="reflect")
    if window == "gaussian":
        return ndimage.gaussian_filter(channel, sigma=sigma, truncate=3.5, mode="reflect")
    raise ValueError(f"unknown window '{window}'")


def ssim(
    reference: np.ndarray,
    candidate: np.ndarray,
    data_range: float = 1.0,
    window: str = "uniform",
    win_size: int = 7,
    sigma: float = 1.5,
) -> float:
    """SSIM between two images of shape (C, H, W) or (H, W).

    Returns the mean SSIM over pixels and channels, in [-1, 1].
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    if reference.ndim == 2:
        reference = reference[None]
        candidate = candidate[None]
    if reference.ndim != 3:
        raise ValueError("expected (C, H, W) or (H, W) images")
    if min(reference.shape[1:]) < win_size:
        raise ValueError("image smaller than SSIM window")

    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2
    scores = []
    for ref_ch, cand_ch in zip(reference, candidate):
        mu_x = _filter(ref_ch, window, win_size, sigma)
        mu_y = _filter(cand_ch, window, win_size, sigma)
        xx = _filter(ref_ch * ref_ch, window, win_size, sigma)
        yy = _filter(cand_ch * cand_ch, window, win_size, sigma)
        xy = _filter(ref_ch * cand_ch, window, win_size, sigma)
        var_x = xx - mu_x * mu_x
        var_y = yy - mu_y * mu_y
        cov = xy - mu_x * mu_y
        numerator = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
        denominator = (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
        scores.append(numerator / denominator)
    return float(np.mean(scores))


def batch_ssim(references: np.ndarray, candidates: np.ndarray, **kwargs) -> float:
    """Mean SSIM over a batch of NCHW images."""
    if references.shape != candidates.shape:
        raise ValueError("batch shapes must match")
    values = [ssim(r, c, **kwargs) for r, c in zip(references, candidates)]
    return float(np.mean(values))
