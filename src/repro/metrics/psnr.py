"""Peak signal-to-noise ratio — the paper's second reconstruction metric."""

from __future__ import annotations

import numpy as np


def psnr(reference: np.ndarray, candidate: np.ndarray, data_range: float = 1.0) -> float:
    """PSNR in dB between two images (any matching shape).

    Identical images return ``inf``; lower values mean worse reconstruction
    (better defense, in the paper's reading).
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    mse = float(np.mean((reference - candidate) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / mse))


def batch_psnr(references: np.ndarray, candidates: np.ndarray, data_range: float = 1.0) -> float:
    """Mean PSNR over a batch of NCHW images (ignoring infinite entries).

    One vectorised reduction: per-image MSEs in a single pass, the dB
    conversion on the whole vector at once.
    """
    references = np.asarray(references, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if references.shape != candidates.shape:
        raise ValueError("batch shapes must match")
    diff = references - candidates
    mse = np.mean(diff * diff, axis=tuple(range(1, diff.ndim)))
    with np.errstate(divide="ignore"):
        values = 10.0 * np.log10(data_range**2 / mse)
    finite = values[np.isfinite(values)]
    return float(finite.mean()) if len(finite) else float("inf")
