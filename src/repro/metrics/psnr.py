"""Peak signal-to-noise ratio — the paper's second reconstruction metric."""

from __future__ import annotations

import numpy as np


def psnr(reference: np.ndarray, candidate: np.ndarray, data_range: float = 1.0) -> float:
    """PSNR in dB between two images (any matching shape).

    Identical images return ``inf``; lower values mean worse reconstruction
    (better defense, in the paper's reading).
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {candidate.shape}")
    mse = float(np.mean((reference - candidate) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / mse))


def batch_psnr(references: np.ndarray, candidates: np.ndarray, data_range: float = 1.0) -> float:
    """Mean PSNR over a batch of NCHW images (ignoring infinite entries)."""
    if references.shape != candidates.shape:
        raise ValueError("batch shapes must match")
    values = np.array([psnr(r, c, data_range) for r, c in zip(references, candidates)])
    finite = values[np.isfinite(values)]
    return float(finite.mean()) if len(finite) else float("inf")
