"""Classification accuracy helpers (the ΔAcc column of Tables I and II)."""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.nn.tensor import Tensor, no_grad


def accuracy(logits: np.ndarray | Tensor, labels: np.ndarray) -> float:
    """Top-1 accuracy for logits of shape (N, C)."""
    if isinstance(logits, Tensor):
        logits = logits.data
    labels = np.asarray(labels)
    if len(logits) == 0:
        raise ValueError("empty batch")
    return float((logits.argmax(axis=1) == labels).mean())


def evaluate_accuracy(predict, dataset: ArrayDataset, batch_size: int = 64) -> float:
    """Dataset accuracy of ``predict(images) -> logits`` evaluated in batches.

    ``predict`` receives float32 NCHW arrays and may return either a Tensor
    or a NumPy array of logits.
    """
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start:start + batch_size]
            labels = dataset.labels[start:start + batch_size]
            logits = predict(images)
            if isinstance(logits, Tensor):
                logits = logits.data
            correct += int((logits.argmax(axis=1) == labels).sum())
    return correct / len(dataset)


def delta_accuracy(defended: float, undefended: float) -> float:
    """ΔAcc as reported by the paper: drop relative to the unprotected model.

    Positive values mean the defense *lost* accuracy (the paper prints the
    signed change; Table I's "Single 2.15%" row is an accuracy drop).
    """
    return undefended - defended
