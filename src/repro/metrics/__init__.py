"""Evaluation metrics: SSIM, PSNR and accuracy (Tables I and II columns)."""

from repro.metrics.accuracy import accuracy, delta_accuracy, evaluate_accuracy
from repro.metrics.psnr import batch_psnr, psnr
from repro.metrics.ssim import batch_ssim, ssim

__all__ = [
    "accuracy",
    "batch_psnr",
    "batch_ssim",
    "delta_accuracy",
    "evaluate_accuracy",
    "psnr",
    "ssim",
]
