"""Reproduction of *Ensembler: Protect Collaborative Inference Privacy from
Model Inversion Attack via Selective Ensemble* (DAC 2025).

Subpackages
-----------
``repro.nn``
    Pure-NumPy autograd + neural-network substrate (replaces PyTorch).
``repro.models``
    ResNet-18 (paper scale and scaled variants), split models, decoders.
``repro.data``
    Procedural CIFAR-10/CIFAR-100/CelebA-HQ-like datasets and loaders.
``repro.metrics``
    SSIM, PSNR, accuracy — the paper's evaluation metrics.
``repro.ci``
    Collaborative-inference client/server protocol with byte accounting.
``repro.core``
    The Ensembler defense: selector, noise layers, three-stage training.
``repro.attacks``
    Query-free model-inversion attacks (single-net, adaptive, brute-force).
``repro.defenses``
    Baselines: no defense, Single, Shredder, dropout defenses.
``repro.latency``
    Analytic latency model reproducing Table III.
``repro.experiments``
    End-to-end runners regenerating every table of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
