"""Split-model abstraction for collaborative inference.

A :class:`SplitModel` is the triple ``{M_c,h, M_s, M_c,t}`` of Section II-B:
the client holds the head and the tail, the server holds the body.  The class
only organises the pieces — the wire protocol lives in :mod:`repro.ci`.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.resnet import ResNet, ResNetConfig
from repro.nn.tensor import Tensor


class SplitModel(nn.Module):
    """A network split into client head, server body and client tail."""

    def __init__(self, head: nn.Module, body: nn.Module, tail: nn.Module):
        super().__init__()
        self.head = head
        self.body = body
        self.tail = tail

    def forward(self, x: Tensor) -> Tensor:
        return self.tail(self.body(self.head(x)))

    def client_parameters(self) -> list[nn.Parameter]:
        """Parameters the client owns (head + tail)."""
        return self.head.parameters() + self.tail.parameters()

    def server_parameters(self) -> list[nn.Parameter]:
        """Parameters deployed on (and therefore known to) the server."""
        return self.body.parameters()

    def intermediate(self, x: Tensor) -> Tensor:
        """The features ``M_c,h(x)`` the client would transmit."""
        return self.head(x)

    @classmethod
    def from_resnet(cls, model: ResNet) -> "SplitModel":
        """Split a ResNet at the paper's h=1 / t=1 points."""
        return cls(model.head, model.body, model.tail)


def client_fraction_of_parameters(model: SplitModel) -> float:
    """Fraction of weights held by the client — small by design (Section I)."""
    client = sum(p.size for p in model.client_parameters())
    total = client + sum(p.size for p in model.server_parameters())
    return client / total
