"""Shadow networks for the model-inversion attacker.

Per Section IV-A, the adversarial server "constructs a shadow network
``~M_c,h`` consisting of three convolutional layers with 64 channels each,
with the first one simulating the unknown ``M_c,h``, and the other two
simulating the Gaussian noise added to the intermediate output", plus a shadow
tail ``~M_c,t`` with the same shape as the client's tail.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.resnet import ResNetConfig
from repro.nn import batched
from repro.utils.rng import new_rng


class ShadowHead(nn.Module):
    """Three-conv shadow of the client head (channels follow the target stem).

    The output passes through a final ReLU so the shadow features live in the
    same non-negative range as the victim's post-ReLU intermediate features —
    without it the inversion decoder trains on a signed distribution and does
    not transfer to intercepted traffic.
    """

    def __init__(self, config: ResNetConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else new_rng()
        channels = config.stem_channels
        self.conv1 = nn.Conv2d(config.in_channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.pool = nn.MaxPool2d(2) if config.use_maxpool else nn.Identity()
        # Two extra convs absorb the (unknown) additive noise transformation.
        self.conv2 = nn.Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.conv3 = nn.Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(channels)

    def forward(self, x):
        out = self.pool(self.bn1(self.conv1(x)).relu())
        out = self.bn2(self.conv2(out)).relu()
        return self.bn3(self.conv3(out)).relu()


@batched.register_stacker(ShadowHead)
class StackedShadowHead(batched.StackedModule):
    """K paper-mode shadow heads executed as one fused pass.

    Lets the multi-attack engine (``InversionAttack.train_shadows``) fuse
    ``shadow_mode='paper'`` heads exactly like the matched
    :class:`~repro.models.resnet.ResNetHead` ones.
    """

    def __init__(self, heads: list[ShadowHead]):
        super().__init__()
        self.num_stacked = len(heads)
        self.conv1 = batched.stack_modules([h.conv1 for h in heads])
        self.bn1 = batched.stack_modules([h.bn1 for h in heads])
        self.pool = batched.stack_modules([h.pool for h in heads])
        self.conv2 = batched.stack_modules([h.conv2 for h in heads])
        self.bn2 = batched.stack_modules([h.bn2 for h in heads])
        self.conv3 = batched.stack_modules([h.conv3 for h in heads])
        self.bn3 = batched.stack_modules([h.bn3 for h in heads])

    def forward(self, x):
        out = self.pool(self.bn1(self.conv1(x)).relu())
        out = self.bn2(self.conv2(out)).relu()
        return self.bn3(self.conv3(out)).relu()


def build_shadow_tail(config: ResNetConfig, in_multiplier: int = 1,
                      rng: np.random.Generator | None = None) -> nn.Module:
    """Shadow tail with the same shape as the client tail ``M_c,t``."""
    rng = rng if rng is not None else new_rng()
    return nn.Linear(config.feature_dim * in_multiplier, config.num_classes, rng=rng)


def build_shadow_head(config: ResNetConfig, mode: str = "matched",
                      rng: np.random.Generator | None = None) -> nn.Module:
    """Build the attacker's shadow head.

    ``mode='paper'`` is the three-conv construction quoted in Section IV-A
    (extra capacity to absorb the victim's noise layer); ``mode='matched'``
    replicates the victim's exact head architecture — the attacker knows the
    architecture under the threat model, and the matched shadow aligns
    better when the victim adds little or no noise.
    """
    from repro.models.resnet import ResNetHead

    rng = rng if rng is not None else new_rng()
    if mode == "paper":
        return ShadowHead(config, rng=rng)
    if mode == "matched":
        return ResNetHead(config, rng=rng)
    raise ValueError(f"unknown shadow mode '{mode}'")
