"""Inversion decoders ``M_c,h^{-1}``.

The attacker trains a decoder that maps intermediate features back to the
input image (Dosovitskiy & Brox, 2016; He et al., 2019).  The decoder mirrors
the head: convolutional refinement at feature resolution, transposed-conv /
nearest-neighbour upsampling back to image resolution, and a sigmoid so the
output lives in the image range [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import new_rng


def _upsample_block(in_channels: int, out_channels: int, rng: np.random.Generator,
                    use_transposed: bool) -> list[nn.Module]:
    if use_transposed:
        return [
            nn.ConvTranspose2d(in_channels, out_channels, 4, stride=2, padding=1, rng=rng),
            nn.ReLU(),
        ]
    return [
        nn.UpsampleNearest2d(2),
        nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng),
        nn.ReLU(),
    ]


def build_decoder(feature_shape: tuple[int, int, int], image_shape: tuple[int, int, int],
                  width: int = 32, use_transposed: bool = True,
                  rng: np.random.Generator | None = None) -> nn.Sequential:
    """Build a decoder from ``feature_shape`` (C,H,W) to ``image_shape`` (C,H,W).

    The spatial upsampling factor must be a power of two (it is 1 or 2 for
    every split in the paper: the head either keeps resolution or max-pools
    once).
    """
    rng = rng if rng is not None else new_rng()
    feat_c, feat_h, feat_w = feature_shape
    img_c, img_h, img_w = image_shape
    if feat_h <= 0 or img_h % feat_h != 0:
        raise ValueError(f"image size {img_h} must be a multiple of feature size {feat_h}")
    factor = img_h // feat_h
    if factor & (factor - 1):
        raise ValueError(f"upsampling factor {factor} must be a power of two")
    if img_w // feat_w != factor:
        raise ValueError("anisotropic upsampling is not supported")

    layers: list[nn.Module] = [
        nn.Conv2d(feat_c, width, 3, padding=1, rng=rng),
        nn.ReLU(),
    ]
    channels = width
    while factor > 1:
        layers.extend(_upsample_block(channels, width, rng, use_transposed))
        factor //= 2
    layers.extend([
        nn.Conv2d(width, width, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(width, img_c, 3, padding=1, rng=rng),
        nn.Sigmoid(),
    ])
    return nn.Sequential(*layers)


def build_decoders(feature_shape: tuple[int, int, int], image_shape: tuple[int, int, int],
                   rngs: list[np.random.Generator], width: int = 32,
                   use_transposed: bool = True) -> list[nn.Sequential]:
    """K architecturally identical decoders with independent init streams.

    Every layer type in the tree (``Conv2d``, ``ConvTranspose2d``,
    ``UpsampleNearest2d``, ``ReLU``, ``Sigmoid``) has a registered stacker,
    so the members compile through :func:`repro.nn.batched.stack_modules`
    and the multi-attack engine trains all K as one fused pass.
    """
    return [build_decoder(feature_shape, image_shape, width=width,
                          use_transposed=use_transposed, rng=rng) for rng in rngs]
