"""ResNet family used throughout the paper (He et al., 2016).

The paper runs ResNet-18 with the CIFAR-style stem: a single 3x3 convolution
(this is the one layer the client keeps, ``h = 1``), an optional max-pool
(present for CIFAR-10, removed for CIFAR-100 and CelebA-HQ so the intermediate
feature map matches the sizes quoted in Section IV-A), four residual stages,
global average pooling, and one fully-connected layer (the client's tail,
``t = 1``).

``ResNetConfig`` exposes width/depth so the same topology runs at paper scale
(ResNet-18, width 64) or at CPU-friendly scale for tests and benchmarks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import nn
from repro.nn import batched
from repro.nn.tensor import Tensor
from repro.utils.config import FrozenConfig
from repro.utils.rng import new_rng, spawn_rng


@dataclasses.dataclass(frozen=True)
class ResNetConfig(FrozenConfig):
    """Architecture hyper-parameters for :class:`ResNet`.

    ``stem_channels`` is the channel count of the client's single head
    convolution; the paper uses 64 for every dataset.  ``use_maxpool``
    controls the stem max-pool (True for CIFAR-10, False for CIFAR-100 /
    CelebA-HQ per Section IV-A).
    """

    num_classes: int = 10
    in_channels: int = 3
    stem_channels: int = 64
    stage_channels: tuple[int, ...] = (64, 128, 256, 512)
    blocks_per_stage: tuple[int, ...] = (2, 2, 2, 2)
    use_maxpool: bool = True

    def __post_init__(self):
        if len(self.stage_channels) != len(self.blocks_per_stage):
            raise ValueError("stage_channels and blocks_per_stage must align")
        if self.num_classes < 2:
            raise ValueError("need at least two classes")

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the pooled feature handed to the tail FC."""
        return self.stage_channels[-1]

    def intermediate_shape(self, image_hw: int) -> tuple[int, int, int]:
        """Shape (C, H, W) of the head output for a square input image."""
        spatial = image_hw // 2 if self.use_maxpool else image_hw
        return (self.stem_channels, spatial, spatial)


class BasicBlock(nn.Module):
    """Standard two-conv residual block with identity or projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                               bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                               bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


def _make_stage(in_channels: int, out_channels: int, blocks: int, stride: int,
                rng: np.random.Generator) -> nn.Sequential:
    layers = [BasicBlock(in_channels, out_channels, stride, rng)]
    for _ in range(blocks - 1):
        layers.append(BasicBlock(out_channels, out_channels, 1, rng))
    return nn.Sequential(*layers)


class ResNetHead(nn.Module):
    """The client's head ``M_c,h``: one 3x3 conv (+BN/ReLU and optional pool).

    This is the private layer the model-inversion attacker tries to emulate.
    """

    def __init__(self, config: ResNetConfig, rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(config.in_channels, config.stem_channels, 3, stride=1,
                              padding=1, bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(config.stem_channels)
        self.pool = nn.MaxPool2d(2) if config.use_maxpool else nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.bn(self.conv(x)).relu())


class ResNetBody(nn.Module):
    """The server's body ``M_s``: residual stages plus global average pooling."""

    def __init__(self, config: ResNetConfig, rng: np.random.Generator):
        super().__init__()
        stages = []
        in_channels = config.stem_channels
        for index, (channels, blocks) in enumerate(
                zip(config.stage_channels, config.blocks_per_stage)):
            stride = 1 if index == 0 else 2
            stages.append(_make_stage(in_channels, channels, blocks, stride, rng))
            in_channels = channels
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.stages(x))


class ResNetTail(nn.Module):
    """The client's tail ``M_c,t``: the final fully-connected classifier.

    ``in_multiplier`` widens the input for Ensembler, whose selector
    concatenates P normalised feature vectors (Eq. 1).
    """

    def __init__(self, config: ResNetConfig, rng: np.random.Generator,
                 in_multiplier: int = 1):
        super().__init__()
        self.fc = nn.Linear(config.feature_dim * in_multiplier, config.num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(x)


class ResNet(nn.Module):
    """Full classification network ``M = {M_c,h, M_s, M_c,t}``."""

    def __init__(self, config: ResNetConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else new_rng()
        self.config = config
        self.head = ResNetHead(config, spawn_rng(rng))
        self.body = ResNetBody(config, spawn_rng(rng))
        self.tail = ResNetTail(config, spawn_rng(rng))

    def forward(self, x: Tensor) -> Tensor:
        return self.tail(self.body(self.head(x)))


# ----------------------------------------------------------------------
# Batched-ensemble stackers: let N identical ResNets (or their pieces) run
# as one fused pass through repro.nn.batched.StackedBodies.
# ----------------------------------------------------------------------


@batched.register_stacker(BasicBlock)
class StackedBasicBlock(batched.StackedModule):
    """E residual blocks executed as one fused pass (same dataflow as
    :class:`BasicBlock`, with the shortcut broadcasting over the ensemble
    axis when the input is still shared)."""

    #: residual add + relu are spatially pointwise, so padding safety
    #: (speculative canvas batching) delegates to the children.
    pointwise_composite = True

    def __init__(self, blocks: list[BasicBlock]):
        super().__init__()
        self.num_stacked = len(blocks)
        self.conv1 = batched.stack_modules([b.conv1 for b in blocks])
        self.bn1 = batched.stack_modules([b.bn1 for b in blocks])
        self.conv2 = batched.stack_modules([b.conv2 for b in blocks])
        self.bn2 = batched.stack_modules([b.bn2 for b in blocks])
        self.shortcut = batched.stack_modules([b.shortcut for b in blocks])

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


@batched.register_stacker(ResNetHead)
class StackedResNetHead(batched.StackedModule):
    def __init__(self, heads: list[ResNetHead]):
        super().__init__()
        self.num_stacked = len(heads)
        self.conv = batched.stack_modules([h.conv for h in heads])
        self.bn = batched.stack_modules([h.bn for h in heads])
        self.pool = batched.stack_modules([h.pool for h in heads])

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.bn(self.conv(x)).relu())


@batched.register_stacker(ResNetBody)
class StackedResNetBody(batched.StackedModule):
    def __init__(self, bodies: list[ResNetBody]):
        super().__init__()
        self.num_stacked = len(bodies)
        self.stages = batched.stack_modules([b.stages for b in bodies])
        self.pool = batched.stack_modules([b.pool for b in bodies])

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.stages(x))


@batched.register_stacker(ResNetTail)
class StackedResNetTail(batched.StackedModule):
    def __init__(self, tails: list[ResNetTail]):
        super().__init__()
        self.num_stacked = len(tails)
        self.fc = batched.stack_modules([t.fc for t in tails])

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(x)


@batched.register_stacker(ResNet)
class StackedResNet(batched.StackedModule):
    """E complete networks fused end to end (stage-1 BN recalibration runs
    all N replays as one pass through this)."""

    def __init__(self, models: list["ResNet"]):
        super().__init__()
        self.num_stacked = len(models)
        self.head = batched.stack_modules([m.head for m in models])
        self.body = batched.stack_modules([m.body for m in models])
        self.tail = batched.stack_modules([m.tail for m in models])

    def forward(self, x: Tensor) -> Tensor:
        return self.tail(self.body(self.head(x)))


def resnet18(num_classes: int = 10, use_maxpool: bool = True,
             rng: np.random.Generator | None = None) -> ResNet:
    """Paper-scale ResNet-18 (width 64, 2-2-2-2 blocks)."""
    config = ResNetConfig(num_classes=num_classes, use_maxpool=use_maxpool)
    return ResNet(config, rng=rng)


def resnet10(num_classes: int = 10, width: int = 16, use_maxpool: bool = True,
             rng: np.random.Generator | None = None) -> ResNet:
    """Reduced ResNet (1-1-1-1 blocks) for benchmark-scale experiments."""
    config = ResNetConfig(
        num_classes=num_classes,
        stem_channels=width,
        stage_channels=(width, 2 * width, 4 * width, 8 * width),
        blocks_per_stage=(1, 1, 1, 1),
        use_maxpool=use_maxpool,
    )
    return ResNet(config, rng=rng)


def resnet8(num_classes: int = 10, width: int = 8, use_maxpool: bool = True,
            rng: np.random.Generator | None = None) -> ResNet:
    """Minimal two-stage ResNet used by the unit tests."""
    config = ResNetConfig(
        num_classes=num_classes,
        stem_channels=width,
        stage_channels=(width, 2 * width),
        blocks_per_stage=(1, 1),
        use_maxpool=use_maxpool,
    )
    return ResNet(config, rng=rng)
