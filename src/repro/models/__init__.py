"""Model zoo: ResNets, split models, inversion decoders and shadow networks."""

from repro.models.decoder import build_decoder
from repro.models.resnet import (
    BasicBlock,
    ResNet,
    ResNetBody,
    ResNetConfig,
    ResNetHead,
    ResNetTail,
    resnet8,
    resnet10,
    resnet18,
)
from repro.models.shadow import ShadowHead, build_shadow_tail
from repro.models.split import SplitModel, client_fraction_of_parameters

__all__ = [
    "BasicBlock",
    "ResNet",
    "ResNetBody",
    "ResNetConfig",
    "ResNetHead",
    "ResNetTail",
    "ShadowHead",
    "SplitModel",
    "build_decoder",
    "build_shadow_tail",
    "client_fraction_of_parameters",
    "resnet8",
    "resnet10",
    "resnet18",
]
