"""Switching-ensemble selector rotation (Izmailov et al.).

Ensembler's secrecy rests on the client's P-of-N selector; a server-side
adversary who ever learns the subset — a side channel, a compromised
client build, one lucky brute-force hit — can decode the client's
effective representation for every subsequent query.  *Rotation* caps
that exposure: the session re-draws its secret subset mid-stream (same
P-of-N arity, so the tail keeps its input shape), and a leaked subset
goes stale at the next re-draw.

Three :class:`RotationPolicy` modes:

* ``per_query`` — re-draw every ``queries_per_rotation`` served queries
  (1 = a fresh subset for every response);
* ``per_epoch`` — re-draw once per incarnation epoch (each checkpoint
  restore / failover bumps the epoch and rotates);
* ``budget`` — re-draw each time the session's
  :class:`~repro.privacy.budget.PrivacyBudget` crosses another
  ``budget_step`` fraction of depletion.

Seed isolation
--------------
Every draw — the subset itself and the budget ladder's extra noise — is
seeded from ``(session_id, epoch, rotation_index, stream)`` via
:func:`derive_rng`, mirroring the retry-jitter fix: seeding by session
id alone would make every restored incarnation of a session replay its
predecessor's rotation sequence, handing an adversary who observed one
incarnation the next one's secrets for free.  The epoch term breaks that
replay; the rotation index sequences draws within an incarnation; the
stream tag decorrelates subset draws from noise draws.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.selector import Selector

#: RNG stream tags: subset re-draws and ladder noise must not share a
#: stream, or the noise draws would be predictable from an observed
#: rotation (and vice versa).
STREAM_ROTATION = 0
STREAM_NOISE = 1

#: The recognised :class:`RotationPolicy` modes.
ROTATION_MODES = ("per_query", "per_epoch", "budget")


def derive_rng(session_id: int, epoch: int, rotation_index: int,
               stream: int = STREAM_ROTATION) -> np.random.Generator:
    """The deterministic RNG for one (incarnation, rotation, stream) cell.

    Seeded from the full ``(session_id, epoch, rotation_index, stream)``
    tuple so restored incarnations (higher epoch) never replay their
    predecessor's draws, and distinct streams never correlate.
    """
    return np.random.default_rng(
        [int(session_id), int(epoch), int(rotation_index), int(stream)])


@dataclasses.dataclass(frozen=True)
class RotationPolicy:
    """When a session re-draws its secret selector subset.

    ``queries_per_rotation`` applies to ``per_query`` mode;
    ``budget_step`` to ``budget`` mode (re-draw each time another
    ``budget_step`` fraction of the privacy budget is spent).
    """

    mode: str = "per_query"
    queries_per_rotation: int = 1
    budget_step: float = 0.25

    def __post_init__(self):
        if self.mode not in ROTATION_MODES:
            raise ValueError(f"unknown rotation mode {self.mode!r}; choose "
                             f"from {ROTATION_MODES}")
        if self.queries_per_rotation < 1:
            raise ValueError("queries_per_rotation must be >= 1")
        if not 0.0 < self.budget_step <= 1.0:
            raise ValueError(f"budget_step must be in (0, 1], got "
                             f"{self.budget_step}")

    @classmethod
    def parse(cls, value: "RotationPolicy | str | None"
              ) -> "RotationPolicy | None":
        """Coerce a user-facing spec to a :class:`RotationPolicy`.

        Args:
            value: ``None`` (static selector), a ready policy, or a bare
                mode name from :data:`ROTATION_MODES`.

        Returns:
            The parsed policy, or ``None`` for the static spec.
        """
        if value is None or isinstance(value, cls):
            return value
        return cls(mode=str(value))


class SelectorRotator:
    """Mutable per-session rotation state driving one session's re-draws.

    Owned by the :class:`~repro.serving.session.Session`; the service's
    tick loop calls :meth:`maybe_rotate` immediately before delivering
    each response, so a served query is always consumed under the subset
    in force at its own serve time.  ``rotation_index`` is the only
    checkpointed field (alongside the budget, in the checkpoint's
    privacy block); the policy itself is deployment config.
    """

    def __init__(self, policy: RotationPolicy, session_id: int,
                 epoch: int = 0):
        self.policy = policy
        self.session_id = int(session_id)
        self.epoch = int(epoch)
        self.rotation_index = 0     # checkpointed draw counter
        self.queries_served = 0     # per_query trigger state
        self.budget_marks = 0       # budget-mode steps already consumed
        self.rotations = 0          # lifetime re-draws, this incarnation

    def rng(self, stream: int = STREAM_ROTATION) -> np.random.Generator:
        """The RNG for the current ``(epoch, rotation_index)`` cell."""
        return derive_rng(self.session_id, self.epoch, self.rotation_index,
                          stream)

    def rotate(self, session) -> None:
        """Re-draw the session's secret subset (same P-of-N arity).

        Bumps ``rotation_index``, draws the new subset from the derived
        RNG and refreshes the session's ladder-noise RNG so both streams
        advance together.
        """
        selector = session.client._selector
        if selector is None:
            raise ValueError("selector rotation requires a selector-bearing "
                             "client")
        self.rotation_index += 1
        self.rotations += 1
        session.client._selector = Selector.random(
            selector.num_nets, selector.num_active,
            rng=self.rng(STREAM_ROTATION))
        session._refresh_privacy_rng()

    def maybe_rotate(self, session) -> bool:
        """One serve's rotation hook; returns True if a re-draw happened.

        Called by the service before delivering each response.
        ``per_query`` rotates every ``queries_per_rotation`` serves (the
        first window is served under the open-time subset); ``budget``
        rotates each time the session's budget crosses another
        ``budget_step`` of depletion; ``per_epoch`` never rotates here —
        it rotates on epoch bumps via :meth:`advance_epoch`.
        """
        rotated = False
        if self.policy.mode == "per_query":
            if (self.queries_served > 0
                    and self.queries_served % self.policy.queries_per_rotation
                    == 0):
                self.rotate(session)
                rotated = True
        elif self.policy.mode == "budget" and session.privacy is not None:
            marks = int(math.floor(session.privacy.fraction_spent
                                   / self.policy.budget_step))
            if marks > self.budget_marks:
                self.budget_marks = marks
                self.rotate(session)
                rotated = True
        self.queries_served += 1
        return rotated

    def advance_epoch(self, epoch: int, session) -> None:
        """Move to a new incarnation epoch (checkpoint restore / apply).

        The epoch term re-keys every subsequent draw, so the restored
        incarnation cannot replay its predecessor's sequence even from
        the same ``rotation_index``; ``per_epoch`` mode additionally
        rotates right away — one fresh subset per incarnation.
        """
        self.epoch = int(epoch)
        if self.policy.mode == "per_epoch":
            self.rotate(session)
        else:
            session._refresh_privacy_rng()

    def __repr__(self) -> str:
        return (f"SelectorRotator(mode={self.policy.mode!r}, "
                f"epoch={self.epoch}, rotation_index={self.rotation_index}, "
                f"rotations={self.rotations})")
