"""Rényi-divergence privacy accounting for the serving layer.

A long-lived Ensembler session hands the server-side adversary one noised
feature map per query; unbounded queries mean unbounded traffic for the
model-inversion attack of §III.  This module meters that leakage the way
pMixed meters per-query ensemble releases: a per-query *Rényi privacy
loss* is charged against an ``(alpha, eps, q_budget)`` policy, and the
session is refused once either the cumulative ε(α) or the query count is
spent.

The per-query loss is grounded in the Rényi divergence of the Gaussian
mechanism (the split-point defense *is* a Gaussian mechanism — the
uploaded features are ``M_c,h(x) + N(0, σ²)``):

    ε_α(σ) = α · Δ² / (2 σ²)          (Gaussian-mechanism RDP)

scaled by two Ensembler-specific factors:

* the **revealed-map fraction** ``f`` — when the budget ladder masks the
  downlink feature maps to a fraction of their channels, each query
  reveals proportionally less, so the effective sensitivity shrinks to
  ``f · Δ²``;
* the **subset-entropy divisor** ``1 + log2(C(N, P))`` — the adversary's
  reconstruction must still search the client's secret P-of-N selection
  (§III-D); each query's evidence about the fixed secret amortises over
  that search space, so a larger ensemble stretches the same ε over more
  queries.

:func:`renyi_divergence` is the underlying pMixed-style divergence over
explicit distributions; :class:`RenyiAccountant` accumulates the
closed-form Gaussian charges.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class PrivacyPolicy:
    """The ``(alpha, eps, q_budget)`` contract one session is metered by.

    ``alpha`` is the Rényi order the losses are accounted at, ``eps`` the
    total ε(α) the session may spend, and ``q_budget`` a hard cap on
    charged queries — whichever depletes first exhausts the session
    (pMixed uses the same triple for its per-query ensemble releases).
    """

    alpha: float = 2.0
    eps: float = 2.0
    q_budget: int = 1024

    def __post_init__(self):
        if not (math.isfinite(self.alpha) and self.alpha > 1.0):
            raise ValueError(f"alpha must be finite and > 1, got {self.alpha}")
        if not (math.isfinite(self.eps) and self.eps > 0.0):
            raise ValueError(f"eps must be finite and > 0, got {self.eps}")
        if self.q_budget < 1:
            raise ValueError(f"q_budget must be >= 1, got {self.q_budget}")

    @property
    def per_query_target(self) -> float:
        """pMixed's per-query loss target, ``sqrt(2 eps / (q_budget alpha))``.

        Spending exactly this per query depletes ε after ``q_budget``
        queries under pMixed's sequential-composition bound; the
        accountant's :meth:`RenyiAccountant.calibrate_sigma` inverts the
        Gaussian charge to hit ``eps / q_budget`` per query instead (the
        linear RDP composition this accountant uses).
        """
        return math.sqrt(2.0 * self.eps / (self.q_budget * self.alpha))

    @classmethod
    def parse(cls, value: "PrivacyPolicy | tuple | None"
              ) -> "PrivacyPolicy | None":
        """Coerce a user-facing spec to a :class:`PrivacyPolicy`.

        Args:
            value: ``None`` (no accounting), a :class:`PrivacyPolicy`, or
                an ``(alpha, eps, q_budget)`` tuple.

        Returns:
            The parsed policy, or ``None`` for the unmetered spec.
        """
        if value is None or isinstance(value, cls):
            return value
        return cls(*value)


def renyi_divergence(p, q, alpha: float) -> float:
    """Rényi divergence ``D_α(p || q)`` between two discrete distributions.

    The pMixed divergence with its three branches: ``alpha = inf`` is the
    max-divergence ``log max(p/q)``, ``alpha = 1`` the KL divergence, and
    otherwise ``1/(α-1) · log Σ p^α / q^(α-1)``.  Inputs are normalised
    defensively; zero-mass ``q`` bins with positive ``p`` mass yield
    ``inf``.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    if np.any(p < 0) or np.any(q < 0):
        raise ValueError("distributions must be non-negative")
    p = p / p.sum()
    q = q / q.sum()
    support = p > 0
    if np.any(support & (q == 0)):
        return math.inf
    p, q = p[support], q[support]
    if math.isinf(alpha):
        return float(np.log(np.max(p / q)))
    if alpha == 1.0:
        return float(np.sum(p * np.log(p / q)))
    if alpha <= 0.0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return float(np.log(np.sum(p**alpha / q**(alpha - 1.0)))
                 / (alpha - 1.0))


def gaussian_rdp(sigma: float, alpha: float, sensitivity: float = 1.0
                 ) -> float:
    """RDP of the Gaussian mechanism: ``ε_α = α Δ² / (2 σ²)``.

    ``sigma = 0`` (no noise) is infinitely revealing and returns ``inf``.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be >= 0, got {sensitivity}")
    if sigma == 0.0:
        return math.inf if sensitivity > 0 else 0.0
    return alpha * sensitivity**2 / (2.0 * sigma**2)


def subset_entropy(num_nets: int, subset_size: int) -> float:
    """The divisor ``1 + log2(C(N, P))`` amortising loss over the secret.

    With a single body (no secret to search) this is 1 — the plain
    Gaussian charge.
    """
    if not 1 <= subset_size <= num_nets:
        raise ValueError(f"need 1 <= subset_size <= num_nets, got "
                         f"P={subset_size} of N={num_nets}")
    return 1.0 + math.log2(math.comb(num_nets, subset_size))


class RenyiAccountant:
    """Per-session accumulator of Gaussian-mechanism Rényi losses.

    Each served query charges :meth:`charge`; the accountant tracks the
    cumulative ε(α) (``spent``) and the query count (``queries_charged``)
    against its :class:`PrivacyPolicy` and reports :attr:`exhausted` when
    either budget depletes.  Accounting is *post-paid*: a query is
    charged when its response is delivered, so the final query may
    overshoot ε slightly — every submit after that is refused.
    """

    def __init__(self, policy: "PrivacyPolicy | tuple | None" = None):
        parsed = PrivacyPolicy.parse(policy)
        self.policy = parsed if parsed is not None else PrivacyPolicy()
        self.spent = 0.0          # cumulative ε(α) charged
        self.queries_charged = 0  # served queries charged so far

    def query_loss(self, sigma: float, revealed_fraction: float = 1.0,
                   subset_size: int = 1, num_nets: int = 1) -> float:
        """One query's Rényi loss at the current noise/mask/ensemble shape.

        Args:
            sigma: the Gaussian noise level actually applied at the split.
            revealed_fraction: fraction of downlink feature channels the
                server reveals (the budget ladder's mask), in (0, 1].
            subset_size: the client's secret subset size P.
            num_nets: the served ensemble size N.

        Returns:
            ``gaussian_rdp(σ, α, √f) / (1 + log2 C(N, P))`` — higher
            noise, a smaller revealed map and a larger search space all
            lower the charge.
        """
        if not 0.0 < revealed_fraction <= 1.0:
            raise ValueError(f"revealed_fraction must be in (0, 1], got "
                             f"{revealed_fraction}")
        base = gaussian_rdp(sigma, self.policy.alpha,
                            sensitivity=math.sqrt(revealed_fraction))
        return base / subset_entropy(num_nets, subset_size)

    def charge(self, sigma: float, revealed_fraction: float = 1.0,
               subset_size: int = 1, num_nets: int = 1) -> float:
        """Accumulate one served query's loss; returns the charged loss."""
        loss = self.query_loss(sigma, revealed_fraction=revealed_fraction,
                               subset_size=subset_size, num_nets=num_nets)
        self.spent += loss
        self.queries_charged += 1
        return loss

    def calibrate_sigma(self, revealed_fraction: float = 1.0,
                        subset_size: int = 1, num_nets: int = 1) -> float:
        """The σ at which ε depletes exactly when ``q_budget`` does.

        Inverts :meth:`query_loss` for a per-query charge of
        ``eps / q_budget``: serving at this noise level makes the two
        budgets run out together.
        """
        target = self.policy.eps / self.policy.q_budget
        entropy = subset_entropy(num_nets, subset_size)
        return math.sqrt(self.policy.alpha * revealed_fraction
                         / (2.0 * target * entropy))

    @property
    def remaining(self) -> float:
        """Unspent ε(α), floored at zero."""
        return max(0.0, self.policy.eps - self.spent)

    @property
    def fraction_spent(self) -> float:
        """Budget depletion in [0, 1]: the *tighter* of the ε and query
        budgets (``max`` of the two fractions), capped at 1."""
        eps_frac = self.spent / self.policy.eps
        query_frac = self.queries_charged / self.policy.q_budget
        return min(1.0, max(eps_frac, query_frac))

    @property
    def exhausted(self) -> bool:
        """Whether either the ε or the query budget is fully spent."""
        return (self.spent >= self.policy.eps
                or self.queries_charged >= self.policy.q_budget)

    def __repr__(self) -> str:
        return (f"RenyiAccountant(alpha={self.policy.alpha:g}, "
                f"spent={self.spent:.4g}/{self.policy.eps:g}, "
                f"queries={self.queries_charged}/{self.policy.q_budget})")
