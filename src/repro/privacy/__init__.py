"""Per-session privacy budgets and switching-ensemble selector rotation.

The serving stack meters bytes, tokens and rate; this package meters
*privacy*.  :mod:`repro.privacy.accountant` charges each served query a
Rényi-divergence loss (Gaussian-mechanism RDP scaled by the revealed-map
fraction and the P-of-N subset entropy) against an ``(alpha, eps,
q_budget)`` policy; :mod:`repro.privacy.budget` walks an overload-style
degradation ladder as the budget depletes and refuses exhausted
sessions; :mod:`repro.privacy.rotation` re-draws the session's secret
selector subset mid-stream so a leaked subset goes stale.  See
``docs/privacy.md`` for the math and the checkpoint field layout.
"""

from repro.privacy.accountant import (
    PrivacyPolicy,
    RenyiAccountant,
    gaussian_rdp,
    renyi_divergence,
    subset_entropy,
)
from repro.privacy.budget import (
    LEVEL_EXHAUSTED,
    LEVEL_NORMAL,
    LEVEL_RAISE_NOISE,
    LEVEL_SHRINK_MAP,
    PRIVACY_LADDER,
    PrivacyBudget,
)
from repro.privacy.rotation import (
    ROTATION_MODES,
    STREAM_NOISE,
    STREAM_ROTATION,
    RotationPolicy,
    SelectorRotator,
    derive_rng,
)

__all__ = [
    "LEVEL_EXHAUSTED",
    "LEVEL_NORMAL",
    "LEVEL_RAISE_NOISE",
    "LEVEL_SHRINK_MAP",
    "PRIVACY_LADDER",
    "PrivacyBudget",
    "PrivacyPolicy",
    "ROTATION_MODES",
    "RenyiAccountant",
    "RotationPolicy",
    "STREAM_NOISE",
    "STREAM_ROTATION",
    "SelectorRotator",
    "derive_rng",
    "gaussian_rdp",
    "renyi_divergence",
    "subset_entropy",
]
