"""Per-session privacy budgets: graceful degradation, then refusal.

A :class:`PrivacyBudget` attaches to a
:class:`~repro.serving.session.Session` and is spent once per served
query by the service's tick loop.  Like the overload controller's
degradation ladder, depletion is graceful before it is terminal — the
ladder trades *utility* for remaining privacy, mildest step first:

1. **normal** — serve at the session's negotiated noise and full maps;
2. **raise noise** — past ``raise_noise_at`` of the budget, the client
   adds extra Gaussian noise at the split (``noise_boost`` × the base
   σ in total), which also *lowers* every subsequent per-query charge;
3. **shrink map** — past ``shrink_map_at``, the service masks each
   downlink feature map to ``map_fraction`` of its channels (responses
   flagged ``degraded``), shrinking the revealed sensitivity;
4. **exhausted** — the budget is spent: the session is closed for new
   work and every further submit raises the typed
   :class:`~repro.serving.errors.PrivacyExhaustedError`; nothing is ever
   silently served past exhaustion.

The extra ladder noise is drawn from the (session_id, epoch,
rotation_index)-derived RNG of :mod:`repro.privacy.rotation`, so a
restored incarnation never replays its predecessor's noise draws — the
checkpointed *base* noise map stays bit-exact, only the ladder's extra
draws decorrelate.
"""

from __future__ import annotations

import math

from repro.privacy.accountant import PrivacyPolicy, RenyiAccountant

#: Ladder levels, mildest first.  ``LEVEL_NORMAL`` is full quality.
LEVEL_NORMAL = 0
LEVEL_RAISE_NOISE = 1
LEVEL_SHRINK_MAP = 2
LEVEL_EXHAUSTED = 3

#: Human-readable names for the budget ladder levels, in depletion order.
PRIVACY_LADDER = ("normal", "raise-noise", "shrink-map", "exhausted")


class PrivacyBudget:
    """Mutable per-session budget state walking the depletion ladder.

    Wraps a :class:`~repro.privacy.accountant.RenyiAccountant` with the
    deployment-shaped ladder knobs: ``raise_noise_at`` /
    ``shrink_map_at`` are depletion fractions (of the tighter budget) at
    which the ladder engages, ``noise_boost`` the total-σ multiplier of
    the raise-noise step, ``map_fraction`` the channel fraction the
    shrink step still reveals, and ``base_sigma`` the fallback split
    noise level when the session carries no noise provenance.  The
    ladder knobs are deployment *config* (like the client's model
    halves); only the accountant's accumulated state is checkpointed.
    """

    def __init__(self, policy: PrivacyPolicy | None = None,
                 base_sigma: float = 0.1,
                 raise_noise_at: float = 0.5,
                 shrink_map_at: float = 0.8,
                 noise_boost: float = 1.5,
                 map_fraction: float = 0.5):
        if not (math.isfinite(base_sigma) and base_sigma >= 0.0):
            raise ValueError(f"base_sigma must be finite and >= 0, got "
                             f"{base_sigma}")
        if not 0.0 < raise_noise_at <= shrink_map_at <= 1.0:
            raise ValueError(
                f"need 0 < raise_noise_at <= shrink_map_at <= 1, got "
                f"{raise_noise_at} / {shrink_map_at}")
        if not noise_boost >= 1.0:
            raise ValueError(f"noise_boost must be >= 1, got {noise_boost}")
        if not 0.0 < map_fraction <= 1.0:
            raise ValueError(f"map_fraction must be in (0, 1], got "
                             f"{map_fraction}")
        self.accountant = RenyiAccountant(policy)
        self.base_sigma = float(base_sigma)
        self.raise_noise_at = float(raise_noise_at)
        self.shrink_map_at = float(shrink_map_at)
        self.noise_boost = float(noise_boost)
        self.map_fraction = float(map_fraction)
        #: set by the service the first time an exhausted session is
        #: refused; the session stays registered as a tombstone so every
        #: later submit raises ``PrivacyExhaustedError``, not
        #: ``UnknownSessionError``.
        self.closed = False

    @classmethod
    def parse(cls, value: "PrivacyBudget | PrivacyPolicy | tuple | None",
              base_sigma: float | None = None) -> "PrivacyBudget | None":
        """Coerce a user-facing spec to a :class:`PrivacyBudget`.

        Args:
            value: ``None`` (unmetered), a ready :class:`PrivacyBudget`,
                a :class:`~repro.privacy.accountant.PrivacyPolicy`, or an
                ``(alpha, eps, q_budget)`` tuple.
            base_sigma: fallback split noise level for budgets built
                here (ignored for a ready-made budget).

        Returns:
            The parsed budget, or ``None`` for the unmetered spec.
        """
        if value is None or isinstance(value, cls):
            return value
        policy = PrivacyPolicy.parse(value)
        if base_sigma is None:
            return cls(policy)
        return cls(policy, base_sigma=base_sigma)

    # -- introspection ---------------------------------------------------

    @property
    def policy(self) -> PrivacyPolicy:
        """The accounted ``(alpha, eps, q_budget)`` contract."""
        return self.accountant.policy

    @property
    def spent(self) -> float:
        """Cumulative ε(α) charged so far."""
        return self.accountant.spent

    @property
    def queries_charged(self) -> int:
        """Served queries charged so far."""
        return self.accountant.queries_charged

    @property
    def fraction_spent(self) -> float:
        """Depletion of the tighter budget, in [0, 1]."""
        return self.accountant.fraction_spent

    @property
    def exhausted(self) -> bool:
        """Whether the session must now be refused."""
        return self.accountant.exhausted

    @property
    def level(self) -> int:
        """The current ladder level (see :data:`PRIVACY_LADDER`)."""
        if self.exhausted:
            return LEVEL_EXHAUSTED
        fraction = self.fraction_spent
        if fraction >= self.shrink_map_at:
            return LEVEL_SHRINK_MAP
        if fraction >= self.raise_noise_at:
            return LEVEL_RAISE_NOISE
        return LEVEL_NORMAL

    @property
    def level_name(self) -> str:
        """The current ladder level's human-readable name."""
        return PRIVACY_LADDER[self.level]

    # -- ladder effects --------------------------------------------------

    def effective_sigma(self, base_sigma: float | None = None) -> float:
        """The total split noise σ served at the current ladder level."""
        base = self.base_sigma if base_sigma is None else float(base_sigma)
        if self.level >= LEVEL_RAISE_NOISE:
            return base * self.noise_boost
        return base

    def extra_sigma(self, base_sigma: float | None = None) -> float:
        """The σ of the *additional* independent noise the client draws.

        The base noise map is fixed (and checkpointed bit-exactly);
        raising total noise from ``σ`` to ``boost·σ`` therefore adds an
        independent draw of std ``σ·sqrt(boost² − 1)`` on top.  Zero
        below the raise-noise level.
        """
        base = self.base_sigma if base_sigma is None else float(base_sigma)
        if self.level < LEVEL_RAISE_NOISE:
            return 0.0
        return base * math.sqrt(self.noise_boost**2 - 1.0)

    def revealed_fraction(self) -> float:
        """Fraction of downlink channels served at the current level."""
        if self.level >= LEVEL_SHRINK_MAP:
            return self.map_fraction
        return 1.0

    def mask_outputs(self, outputs: list) -> bool:
        """Zero the channels past the revealed fraction, in place.

        Applied by the service to a response's (already-copied) feature
        maps at :data:`LEVEL_SHRINK_MAP` and above; at least one channel
        always survives.  Returns True when masking was applied (the
        response must then be flagged ``degraded``).
        """
        fraction = self.revealed_fraction()
        if fraction >= 1.0:
            return False
        masked = False
        for out in outputs:
            if out.ndim < 2:
                continue
            keep = max(1, math.ceil(out.shape[1] * fraction))
            if keep < out.shape[1]:
                out[:, keep:] = 0.0
                masked = True
        return masked

    # -- spending --------------------------------------------------------

    def charge_query(self, base_sigma: float | None = None,
                     subset_size: int = 1, num_nets: int = 1) -> float:
        """Charge one served query at the current ladder shape.

        The charge uses the *effective* noise and revealed fraction, so
        ladder degradation genuinely slows depletion.  Returns the
        charged loss.
        """
        return self.accountant.charge(
            self.effective_sigma(base_sigma),
            revealed_fraction=self.revealed_fraction(),
            subset_size=subset_size, num_nets=num_nets)

    def __repr__(self) -> str:
        return (f"PrivacyBudget(level={self.level_name!r}, "
                f"spent={self.spent:.4g}/{self.policy.eps:g}, "
                f"queries={self.queries_charged}/{self.policy.q_budget})")
