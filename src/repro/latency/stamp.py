"""Cost model for STAMP, the encryption-based comparator of Table III.

STAMP (Huang et al., 2022) runs private inference inside lightweight trusted
hardware with GPU help; the paper quotes its reported LAN-GPU latency of
309.7 s for the same ResNet-18 / batch-128 workload — roughly 75-80x the
plaintext CI pipeline.  STAMP is closed source and needs a TEE, so we model
it as a multiplicative slowdown anchored to the published measurement; the
constant is exposed so ablations can vary it.
"""

from __future__ import annotations

import dataclasses

from repro.latency.model import LatencyBreakdown

# 309.7 s (STAMP LAN-GPU, Table III) / 3.94 s (Standard CI, Table III).
STAMP_REPORTED_TOTAL_S = 309.7
STAMP_SLOWDOWN_VS_PLAINTEXT = STAMP_REPORTED_TOTAL_S / 3.94


@dataclasses.dataclass(frozen=True)
class StampModel:
    """Encryption-based private inference as a slowdown over plaintext CI."""

    slowdown: float = STAMP_SLOWDOWN_VS_PLAINTEXT

    def __post_init__(self):
        if self.slowdown <= 1.0:
            raise ValueError("an encryption-based pipeline cannot beat plaintext")

    def from_plaintext(self, plaintext: LatencyBreakdown) -> LatencyBreakdown:
        """Predict the STAMP row from the plaintext Standard-CI row.

        The paper reports only STAMP's total, so the breakdown columns are
        left unattributed (zeros) and the total carries the estimate — the
        same presentation Table III uses ("-" per column).
        """
        total = plaintext.total_s * self.slowdown
        return LatencyBreakdown("stamp", 0.0, 0.0, total)
