"""End-to-end latency model for the three systems of Table III.

``LatencyModel`` combines device/network cost models with the *actual* FLOP
counts (via :mod:`repro.nn.profiling`) and the *actual* wire sizes (via
:mod:`repro.ci.channel`) of a configured split network.

The Ensembler server runs its N bodies concurrently on one GPU; the paper
measures only ~4% extra server time for N=10, which we model with a serial
fraction (Amdahl): ``server = base * (1 + serial_fraction * (N - 1))``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ci.channel import HEADER_BYTES
from repro.latency.devices import A6000, RASPBERRY_PI, WIRED_LAN, DeviceModel, NetworkModel


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """One row of Table III (seconds)."""

    name: str
    client_s: float
    server_s: float
    communication_s: float

    @property
    def total_s(self) -> float:
        return self.client_s + self.server_s + self.communication_s


@dataclasses.dataclass(frozen=True)
class SplitWorkload:
    """Static description of one inference batch crossing the split.

    FLOP counts are per batch; byte counts are the wire sizes of the
    transmitted tensors (feature upload, per-net feature download).
    """

    batch_size: int
    client_head_flops: float
    client_tail_flops: float
    server_body_flops: float
    upload_bytes: int
    download_bytes_per_net: int


class LatencyModel:
    """Predicts Table III rows from a workload description."""

    def __init__(
        self,
        client: DeviceModel = RASPBERRY_PI,
        server: DeviceModel = A6000,
        network: NetworkModel = WIRED_LAN,
        serial_fraction: float = 0.0045,
    ):
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        self.client = client
        self.server = server
        self.network = network
        self.serial_fraction = serial_fraction

    @staticmethod
    def codec_downlink_bytes(nbytes: int, codec="fp32") -> int:
        """Wire size of one framed downlink tensor under a serving codec.

        ``nbytes`` is the fp32 framed size (payload + ``HEADER_BYTES``);
        a narrowing codec shrinks the payload by its dtype ratio (fp16
        halves it, int8 quarters it), never the frame header — matching
        the exact accounting of the narrowed
        :class:`~repro.serving.protocol.FeatureResponse` frames (int8
        quantisation parameters ride inside the fixed-size header).
        """
        from repro.serving.protocol import Codec

        itemsize = Codec.parse(codec).wire_itemsize
        return (nbytes - HEADER_BYTES) * itemsize // 4 + HEADER_BYTES

    def standard_ci(self, workload: SplitWorkload) -> LatencyBreakdown:
        """Classical split inference: one body, one upload, one download."""
        client = self.client.seconds(workload.client_head_flops + workload.client_tail_flops)
        server = self.server.seconds(workload.server_body_flops)
        comm = (self.network.uplink_seconds(workload.upload_bytes)
                + self.network.downlink_seconds(workload.download_bytes_per_net))
        return LatencyBreakdown("standard-ci", client, server, comm)

    def ensembler(self, workload: SplitWorkload, num_nets: int,
                  fused: bool = True, downlink_codec="fp32") -> LatencyBreakdown:
        """Ensembler: same upload, N concurrent bodies, N downloads.

        Client time is unchanged by design (Section III-D): the head runs
        once and the tail consumes the concatenated features whose total
        width matches what the selector feeds it.

        ``fused=True`` models the batched execution engine
        (:mod:`repro.nn.batched`): the N bodies run as one wide pass and
        only a small serial fraction scales with N — the ~4% overhead the
        paper reports for N=10.  ``fused=False`` models a server that loops
        the bodies sequentially and pays the full N× body time.
        ``downlink_codec="fp16"`` (or ``"int8"``) models a session that
        negotiated a dtype-narrowing wire codec: the N feature downloads
        — the dominant communication term — shrink to their narrowed
        framed size (2x / 4x smaller payloads respectively).
        """
        if num_nets < 1:
            raise ValueError("num_nets must be >= 1")
        client = self.client.seconds(workload.client_head_flops + workload.client_tail_flops)
        base = self.server.seconds(workload.server_body_flops)
        if fused:
            server = base * (1.0 + self.serial_fraction * (num_nets - 1))
        else:
            server = base * num_nets
        down = self.codec_downlink_bytes(workload.download_bytes_per_net,
                                         downlink_codec)
        comm = (self.network.uplink_seconds(workload.upload_bytes)
                + self.network.downlink_seconds(down * num_nets,
                                                messages=num_nets))
        return LatencyBreakdown("ensembler", client, server, comm)

    def ensembler_coalesced(self, workload: SplitWorkload, num_nets: int,
                            coalesced: int = 1, fused: bool = True,
                            downlink_codec="fp32") -> LatencyBreakdown:
        """Amortised *per-request* cost when the serving layer coalesces.

        The :class:`~repro.serving.service.InferenceService` merges
        ``coalesced`` concurrent uploads into one stacked pass, so the
        per-pass serial overhead (the Amdahl term of :meth:`ensembler`) is
        paid once per *pass* instead of once per *request*:

            ``server = base * (1 + serial_fraction * (N - 1) / R)``

        Client time is unchanged and every session still frames its own
        upload and receives its own N responses — exactly the per-session
        byte accounting the service preserves; ``downlink_codec="fp16"``
        narrows those N response frames as in :meth:`ensembler`.
        ``coalesced=1`` degenerates to :meth:`ensembler`; a looped
        (``fused=False``) server gains nothing from coalescing.
        """
        if num_nets < 1:
            raise ValueError("num_nets must be >= 1")
        if coalesced < 1:
            raise ValueError("coalesced must be >= 1")
        client = self.client.seconds(workload.client_head_flops + workload.client_tail_flops)
        base = self.server.seconds(workload.server_body_flops)
        if fused:
            server = base * (1.0 + self.serial_fraction * (num_nets - 1) / coalesced)
        else:
            server = base * num_nets
        down = self.codec_downlink_bytes(workload.download_bytes_per_net,
                                         downlink_codec)
        comm = (self.network.uplink_seconds(workload.upload_bytes)
                + self.network.downlink_seconds(down * num_nets,
                                                messages=num_nets))
        return LatencyBreakdown(f"ensembler-coalesced-{coalesced}", client, server, comm)


def workload_from_model(model_config, image_hw: int, batch_size: int,
                        rng=None) -> SplitWorkload:
    """Measure a :class:`SplitWorkload` from an actual ResNet of ours.

    FLOPs are counted by running the real forward passes on a single image
    and scaling by the batch size; wire sizes are the float32 tensor sizes
    plus framing, exactly what :mod:`repro.ci` would transmit.
    """
    from repro.models.resnet import ResNet
    from repro.nn.profiling import count_forward_flops
    from repro.utils.rng import new_rng

    rng = rng if rng is not None else new_rng(0)
    model = ResNet(model_config, rng=rng).eval()
    image = np.zeros((1, 3, image_hw, image_hw), dtype=np.float32)
    head_flops = count_forward_flops(model.head, image)
    inter_shape = model_config.intermediate_shape(image_hw)
    features = np.zeros((1, *inter_shape), dtype=np.float32)
    body_flops = count_forward_flops(model.body, features)
    pooled = np.zeros((1, model_config.feature_dim), dtype=np.float32)
    tail_flops = count_forward_flops(model.tail, pooled)
    upload_bytes = batch_size * int(np.prod(inter_shape)) * 4 + HEADER_BYTES
    download_bytes = batch_size * model_config.feature_dim * 4 + HEADER_BYTES
    return SplitWorkload(
        batch_size=batch_size,
        client_head_flops=head_flops * batch_size,
        client_tail_flops=tail_flops * batch_size,
        server_body_flops=body_flops * batch_size,
        upload_bytes=upload_bytes,
        download_bytes_per_net=download_bytes,
    )
