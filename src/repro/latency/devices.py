"""Device and network cost models for the Table III latency simulation.

The paper measures a Raspberry Pi client talking to an A6000 server over a
wired network.  Neither device is available offline, so we model each as a
sustained-throughput processor (seconds = FLOPs / effective FLOPS) and the
link as bandwidth + per-message latency.  The default constants are
*calibrated* so that the Standard-CI row reproduces the paper's measured
breakdown (0.66 s client / 0.98 s server / 2.30 s communication for a
128-image ResNet-18 batch); every other number is then a model *prediction*.
See DESIGN.md §2 for why this substitution preserves the Table III shape.
"""

from __future__ import annotations

import dataclasses

from repro.ci.channel import HEADER_BYTES


@dataclasses.dataclass(frozen=True)
class DeviceModel:
    """A processor with a sustained effective throughput."""

    name: str
    effective_gflops: float

    def __post_init__(self):
        if self.effective_gflops <= 0:
            raise ValueError("throughput must be positive")

    def seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating-point operations."""
        return flops / (self.effective_gflops * 1e9)


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """A full-duplex link with asymmetric sustained bandwidth.

    The paper's wired testbed moves the large feature upload far slower than
    the N small feature downloads (which pipeline with server compute), hence
    separate effective rates.
    """

    name: str
    uplink_mbps: float
    downlink_mbps: float
    per_message_s: float = 0.0

    def __post_init__(self):
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.per_message_s < 0:
            raise ValueError("per-message latency must be non-negative")

    def uplink_seconds(self, nbytes: int, messages: int = 1) -> float:
        return nbytes * 8 / (self.uplink_mbps * 1e6) + messages * self.per_message_s

    def downlink_seconds(self, nbytes: int, messages: int = 1) -> float:
        return nbytes * 8 / (self.downlink_mbps * 1e6) + messages * self.per_message_s


# Calibrated against Table III's Standard-CI row (see module docstring).
RASPBERRY_PI = DeviceModel("raspberry-pi-4", effective_gflops=0.75)
A6000 = DeviceModel("a6000", effective_gflops=36.2)
WIRED_LAN = NetworkModel("wired-lan", uplink_mbps=29.5, downlink_mbps=170.0,
                         per_message_s=0.004)
