"""Latency simulation reproducing Table III (see DESIGN.md for calibration)."""

from repro.latency.devices import A6000, RASPBERRY_PI, WIRED_LAN, DeviceModel, NetworkModel
from repro.latency.model import (
    LatencyBreakdown,
    LatencyModel,
    SplitWorkload,
    workload_from_model,
)
from repro.latency.stamp import STAMP_SLOWDOWN_VS_PLAINTEXT, StampModel

__all__ = [
    "A6000",
    "DeviceModel",
    "LatencyBreakdown",
    "LatencyModel",
    "NetworkModel",
    "RASPBERRY_PI",
    "STAMP_SLOWDOWN_VS_PLAINTEXT",
    "SplitWorkload",
    "StampModel",
    "WIRED_LAN",
    "workload_from_model",
]
