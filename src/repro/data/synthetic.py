"""Procedural image generators standing in for CIFAR-10/100 and CelebA-HQ.

No datasets can be downloaded in this environment, so each benchmark dataset
is replaced by a *procedural* generator with the properties the experiments
rely on:

* **class-predictive structure** — each class has a deterministic spatial
  pattern (texture + blob layout, or face geometry for the CelebA stand-in),
  so classifiers reach high accuracy and the ΔAcc column is meaningful;
* **per-instance content** — samples differ by shifts, amplitude jitter and
  pixel noise, so reconstructing an *instance* (what MIA does) is strictly
  harder than predicting its class, and SSIM/PSNR measure real leakage;
* **natural value range** — images live in [0, 1] like normalised photos.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset, DatasetBundle


def _class_texture(class_id: int, channels: int, size: int, seed: int) -> np.ndarray:
    """Deterministic per-class pattern: oriented gratings plus Gaussian blobs."""
    rng = np.random.default_rng(seed * 10_007 + class_id)
    yy, xx = np.mgrid[0:size, 0:size] / size
    pattern = np.zeros((channels, size, size))
    for c in range(channels):
        freq = rng.uniform(1.5, 4.5)
        theta = rng.uniform(0, np.pi)
        phase = rng.uniform(0, 2 * np.pi)
        grating = np.sin(2 * np.pi * freq * (xx * np.cos(theta) + yy * np.sin(theta)) + phase)
        pattern[c] = 0.5 * grating
    for _ in range(2):
        cy, cx = rng.uniform(0.2, 0.8, size=2)
        sigma = rng.uniform(0.08, 0.2)
        blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
        weights = rng.uniform(-1.0, 1.0, size=channels)[:, None, None]
        pattern += weights * blob
    # Emit float32: the whole pipeline runs in float32, and keeping the
    # per-sample transforms below in the same dtype avoids silently timing
    # (and training on) float64 intermediates.
    return pattern.astype(np.float32)


def make_pattern_classification(
    num_classes: int,
    samples_per_class: int,
    size: int,
    rng: np.random.Generator,
    channels: int = 3,
    noise_std: float = 0.06,
    seed: int = 0,
) -> ArrayDataset:
    """Sample a labelled dataset from the per-class texture model."""
    images = np.empty((num_classes * samples_per_class, channels, size, size), dtype=np.float32)
    labels = np.empty(num_classes * samples_per_class, dtype=np.int64)
    index = 0
    for class_id in range(num_classes):
        base = _class_texture(class_id, channels, size, seed)
        for _ in range(samples_per_class):
            shift_y, shift_x = rng.integers(-size // 8, size // 8 + 1, size=2)
            sample = np.roll(base, (int(shift_y), int(shift_x)), axis=(1, 2))
            if rng.random() < 0.5:
                sample = sample[:, :, ::-1]
            amplitude = rng.uniform(0.8, 1.2)
            sample = 0.5 + 0.35 * amplitude * sample
            sample += rng.normal(0.0, noise_std, size=sample.shape)
            images[index] = np.clip(sample, 0.0, 1.0)
            labels[index] = class_id
            index += 1
    order = rng.permutation(len(images))
    return ArrayDataset(images[order], labels[order])


# ----------------------------------------------------------------------
# CelebA-HQ stand-in: procedural faces, identity classification
# ----------------------------------------------------------------------


def _identity_params(identity: int, seed: int) -> dict[str, float]:
    rng = np.random.default_rng(seed * 20_011 + identity)
    return {
        "face_w": rng.uniform(0.28, 0.38),
        "face_h": rng.uniform(0.34, 0.46),
        "skin_r": rng.uniform(0.55, 0.95),
        "skin_g": rng.uniform(0.4, 0.75),
        "skin_b": rng.uniform(0.3, 0.65),
        "eye_dx": rng.uniform(0.1, 0.16),
        "eye_y": rng.uniform(0.4, 0.48),
        "eye_size": rng.uniform(0.025, 0.05),
        "mouth_w": rng.uniform(0.08, 0.18),
        "mouth_y": rng.uniform(0.66, 0.74),
        "hair_level": rng.uniform(0.12, 0.25),
        "hair_r": rng.uniform(0.05, 0.5),
        "hair_g": rng.uniform(0.05, 0.4),
        "hair_b": rng.uniform(0.05, 0.35),
        "bg_angle": rng.uniform(0, 2 * np.pi),
    }


def _render_face(params: dict[str, float], size: int, shift: tuple[float, float],
                 brightness: float) -> np.ndarray:
    yy, xx = np.mgrid[0:size, 0:size] / size
    yy = yy + shift[0]
    xx = xx + shift[1]
    image = np.zeros((3, size, size))
    # Background gradient (identity-specific orientation).
    grad = 0.3 + 0.3 * (np.cos(params["bg_angle"]) * xx + np.sin(params["bg_angle"]) * yy)
    image[:] = grad
    # Hair: block above the face.
    hair = yy < params["hair_level"] + 0.12
    for c, key in enumerate(("hair_r", "hair_g", "hair_b")):
        image[c][hair] = params[key]
    # Face ellipse.
    face = (((xx - 0.5) / params["face_w"]) ** 2 + ((yy - 0.55) / params["face_h"]) ** 2) < 1.0
    for c, key in enumerate(("skin_r", "skin_g", "skin_b")):
        image[c][face] = params[key]
    # Eyes.
    for side in (-1.0, 1.0):
        ex = 0.5 + side * params["eye_dx"]
        eye = ((xx - ex) ** 2 + (yy - params["eye_y"]) ** 2) < params["eye_size"] ** 2
        image[:, eye] = 0.08
    # Mouth.
    mouth = (np.abs(xx - 0.5) < params["mouth_w"]) & (np.abs(yy - params["mouth_y"]) < 0.02)
    image[0][mouth] = 0.55
    image[1][mouth] = 0.1
    image[2][mouth] = 0.15
    # float32 like the rest of the pipeline (see _class_texture).
    return np.clip(image * brightness, 0.0, 1.0).astype(np.float32)


def make_face_identification(
    num_identities: int,
    samples_per_identity: int,
    size: int,
    rng: np.random.Generator,
    noise_std: float = 0.02,
    seed: int = 0,
) -> ArrayDataset:
    """Procedural face-identification dataset (CelebA-HQ stand-in)."""
    total = num_identities * samples_per_identity
    images = np.empty((total, 3, size, size), dtype=np.float32)
    labels = np.empty(total, dtype=np.int64)
    index = 0
    for identity in range(num_identities):
        params = _identity_params(identity, seed)
        for _ in range(samples_per_identity):
            shift = tuple(rng.uniform(-0.04, 0.04, size=2))
            brightness = rng.uniform(0.85, 1.15)
            sample = _render_face(params, size, shift, brightness)
            sample += rng.normal(0.0, noise_std, size=sample.shape)
            images[index] = np.clip(sample, 0.0, 1.0)
            labels[index] = identity
            index += 1
    order = rng.permutation(total)
    return ArrayDataset(images[order], labels[order])


# ----------------------------------------------------------------------
# Named bundles matching the paper's three benchmarks
# ----------------------------------------------------------------------


def cifar10_like(size: int = 32, train_per_class: int = 64, test_per_class: int = 16,
                 rng: np.random.Generator | None = None, num_classes: int = 10,
                 seed: int = 1) -> DatasetBundle:
    """CIFAR-10 stand-in: ``num_classes`` texture classes at ``size``²."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    train = make_pattern_classification(num_classes, train_per_class, size, rng, seed=seed)
    test = make_pattern_classification(num_classes, test_per_class, size, rng, seed=seed)
    return DatasetBundle("cifar10-like", train, test, num_classes, (3, size, size))


def cifar100_like(size: int = 32, train_per_class: int = 16, test_per_class: int = 4,
                  rng: np.random.Generator | None = None, num_classes: int = 100,
                  seed: int = 2) -> DatasetBundle:
    """CIFAR-100 stand-in: more classes, fewer samples per class."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    train = make_pattern_classification(num_classes, train_per_class, size, rng, seed=seed)
    test = make_pattern_classification(num_classes, test_per_class, size, rng, seed=seed)
    return DatasetBundle("cifar100-like", train, test, num_classes, (3, size, size))


def celeba_hq_like(size: int = 64, num_identities: int = 8, train_per_identity: int = 48,
                   test_per_identity: int = 12, rng: np.random.Generator | None = None,
                   seed: int = 3) -> DatasetBundle:
    """CelebA-HQ stand-in: procedural face identification."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    train = make_face_identification(num_identities, train_per_identity, size, rng, seed=seed)
    test = make_face_identification(num_identities, test_per_identity, size, rng, seed=seed)
    return DatasetBundle("celeba-hq-like", train, test, num_identities, (3, size, size))
