"""Dataset and loader abstractions.

Images are NCHW ``float32`` arrays in ``[0, 1]``; labels are integer class
indices.  The interface intentionally mirrors the PyTorch one the paper's code
would have used (``Dataset`` + ``DataLoader``), minus worker processes.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

from repro.utils.rng import new_rng


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset over parallel image/label arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        if images.ndim != 4:
            raise ValueError("images must be NCHW")
        self.images = np.ascontiguousarray(images, dtype=np.float32)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.images[indices], self.labels[indices])


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Iterating yields ``(images, labels)`` NumPy batches; the training loops
    wrap images into tensors themselves so evaluation code can stay
    allocation-free.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, shuffle: bool = False,
                 drop_last: bool = False, rng: np.random.Generator | None = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else new_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]


@dataclasses.dataclass(frozen=True)
class DatasetBundle:
    """A named train/test pair with its metadata, as used by the experiments."""

    name: str
    train: ArrayDataset
    test: ArrayDataset
    num_classes: int
    image_shape: tuple[int, int, int]

    def __post_init__(self):
        if self.train.images.shape[1:] != self.image_shape:
            raise ValueError("train images do not match image_shape")
        if self.test.images.shape[1:] != self.image_shape:
            raise ValueError("test images do not match image_shape")
