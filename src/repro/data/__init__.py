"""Data substrate: procedural datasets and loaders.

The three benchmark datasets of the paper (CIFAR-10, CIFAR-100, CelebA-HQ)
cannot be downloaded offline; :mod:`repro.data.synthetic` provides procedural
stand-ins with the properties the experiments measure (class-predictive
structure + per-instance content).  See DESIGN.md §2 for the substitution
rationale.
"""

from repro.data.datasets import ArrayDataset, DataLoader, Dataset, DatasetBundle
from repro.data.synthetic import (
    celeba_hq_like,
    cifar10_like,
    cifar100_like,
    make_face_identification,
    make_pattern_classification,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "Dataset",
    "DatasetBundle",
    "celeba_hq_like",
    "cifar10_like",
    "cifar100_like",
    "make_face_identification",
    "make_pattern_classification",
]
