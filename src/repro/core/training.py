"""Ensembler's three-stage training pipeline (Section III-C, Fig. 2 bottom).

Stage 1
    Train N complete networks ``M^i = {M^i_c,h, M^i_s, M^i_c,t}``, each with
    its own *fixed* Gaussian noise map injected after the head (Eq. 2).  The
    independently drawn noise maps are quasi-orthogonal, so the N heads learn
    different weights.
Stage 2
    The client secretly selects P of the N networks (the Selector).
Stage 3
    Freeze the P selected bodies.  Re-train a fresh head and a fresh
    (P x feature_dim -> classes) tail through the selector, with a new fixed
    noise map, minimising Eq. 3: the ensemble cross-entropy plus
    ``λ · max_i CS(M_c,h(x), M^i_c,h(x))`` which keeps the new head
    quasi-orthogonal to every stage-1 head.

Interpretation note: Eq. 3 writes the CE term as a sum over the P selected
nets.  Because the selector concatenates the P branches before the tail, the
gradient of the ensemble CE w.r.t. the head already *is* the sum of the P
per-branch gradients (the property Proposition 1 relies on); we therefore
implement the CE term as the cross-entropy of the ensembled prediction.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro import nn
from repro.core.ensemble import EnsemblerModel
from repro.core.noise import FixedGaussianNoise
from repro.core.selector import Selector
from repro.data.datasets import ArrayDataset, DataLoader
from repro.models.resnet import ResNet, ResNetConfig, ResNetHead, ResNetTail
from repro.nn import functional as F
from repro.nn.batched import (
    StackedBatchNorm2d,
    StackedBodies,
    UnstackableError,
    batched_cross_entropy,
    stack_modules,
    unbind,
)
from repro.nn.tensor import Tensor, no_grad
from repro.utils.config import FrozenConfig
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rng

logger = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class TrainingConfig(FrozenConfig):
    """One optimisation run over the dataset.

    ``optimizer`` selects momentum SGD (classifiers) or Adam (the inversion
    decoders, which barely move under SGD); ``momentum`` is ignored for Adam.
    """

    epochs: int = 3
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    optimizer: str = "sgd"

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")

    def build_optimizer(self, params: list[nn.Parameter]) -> nn.Optimizer:
        if self.optimizer == "adam":
            return nn.Adam(params, lr=self.lr, weight_decay=self.weight_decay)
        return nn.SGD(params, lr=self.lr, momentum=self.momentum,
                      weight_decay=self.weight_decay)

    def build_stacked_optimizer(self, params: list[nn.Parameter],
                                num_stacked: int) -> nn.Optimizer:
        """Fused multi-net variant: per-member state along the ensemble axis."""
        if self.optimizer == "adam":
            return nn.StackedAdam(params, num_stacked, lr=self.lr,
                                  weight_decay=self.weight_decay)
        return nn.StackedSGD(params, num_stacked, lr=self.lr,
                             momentum=self.momentum,
                             weight_decay=self.weight_decay)


@dataclasses.dataclass(frozen=True)
class EnsemblerConfig(FrozenConfig):
    """Hyper-parameters of the full Ensembler pipeline.

    The paper's setting is ``num_nets=10``, ``num_active`` in {4, 3, 5}
    depending on the dataset, ``sigma=0.1`` and a cosine-similarity
    regulariser weight ``lambda_reg``.
    """

    num_nets: int = 10
    num_active: int = 4
    sigma: float = 0.1
    lambda_reg: float = 1.0
    regularizer: str = "standardized_cosine"
    stage1: TrainingConfig = TrainingConfig()
    stage3: TrainingConfig = TrainingConfig()
    backend: str = "batched"

    def __post_init__(self):
        if not 1 <= self.num_active <= self.num_nets:
            raise ValueError("need 1 <= num_active <= num_nets")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.lambda_reg < 0:
            raise ValueError("lambda_reg must be non-negative")
        if self.regularizer not in ("cosine", "standardized_cosine"):
            raise ValueError("regularizer must be 'cosine' or 'standardized_cosine'")
        if self.backend not in ("batched", "looped"):
            raise ValueError("backend must be 'batched' or 'looped'")


def run_sgd(
    params: list[nn.Parameter],
    loss_fn: Callable[[np.ndarray, np.ndarray], Tensor],
    dataset: ArrayDataset,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> list[float]:
    """Generic mini-batch SGD loop; returns per-epoch mean losses.

    ``loss_fn(images, labels)`` builds the autograd graph for one batch.
    Every trainer and defense in the library goes through this single loop.
    """
    optimizer = config.build_optimizer(params)
    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
    history = []
    for epoch in range(config.epochs):
        losses = []
        for images, labels in loader:
            optimizer.zero_grad()
            loss = loss_fn(images, labels)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        history.append(float(np.mean(losses)))
        logger.debug("epoch %d loss %.4f", epoch, history[-1])
    return history


def run_stacked_sgd(
    params: list[nn.Parameter],
    loss_fn: Callable[[np.ndarray, np.ndarray], Tensor],
    dataset: ArrayDataset,
    config: TrainingConfig,
    rngs: list[np.random.Generator],
) -> list[list[float]]:
    """Fused sibling of :func:`run_sgd`: train E member networks in one pass.

    ``loss_fn(images, labels)`` receives stacked ``(E, B, ...)`` batches —
    member ``e``'s row drawn by its own shuffle stream ``rngs[e]`` — and must
    return the ``(E,)`` per-member loss vector (see
    :func:`repro.nn.batched.batched_cross_entropy`).  The sum of the vector
    backpropagates each member's own gradient into the stacked parameters
    and one elementwise optimiser step advances all members, so the result
    matches E independent :func:`run_sgd` runs with the same per-member RNG
    streams (up to float reassociation in the batched kernels).  Returns the
    per-member epoch-loss histories ``[E][epochs]``.
    """
    if not rngs:
        raise ValueError("need at least one member RNG stream")
    optimizer = config.build_stacked_optimizer(params, len(rngs))
    loaders = [DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
               for rng in rngs]
    histories: list[list[float]] = [[] for _ in rngs]
    for epoch in range(config.epochs):
        sums = np.zeros(len(rngs), dtype=np.float64)
        batches_seen = 0
        for member_batches in zip(*loaders):
            images = np.stack([images for images, _ in member_batches])
            labels = np.stack([labels for _, labels in member_batches])
            optimizer.zero_grad()
            member_losses = loss_fn(images, labels)
            if member_losses.shape != (len(rngs),):
                raise ValueError(
                    f"loss_fn must return the (E,) per-member loss vector, got "
                    f"shape {member_losses.shape}")
            member_losses.sum().backward()
            optimizer.step()
            sums += member_losses.data.astype(np.float64)
            batches_seen += 1
        for member, history in enumerate(histories):
            history.append(float(sums[member] / batches_seen))
        logger.debug("epoch %d mean member loss %.4f", epoch,
                     float(sums.mean() / batches_seen))
    return histories


def recalibrate_batchnorm(
    modules: list[nn.Module],
    forward_fn: Callable[[np.ndarray], object],
    images: np.ndarray,
    batch_size: int = 64,
) -> None:
    """Re-estimate BatchNorm running statistics with a cumulative average.

    During training the running statistics trail the (still-moving) weights
    by the EMA horizon, which leaves a train/eval gap — fatal for Ensembler's
    stage 3, where the frozen server bodies amplify any shift in the head's
    output distribution.  This pass resets the statistics of every
    ``BatchNorm2d`` inside ``modules`` and replays the training data through
    ``forward_fn`` in train mode, averaging the per-batch statistics exactly
    (PyTorch's ``momentum=None`` behaviour).  Stacked (batched-ensemble)
    batch-norm layers are recalibrated the same way: their ``(E, C)``
    running statistics reset and re-average per member in one fused replay.
    """
    bns = [m for module in modules for m in module.modules()
           if isinstance(m, (nn.BatchNorm2d, StackedBatchNorm2d))]
    if not bns:
        return
    saved = [(bn.momentum, bn.training) for bn in bns]
    for bn in bns:
        bn.running_mean[...] = 0.0
        bn.running_var[...] = 1.0
        bn.train(True)
    with no_grad():
        for index, start in enumerate(range(0, len(images), batch_size)):
            for bn in bns:
                bn.momentum = 1.0 / (index + 1)
            forward_fn(images[start:start + batch_size])
    for bn, (momentum, training) in zip(bns, saved):
        bn.momentum = momentum
        bn.train(training)


@dataclasses.dataclass
class EnsemblerTrainingResult:
    """Everything stage 1-3 produce, kept for evaluation and attacks."""

    model: EnsemblerModel
    stage1_nets: list[ResNet]
    stage1_noises: list[nn.Module]
    selector: Selector
    stage1_history: list[list[float]]
    stage3_history: list[float]


NoiseFactory = Callable[[tuple[int, int, int], np.random.Generator], nn.Module]


class EnsemblerTrainer:
    """Runs the three training stages and assembles the Ensembler model.

    ``noise_factory`` builds the per-net split-point noise module; the default
    is the paper's fixed Gaussian map.  The DR-N baseline of Table II reuses
    this trainer with a dropout factory and no stage-1 noise.
    """

    def __init__(
        self,
        model_config: ResNetConfig,
        image_hw: int,
        config: EnsemblerConfig,
        rng: np.random.Generator | None = None,
        noise_factory: NoiseFactory | None = None,
    ):
        self.model_config = model_config
        self.image_hw = image_hw
        self.config = config
        self.rng = rng if rng is not None else new_rng()
        self.intermediate_shape = model_config.intermediate_shape(image_hw)
        if noise_factory is None:
            sigma = config.sigma
            noise_factory = lambda shape, noise_rng: FixedGaussianNoise(shape, sigma, noise_rng)
        self.noise_factory = noise_factory

    # -- stage 1 -----------------------------------------------------------
    def train_stage1(self, dataset: ArrayDataset) -> tuple[list[ResNet], list[nn.Module],
                                                           list[list[float]]]:
        """Train the N distinct networks of Eq. 2.

        With the batched backend the N independent trainings run as one
        fused multi-net pass (:func:`run_stacked_sgd`): the N parameter sets
        stack along the ensemble axis, each net keeps its own batch-shuffle
        stream, loss and optimiser state, and one elementwise update per
        step advances all N.  The RNG spawn order (net init, noise map, SGD
        stream, per net) matches the looped path exactly, so both backends
        consume identical random streams; ensembles that cannot be stacked
        (e.g. DR-N's dropout noise) fall back to the per-net loop.
        """
        nets: list[ResNet] = []
        noises: list[nn.Module] = []
        sgd_rngs: list[np.random.Generator] = []
        for _ in range(self.config.num_nets):
            net = ResNet(self.model_config, rng=spawn_rng(self.rng))
            noise = self.noise_factory(self.intermediate_shape, spawn_rng(self.rng))
            net.train()
            noise.train()
            nets.append(net)
            noises.append(noise)
            sgd_rngs.append(spawn_rng(self.rng))
        histories = None
        if self.config.backend == "batched" and len(nets) > 1:
            histories = self._train_stage1_fused(nets, noises, dataset, sgd_rngs)
        if histories is None:
            histories = []
            for index, (net, noise, sgd_rng) in enumerate(zip(nets, noises, sgd_rngs)):
                def loss_fn(images, labels, net=net, noise=noise):
                    features = noise(net.head(Tensor(images)))
                    logits = net.tail(net.body(features))
                    return F.cross_entropy(logits, labels)

                history = run_sgd(net.parameters(), loss_fn, dataset,
                                  self.config.stage1, sgd_rng)
                logger.info("stage1 net %d final loss %.4f", index, history[-1])
                histories.append(history)
        self._recalibrate_stage1(nets, noises, dataset)
        for net in nets:
            net.eval()
        return nets, noises, histories

    def _train_stage1_fused(self, nets: list[ResNet], noises: list[nn.Module],
                            dataset: ArrayDataset,
                            sgd_rngs: list[np.random.Generator]
                            ) -> list[list[float]] | None:
        """One fused multi-net SGD pass over all N stage-1 networks.

        Returns the per-net histories, or ``None`` when the ensemble cannot
        be stacked (the caller then runs the reference per-net loop).
        """
        try:
            stacked_nets = stack_modules(nets)
            stacked_noise = stack_modules(noises)
        except UnstackableError:
            return None
        stacked_nets.train(True)
        stacked_noise.train(True)

        def loss_fn(images, labels):
            features = stacked_noise(stacked_nets.head(Tensor(images)))
            logits = stacked_nets.tail(stacked_nets.body(features))
            return batched_cross_entropy(logits, labels)

        histories = run_stacked_sgd(stacked_nets.parameters(), loss_fn, dataset,
                                    self.config.stage1, sgd_rngs)
        stacked_nets.unstack_to(nets)
        for index, history in enumerate(histories):
            logger.info("stage1 net %d final loss %.4f", index, history[-1])
        return histories

    def _recalibrate_stage1(self, nets: list[ResNet], noises: list[nn.Module],
                            dataset: ArrayDataset) -> None:
        """Close the stage-1 BN train/eval gap for all N nets.

        With the batched backend the N per-net replays collapse into one
        fused :func:`~repro.nn.batched.stack_modules` pass (the N nets are
        architecturally identical by construction); the recalibrated running
        statistics are written back into the loop-format nets, so downstream
        stages see no difference.  Falls back to per-net replays when the
        nets or their noise modules cannot be stacked (e.g. DR-N's dropout).
        """
        batch_size = self.config.stage1.batch_size
        if self.config.backend == "batched" and len(nets) > 1:
            try:
                stacked_nets = stack_modules(nets)
                stacked_noise = stack_modules(noises)
            except UnstackableError:
                pass
            else:
                def replay(images):
                    features = stacked_noise(stacked_nets.head(Tensor(images)))
                    return stacked_nets.tail(stacked_nets.body(features))

                recalibrate_batchnorm([stacked_nets], replay, dataset.images,
                                      batch_size)
                stacked_nets.unstack_to(nets)
                return
        for net, noise in zip(nets, noises):
            def replay(images, net=net, noise=noise):
                return net.tail(net.body(noise(net.head(Tensor(images)))))

            recalibrate_batchnorm([net], replay, dataset.images, batch_size)

    # -- stage 2 -----------------------------------------------------------
    def select(self) -> Selector:
        """Secretly select P of the N networks."""
        return Selector.random(self.config.num_nets, self.config.num_active,
                               spawn_rng(self.rng))

    # -- stage 3 -----------------------------------------------------------
    def train_stage3(
        self,
        dataset: ArrayDataset,
        nets: list[ResNet],
        selector: Selector,
    ) -> tuple[EnsemblerModel, list[float]]:
        """Re-train a fresh head/tail against the frozen selected bodies (Eq. 3)."""
        config = self.config
        head = ResNetHead(self.model_config, spawn_rng(self.rng))
        tail = ResNetTail(self.model_config, spawn_rng(self.rng),
                          in_multiplier=selector.num_active)
        noise = self.noise_factory(self.intermediate_shape, spawn_rng(self.rng))

        bodies = [net.body for net in nets]
        stage1_heads = [net.head for net in nets]
        for body in bodies:
            body.requires_grad_(False)
            body.eval()  # freeze batch-norm statistics as well
        for s1_head in stage1_heads:
            s1_head.requires_grad_(False)
            s1_head.eval()
        selected_bodies = [bodies[i] for i in selector.indices]
        selected_heads = [stage1_heads[i] for i in selector.indices]
        head.train()
        tail.train()

        # Batched backend: evaluate the P frozen bodies as one fused pass per
        # batch.  Their parameters are frozen, so gradients only flow through
        # the batched ops back into the new head — exactly as in the loop.
        stacked_selected = None
        if config.backend == "batched" and len(selected_bodies) > 1:
            stacked_selected = StackedBodies.try_build(selected_bodies, eval_mode=True)

        standardize = config.regularizer == "standardized_cosine"

        def prepare(features: Tensor) -> Tensor:
            """Flatten head output for the similarity penalty.

            With the standardized variant, features are centred and scaled by
            their batch statistics first, so the penalty measures the
            *image-dependent* correlation between heads — the component an
            attacker's traffic-standardised decoder actually exploits — and
            not just the static mean/scale offsets.
            """
            if standardize:
                mean = Tensor(features.data.mean(axis=0))
                std = Tensor(features.data.std(axis=0) + 1e-3)
                features = (features - mean) / std
            return features.flatten()

        def loss_fn(images, labels):
            x = Tensor(images)
            head_out = head(x)
            features = noise(head_out)
            if stacked_selected is not None:
                branch_outputs = unbind(stacked_selected(features))
            else:
                branch_outputs = [body(features) for body in selected_bodies]
            logits = tail(selector.apply_subset(branch_outputs))
            loss = F.cross_entropy(logits, labels)
            if config.lambda_reg > 0:
                # "Quasi-orthogonal to all of the previous heads": penalise the
                # largest absolute similarity (anti-correlation is as
                # invertible as correlation, so both directions are penalised).
                flat_new = prepare(head_out)
                sims = [F.cosine_similarity(flat_new, prepare(s1(x).detach()).detach())
                        .mean().abs() for s1 in selected_heads]
                penalty = nn.stack(sims).max()
                loss = loss + config.lambda_reg * penalty
            return loss

        params = head.parameters() + tail.parameters()
        history = run_sgd(params, loss_fn, dataset, config.stage3, spawn_rng(self.rng))
        # Close the BN train/eval gap: the frozen bodies amplify any shift in
        # the head's output distribution, so the head's running statistics
        # must match its final weights exactly.
        recalibrate_batchnorm([head], lambda images: head(Tensor(images)),
                              dataset.images, config.stage3.batch_size)
        head.eval()
        tail.eval()
        logger.info("stage3 final loss %.4f", history[-1])
        model = EnsemblerModel(head, bodies, tail, selector, noise,
                               backend=config.backend)
        return model, history

    # -- full pipeline -----------------------------------------------------
    def train(self, dataset: ArrayDataset) -> EnsemblerTrainingResult:
        """Run stages 1-3 end to end."""
        nets, noises, stage1_history = self.train_stage1(dataset)
        selector = self.select()
        model, stage3_history = self.train_stage3(dataset, nets, selector)
        return EnsemblerTrainingResult(
            model=model,
            stage1_nets=nets,
            stage1_noises=noises,
            selector=selector,
            stage1_history=stage1_history,
            stage3_history=stage3_history,
        )
