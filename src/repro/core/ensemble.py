"""The Ensembler model: client head/tail + N server bodies + secret selector.

This is the inference-time object of Fig. 2 (top).  ``forward`` follows the
client's view (only the P selected bodies matter); ``server_outputs`` follows
the server's view (all N bodies run, because the server cannot know which
ones are active).

Execution backends
------------------
The bodies can run on two interchangeable backends:

* ``"batched"`` (default) — the N bodies are compiled once into a
  :class:`~repro.nn.batched.StackedBodies` and every query runs as a single
  fused NumPy pass (one im2col + one wide matmul per layer), which is what
  makes the "run all N so the selection stays secret" protocol affordable.
  Construction falls back to looped automatically when the bodies are
  architecturally heterogeneous (:class:`~repro.nn.batched.UnstackableError`).
* ``"looped"`` — a Python loop over the N independent graphs; always
  available and used as the reference implementation in tests.

The stacked engine holds a *copy* of the bodies' parameters (kept out of
``state_dict`` so checkpoints stay loop-compatible); :meth:`EnsemblerModel.sync_stacked`
refreshes it and is called automatically by :meth:`load_state_dict`.  In
train mode every forward runs looped so BatchNorm running statistics update
in the bodies themselves — the mirror is refreshed when the model returns
to eval mode.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.noise import FixedGaussianNoise
from repro.core.selector import Selector
from repro.nn.batched import StackedBodies, unbind
from repro.nn.tensor import Tensor


class EnsemblerModel(nn.Module):
    """Complete Ensembler pipeline.

    Parameters
    ----------
    head, tail:
        The client's private layers (``M_c,h``, ``M_c,t``); the tail input
        width must equal ``P * feature_dim`` because the selector concatenates.
    bodies:
        The N server networks ``{M_s^i}`` (trained in stage 1, frozen after).
    selector:
        The stage-2 secret selector.
    noise:
        The stage-3 fixed Gaussian noise added to the head output.
    backend:
        ``"batched"`` fuses the N bodies into one stacked pass (falling back
        to looped for heterogeneous bodies); ``"looped"`` always evaluates
        them one by one.
    """

    def __init__(self, head: nn.Module, bodies: list[nn.Module], tail: nn.Module,
                 selector: Selector, noise: nn.Module, backend: str = "batched"):
        super().__init__()
        if backend not in ("batched", "looped"):
            raise ValueError("backend must be 'batched' or 'looped'")
        if len(bodies) != selector.num_nets:
            raise ValueError("selector arity must match the number of bodies")
        self.head = head
        self.bodies = nn.ModuleList(bodies)
        self.tail = tail
        self.noise = noise
        self.selector = selector  # plain attribute: not a module, has no weights
        # The stacked engine is deliberately NOT registered as a submodule:
        # its parameters are a mirror of ``bodies``, and registering it would
        # double-count them in state_dict()/parameters().
        self.backend = "looped"
        object.__setattr__(self, "_stacked", None)
        object.__setattr__(self, "_stacked_active", None)
        if backend == "batched":
            stacked = StackedBodies.try_build(list(bodies))
            if stacked is not None:
                active = StackedBodies([bodies[i] for i in selector.indices])
                object.__setattr__(self, "_stacked", stacked)
                object.__setattr__(self, "_stacked_active", active)
                self.backend = "batched"
                self._match_stacked_mode()

    @property
    def num_nets(self) -> int:
        return len(self.bodies)

    # -- backend maintenance -------------------------------------------
    def _match_stacked_mode(self) -> None:
        if self._stacked is None:
            return
        mode = next(iter(self.bodies)).training if len(self.bodies) else False
        self._stacked.train(mode)
        self._stacked_active.train(mode)

    def sync_stacked(self) -> "EnsemblerModel":
        """Refresh the stacked engine from the (possibly mutated) bodies."""
        if self._stacked is not None:
            bodies = list(self.bodies)
            self._stacked.sync_from(bodies)
            self._stacked_active.sync_from([bodies[i] for i in self.selector.indices])
            self._match_stacked_mode()
        return self

    def train(self, mode: bool = True) -> "EnsemblerModel":
        super().train(mode)
        if self._stacked is not None:
            self._stacked.train(mode)
            self._stacked_active.train(mode)
            if not mode:
                # Train-mode forwards ran looped and may have updated the
                # bodies' BN running stats; refresh the mirror before the
                # batched path serves eval queries again.
                self.sync_stacked()
        return self

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self.sync_stacked()

    # -- inference ------------------------------------------------------
    def intermediate(self, x: Tensor) -> Tensor:
        """What the client uploads: ``M_c,h(x) + N(0, σ)``."""
        return self.noise(self.head(x))

    def server_outputs(self, features: Tensor, backend: str | None = None) -> list[Tensor]:
        """The server's honest computation: every body, in index order.

        With the batched backend all N bodies run as one fused pass and the
        result is unbound into the per-body list the protocol transmits.
        """
        use = self.backend if backend is None else backend
        if use == "batched" and self._stacked is not None and not self.training:
            return unbind(self._stacked(features))
        # Looped path — also taken in train mode, so that BatchNorm running
        # statistics update in the bodies themselves (the source of truth)
        # rather than in the stacked mirror.
        return [body(features) for body in self.bodies]

    def server_outputs_stacked(self, features: Tensor) -> Tensor:
        """All N body outputs as one ``(N_bodies, batch, ...)`` tensor."""
        if self._stacked is not None and not self.training:
            return self._stacked(features)
        return nn.stack([body(features) for body in self.bodies])

    def forward(self, x: Tensor) -> Tensor:
        """Client-perspective forward: only the selected bodies are evaluated."""
        features = self.intermediate(x)
        if (self.backend == "batched" and self._stacked_active is not None
                and not self.training):
            selected = unbind(self._stacked_active(features))
        else:
            selected = [self.bodies[i](features) for i in self.selector.indices]
        return self.tail(self.selector.apply_subset(selected))

    def forward_full_protocol(self, x: Tensor) -> Tensor:
        """Protocol-faithful forward: all N bodies run, then the selector.

        Numerically identical to :meth:`forward`; used by tests to pin down
        that the client-side shortcut does not change predictions.
        """
        features = self.intermediate(x)
        outputs = self.server_outputs(features)
        return self.tail(self.selector(outputs))

    def client_parameters(self) -> list[nn.Parameter]:
        return self.head.parameters() + self.tail.parameters()

    def server_parameters(self) -> list[nn.Parameter]:
        return [p for body in self.bodies for p in body.parameters()]
