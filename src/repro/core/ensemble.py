"""The Ensembler model: client head/tail + N server bodies + secret selector.

This is the inference-time object of Fig. 2 (top).  ``forward`` follows the
client's view (only the P selected bodies matter); ``server_outputs`` follows
the server's view (all N bodies run, because the server cannot know which
ones are active).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.noise import FixedGaussianNoise
from repro.core.selector import Selector
from repro.nn.tensor import Tensor


class EnsemblerModel(nn.Module):
    """Complete Ensembler pipeline.

    Parameters
    ----------
    head, tail:
        The client's private layers (``M_c,h``, ``M_c,t``); the tail input
        width must equal ``P * feature_dim`` because the selector concatenates.
    bodies:
        The N server networks ``{M_s^i}`` (trained in stage 1, frozen after).
    selector:
        The stage-2 secret selector.
    noise:
        The stage-3 fixed Gaussian noise added to the head output.
    """

    def __init__(self, head: nn.Module, bodies: list[nn.Module], tail: nn.Module,
                 selector: Selector, noise: nn.Module):
        super().__init__()
        if len(bodies) != selector.num_nets:
            raise ValueError("selector arity must match the number of bodies")
        self.head = head
        self.bodies = nn.ModuleList(bodies)
        self.tail = tail
        self.noise = noise
        self.selector = selector  # plain attribute: not a module, has no weights

    @property
    def num_nets(self) -> int:
        return len(self.bodies)

    def intermediate(self, x: Tensor) -> Tensor:
        """What the client uploads: ``M_c,h(x) + N(0, σ)``."""
        return self.noise(self.head(x))

    def server_outputs(self, features: Tensor) -> list[Tensor]:
        """The server's honest computation: every body, in index order."""
        return [body(features) for body in self.bodies]

    def forward(self, x: Tensor) -> Tensor:
        """Client-perspective forward: only the selected bodies are evaluated."""
        features = self.intermediate(x)
        selected = [self.bodies[i](features) for i in self.selector.indices]
        return self.tail(self.selector.apply_subset(selected))

    def forward_full_protocol(self, x: Tensor) -> Tensor:
        """Protocol-faithful forward: all N bodies run, then the selector.

        Numerically identical to :meth:`forward`; used by tests to pin down
        that the client-side shortcut does not change predictions.
        """
        features = self.intermediate(x)
        outputs = self.server_outputs(features)
        return self.tail(self.selector(outputs))

    def client_parameters(self) -> list[nn.Parameter]:
        return self.head.parameters() + self.tail.parameters()

    def server_parameters(self) -> list[nn.Parameter]:
        return [p for body in self.bodies for p in body.parameters()]
