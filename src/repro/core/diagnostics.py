"""Mechanism diagnostics for the selective ensemble.

The paper's defense rests on two measurable properties: (1) the N stage-1
heads are mutually dissimilar (driven by the quasi-orthogonal noise maps),
and (2) the stage-3 head is dissimilar from *every* stage-1 head (driven by
the Eq. 3 regulariser).  These helpers quantify both so experiments and users
can verify the mechanism rather than trust it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor, no_grad


def _flat_features(head: nn.Module, images: np.ndarray,
                   standardize: bool) -> np.ndarray:
    with no_grad():
        features = head(Tensor(images)).data
    if standardize:
        mean = features.mean(axis=0, keepdims=True)
        std = features.std(axis=0, keepdims=True) + 1e-3
        features = (features - mean) / std
    return features.reshape(len(images), -1)


def head_similarity(head_a: nn.Module, head_b: nn.Module, images: np.ndarray,
                    standardize: bool = True) -> float:
    """Mean per-sample cosine similarity between two heads' feature maps.

    With ``standardize=True`` the static mean/scale maps are removed first,
    so the score measures the *image-dependent* representation overlap — the
    component a transfer attack can exploit.
    """
    a = _flat_features(head_a, images, standardize)
    b = _flat_features(head_b, images, standardize)
    dots = (a * b).sum(axis=1)
    norms = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1) + 1e-8
    return float((dots / norms).mean())


def head_similarity_matrix(heads: list[nn.Module], images: np.ndarray,
                           standardize: bool = True) -> np.ndarray:
    """Pairwise head-similarity matrix (symmetric, unit diagonal)."""
    n = len(heads)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = head_similarity(
                heads[i], heads[j], images, standardize)
    return matrix


@dataclasses.dataclass(frozen=True)
class MechanismReport:
    """Quantified Section III-C claims for one trained Ensembler."""

    stage1_pairwise: np.ndarray          # (N, N) similarity between stage-1 heads
    stage3_vs_stage1: np.ndarray         # (N,) similarity of the final head to each
    selected_indices: tuple[int, ...]

    @property
    def max_stage1_offdiagonal(self) -> float:
        matrix = self.stage1_pairwise.copy()
        np.fill_diagonal(matrix, -np.inf)
        return float(matrix.max())

    @property
    def max_stage3_vs_selected(self) -> float:
        """The quantity the Eq. 3 regulariser minimises."""
        return float(np.abs(self.stage3_vs_stage1[list(self.selected_indices)]).max())

    def summary(self) -> str:
        return (f"stage-1 max pairwise similarity: {self.max_stage1_offdiagonal:+.3f}; "
                f"stage-3 vs selected heads (max |sim|): "
                f"{self.max_stage3_vs_selected:+.3f}")


def mechanism_report(training_result, images: np.ndarray,
                     standardize: bool = True) -> MechanismReport:
    """Build a :class:`MechanismReport` from an
    :class:`~repro.core.training.EnsemblerTrainingResult`."""
    stage1_heads = [net.head for net in training_result.stage1_nets]
    pairwise = head_similarity_matrix(stage1_heads, images, standardize)
    final_head = training_result.model.head
    versus = np.array([head_similarity(final_head, head, images, standardize)
                       for head in stage1_heads])
    return MechanismReport(pairwise, versus, training_result.selector.indices)
