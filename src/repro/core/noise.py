"""Noise layers applied to the intermediate features at the split point.

The paper uses *fixed* Gaussian noise ``g ~ N(0, 0.1)`` (Section IV-A): a
noise map drawn once and added to every intermediate output.  Stage 1 gives
each of the N networks its own independently drawn map — randomly initialised
maps are quasi-orthogonal, which is what forces the N heads apart (Section
III-C).  A fresh-per-call variant is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class FixedGaussianNoise(nn.Module):
    """Additive noise map drawn once at construction (the paper's ``N(0, σ)^i``).

    The map has the shape of one intermediate feature tensor (C, H, W) and is
    broadcast over the batch.  It is registered as a buffer: the client keeps
    it with the model, while the server never sees it.
    """

    def __init__(self, shape: tuple[int, ...], sigma: float,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        rng = rng if rng is not None else new_rng()
        self.sigma = sigma
        self.register_buffer("noise", rng.normal(0.0, sigma, size=shape).astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return x + Tensor(self.noise)


class FreshGaussianNoise(nn.Module):
    """Noise re-sampled on every call (ablation; not the paper's default)."""

    def __init__(self, sigma: float, rng: np.random.Generator | None = None):
        super().__init__()
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = rng if rng is not None else new_rng()

    def forward(self, x: Tensor) -> Tensor:
        if self.sigma == 0.0:
            return x
        noise = self._rng.normal(0.0, self.sigma, size=x.shape).astype(np.float32)
        return x + Tensor(noise)
