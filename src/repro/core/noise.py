"""Noise layers applied to the intermediate features at the split point.

The paper uses *fixed* Gaussian noise ``g ~ N(0, 0.1)`` (Section IV-A): a
noise map drawn once and added to every intermediate output.  Stage 1 gives
each of the N networks its own independently drawn map — randomly initialised
maps are quasi-orthogonal, which is what forces the N heads apart (Section
III-C).  A fresh-per-call variant is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import batched
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class FixedGaussianNoise(nn.Module):
    """Additive noise map drawn once at construction (the paper's ``N(0, σ)^i``).

    The map has the shape of one intermediate feature tensor (C, H, W) and is
    broadcast over the batch.  It is registered as a buffer: the client keeps
    it with the model, while the server never sees it.
    """

    def __init__(self, shape: tuple[int, ...], sigma: float,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        rng = rng if rng is not None else new_rng()
        self.sigma = sigma
        self.register_buffer("noise", rng.normal(0.0, sigma, size=shape).astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return x + Tensor(self.noise)


@batched.register_stacker(FixedGaussianNoise)
class StackedFixedGaussianNoise(batched.StackedModule):
    """E fixed noise maps applied in one pass: ``x + noise[e]`` per member.

    Used by the batched stage-1 BN recalibration, where each of the N
    stage-1 networks replays the training data through its own noise map.
    """

    def __init__(self, mods: list[FixedGaussianNoise]):
        super().__init__()
        self.num_stacked = len(mods)
        shapes = {m.noise.shape for m in mods}
        if len(shapes) != 1:
            raise batched.UnstackableError(f"noise map shapes differ: {sorted(shapes)}")
        self.register_buffer("noise", np.stack([m.noise for m in mods]))

    def forward(self, x: Tensor) -> Tensor:
        e = self.num_stacked
        return x + Tensor(self.noise.reshape(e, 1, *self.noise.shape[1:]))

    def sync_from(self, mods: list[FixedGaussianNoise]) -> "StackedFixedGaussianNoise":
        mods = self._check_arity(mods)
        self.noise[...] = np.stack([m.noise for m in mods])
        return self

    def unstack_to(self, mods: list[FixedGaussianNoise]) -> "StackedFixedGaussianNoise":
        mods = self._check_arity(mods)
        for i, mod in enumerate(mods):
            mod.noise[...] = self.noise[i]
        return self


class FreshGaussianNoise(nn.Module):
    """Noise re-sampled on every call (ablation; not the paper's default)."""

    def __init__(self, sigma: float, rng: np.random.Generator | None = None):
        super().__init__()
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = rng if rng is not None else new_rng()

    def forward(self, x: Tensor) -> Tensor:
        if self.sigma == 0.0:
            return x
        noise = self._rng.normal(0.0, self.sigma, size=x.shape).astype(np.float32)
        return x + Tensor(noise)
