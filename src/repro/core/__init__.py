"""The Ensembler defense — the paper's primary contribution.

* :class:`~repro.core.selector.Selector` — the client-secret P-of-N
  activation (Eq. 1).
* :class:`~repro.core.noise.FixedGaussianNoise` — the fixed noise maps that
  diversify the stage-1 networks.
* :class:`~repro.core.ensemble.EnsemblerModel` — the assembled pipeline.
* :class:`~repro.core.training.EnsemblerTrainer` — the three-stage training
  procedure (Eqs. 2 and 3).
"""

from repro.core.diagnostics import (
    MechanismReport,
    head_similarity,
    head_similarity_matrix,
    mechanism_report,
)
from repro.core.ensemble import EnsemblerModel
from repro.core.noise import FixedGaussianNoise, FreshGaussianNoise
from repro.core.selector import Selector, brute_force_search_space, enumerate_subsets
from repro.core.training import (
    EnsemblerConfig,
    EnsemblerTrainer,
    EnsemblerTrainingResult,
    TrainingConfig,
    run_sgd,
)

__all__ = [
    "EnsemblerConfig",
    "EnsemblerModel",
    "EnsemblerTrainer",
    "EnsemblerTrainingResult",
    "FixedGaussianNoise",
    "FreshGaussianNoise",
    "MechanismReport",
    "Selector",
    "TrainingConfig",
    "brute_force_search_space",
    "enumerate_subsets",
    "head_similarity",
    "head_similarity_matrix",
    "mechanism_report",
    "run_sgd",
]
