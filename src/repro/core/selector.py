"""The client-secret Selector (Eq. 1 of the paper).

The selector activates P of the N feature vectors returned by the server,
scales each by ``S_i = 1/P`` and concatenates them as the tail's input:

    Sel[M_s(x)] = Concat[S_i ⊙ f  for f in  M_s(x')_p]

The selection is the client's secret — it is never transmitted, and the
expected brute-force cost for the server to find it is O(2^N) (Section III-D).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.nn.tensor import Tensor, concat
from repro.utils.rng import new_rng


class Selector:
    """Secret P-of-N activation with 1/P normalisation and concatenation."""

    def __init__(self, num_nets: int, indices: tuple[int, ...]):
        indices = tuple(sorted(int(i) for i in indices))
        if not indices:
            raise ValueError("selector must activate at least one net")
        if len(set(indices)) != len(indices):
            raise ValueError("selector indices must be unique")
        if indices[0] < 0 or indices[-1] >= num_nets:
            raise ValueError(f"indices must lie in [0, {num_nets})")
        self.num_nets = num_nets
        self._indices = indices

    @classmethod
    def random(cls, num_nets: int, num_active: int,
               rng: np.random.Generator | None = None) -> "Selector":
        """Stage-2 of the training pipeline: secretly select P of the N nets."""
        if not 1 <= num_active <= num_nets:
            raise ValueError("need 1 <= num_active <= num_nets")
        rng = rng if rng is not None else new_rng()
        chosen = rng.choice(num_nets, size=num_active, replace=False)
        return cls(num_nets, tuple(int(i) for i in chosen))

    @property
    def indices(self) -> tuple[int, ...]:
        """The secret subset.  Client-side code only."""
        return self._indices

    @property
    def num_active(self) -> int:
        return len(self._indices)

    def __call__(self, features: list[Tensor]) -> Tensor:
        """Apply Eq. 1 to the N returned feature tensors."""
        if len(features) != self.num_nets:
            raise ValueError(f"expected {self.num_nets} feature tensors, got {len(features)}")
        scale = 1.0 / self.num_active
        activated = [features[i] * scale for i in self._indices]
        return concat(activated, axis=1)

    def apply_subset(self, features: list[Tensor]) -> Tensor:
        """Apply the selector when only the P activated features are provided
        (stage-3 training evaluates just the frozen selected bodies)."""
        if len(features) != self.num_active:
            raise ValueError(f"expected {self.num_active} activated tensors")
        scale = 1.0 / self.num_active
        return concat([f * scale for f in features], axis=1)

    def overlap(self, other: "Selector") -> float:
        """Fraction of this subset shared with ``other`` (Jaccard-free).

        ``|self ∩ other| / P`` — the quantity that bounds how much of a
        *leaked* subset stays useful after a switching-ensemble rotation
        re-draws the secret: an adversary decoding with the stale subset
        aligns only the overlapping channels (see
        :mod:`repro.privacy.rotation`).
        """
        if other.num_nets != self.num_nets:
            raise ValueError(f"selectors span different ensembles: "
                             f"{self.num_nets} vs {other.num_nets}")
        shared = len(set(self._indices) & set(other._indices))
        return shared / self.num_active

    def __repr__(self) -> str:  # does not leak the secret subset
        return f"Selector(num_nets={self.num_nets}, num_active={self.num_active})"


def brute_force_search_space(num_nets: int, num_active: int | None = None) -> int:
    """Number of candidate subsets an attacker must try (Section III-D).

    Without knowledge of P the space is all non-empty subsets, 2^N - 1;
    knowing P it is C(N, P).
    """
    if num_active is None:
        return 2**num_nets - 1
    return math.comb(num_nets, num_active)


def enumerate_subsets(num_nets: int, num_active: int | None = None):
    """Yield candidate selector subsets in deterministic order."""
    if num_active is not None:
        yield from itertools.combinations(range(num_nets), num_active)
        return
    for size in range(1, num_nets + 1):
        yield from itertools.combinations(range(num_nets), size)
