"""First-order optimisers and learning-rate schedulers.

The ``Stacked*`` variants drive fused multi-net training
(:mod:`repro.nn.batched`): every parameter carries a leading **ensemble
axis** ``E`` and the loss is a sum of E per-member losses, so each member's
slice of the gradient is exactly its own gradient.  Because the SGD/Adam
update rules are elementwise, applying them to the stacked tensors *is* the
per-member update — the momentum/Adam moment buffers simply inherit the
leading axis, giving every member independent optimiser state in one pass.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.modules import Parameter


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


def _check_stacked(params: list[Parameter], num_stacked: int) -> list[Parameter]:
    """Validate that every parameter carries the leading ensemble axis."""
    params = list(params)
    if num_stacked < 1:
        raise ValueError("need at least one stacked member")
    for param in params:
        if param.ndim < 1 or param.shape[0] != num_stacked:
            raise ValueError(
                f"stacked optimiser expects a leading ensemble axis of "
                f"{num_stacked}, got parameter shape {param.shape}")
    return params


class StackedSGD(SGD):
    """Momentum SGD over E stacked parameter sets in one elementwise pass.

    Exactly equivalent to E independent :class:`SGD` instances over the
    member slices (the velocity buffers carry the leading ensemble axis);
    ``member_state`` exposes one member's slices for inspection and parity
    tests.
    """

    def __init__(self, params: list[Parameter], num_stacked: int, lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(_check_stacked(params, num_stacked), lr,
                         momentum=momentum, weight_decay=weight_decay,
                         nesterov=nesterov)
        self.num_stacked = num_stacked

    def member_state(self, member: int) -> list[np.ndarray]:
        """The given member's velocity buffers (views, not copies)."""
        return [velocity[member] for velocity in self._velocity]


class StackedAdam(Adam):
    """Adam over E stacked parameter sets in one elementwise pass.

    The first/second moment buffers carry the leading ensemble axis; the
    bias-correction step count is shared, which matches E independent
    :class:`Adam` runs stepping in lockstep.
    """

    def __init__(self, params: list[Parameter], num_stacked: int, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(_check_stacked(params, num_stacked), lr, betas=betas,
                         eps=eps, weight_decay=weight_decay, decoupled=decoupled)
        self.num_stacked = num_stacked

    def member_state(self, member: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """The given member's (m, v) moment buffers (views, not copies)."""
        return [(m[member], v[member]) for m, v in zip(self._m, self._v)]


class LRScheduler:
    """Base class for learning-rate schedules driving an optimiser in place."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
