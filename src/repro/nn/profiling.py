"""FLOP accounting for the latency model.

A :class:`FlopCounter` context activates a global counter that instrumented
operations (convolution, linear, batch-norm, pooling) report into.  Counting
happens on the *real* executed graph, so arbitrary module compositions
(residual blocks, ensembles) are handled without per-module bookkeeping.
"""

from __future__ import annotations

import contextlib

_active_counter: "FlopCounter | None" = None


class FlopCounter:
    """Accumulates floating-point operations while active."""

    def __init__(self):
        self.total = 0
        self.by_kind: dict[str, int] = {}

    def add(self, kind: str, flops: int) -> None:
        self.total += flops
        self.by_kind[kind] = self.by_kind.get(kind, 0) + flops

    def __enter__(self) -> "FlopCounter":
        global _active_counter
        if _active_counter is not None:
            raise RuntimeError("FlopCounter contexts cannot nest")
        _active_counter = self
        return self

    def __exit__(self, *exc) -> None:
        global _active_counter
        _active_counter = None


def record(kind: str, flops: int) -> None:
    """Report ``flops`` to the active counter, if any (hot-path safe)."""
    if _active_counter is not None:
        _active_counter.add(kind, int(flops))


def count_forward_flops(module, images) -> int:
    """FLOPs of one forward pass of ``module`` on ``images`` (NCHW array)."""
    from repro.nn.tensor import Tensor, no_grad

    with FlopCounter() as counter:
        with no_grad():
            module(Tensor(images))
    return counter.total
