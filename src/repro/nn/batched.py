"""Batched-ensemble execution: run E architecturally identical modules at once.

Ensembler's protocol requires the server to run *all* N bodies per query so
the client's selection stays secret.  Executing them as a Python loop over N
independent graphs pays N× interpreter and im2col overhead; this module
instead stacks the N parameter sets along a leading **ensemble axis** and
runs all members in one fused NumPy pass, so the heavy lifting stays inside
a single wide (or batched) BLAS matmul per layer.

Conventions
-----------
Activations carry a leading ensemble axis ``E``: convolutional features are
``(E, N, C, H, W)`` and pooled features are ``(E, N, C)``.  A plain NCHW
(4-D) or NC (2-D) input is interpreted as *shared* across all members — the
common entry case, since every body receives the same uploaded features.
The first parametric layer then lowers the shared input once (one im2col)
and applies one ``(E·out_c, C·kh·kw)`` matmul, after which activations are
per-member.

Stacking
--------
:func:`stack_modules` compiles a list of architecturally identical modules
into a mirrored ``Stacked*`` tree via a type registry; composite layers
(e.g. residual blocks) register their own stackers with
:func:`register_stacker`.  :class:`StackedBodies` wraps the compiled tree
and adds ``sync_from`` / ``unstack_to`` so loop-trained checkpoints and the
stacked engine stay interchangeable.  All batched ops support autograd, so
joint fine-tuning can run through the stacked graph as well; modules that
cannot be stacked raise :class:`UnstackableError`, which callers use to fall
back to the looped path.

Registry extension points
-------------------------
The registry covers every topology the reproduction executes hot: the
classifier stack (``Conv2d``/``Linear``/``BatchNorm2d``/pooling/``ReLU``),
the *decoder* stack used by the inversion attacks
(``ConvTranspose2d``/``UpsampleNearest2d``/``Sigmoid``), and the composite
model pieces which register themselves next to their definitions
(``BasicBlock``/``ResNetHead``/… in :mod:`repro.models.resnet`,
``ShadowHead`` in :mod:`repro.models.shadow`, ``FixedGaussianNoise`` in
:mod:`repro.core.noise`).  To make a new layer stackable:

1. decorate a ``StackedModule`` subclass with
   ``@register_stacker(MyLayer)``; its ``__init__`` receives the member
   list and must set ``num_stacked``;
2. stack parameters with :func:`_stacked_parameter` (leading ensemble
   axis) and validate shared hyper-parameters with :func:`common_attr`;
3. express ``forward`` in the ``batched_*`` functional ops (or
   :func:`_fold_spatial` for per-sample NCHW ops) so a shared 4-D input
   and a per-member 5-D input both work;
4. leave ``sync_from`` / ``unstack_to`` alone if the stacked module only
   holds stacked children — the structural defaults recurse; override them
   only on parameter-holding leaves.

Training through a stacked tree is supported end to end: per-member losses
(:func:`batched_cross_entropy`, :func:`batched_mse`) reduce to an ``(E,)``
vector whose sum backpropagates each member's own gradient into the stacked
parameters, and the stacked optimisers in :mod:`repro.nn.optim` keep
per-member state along the same leading axis.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn import profiling
from repro.nn.arena import active_arena
from repro.nn.functional import _col2im, _im2col
from repro.nn import functional as F
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    UpsampleNearest2d,
)
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.nn.tensor import stack as tensor_stack


class UnstackableError(TypeError):
    """Raised when a list of modules cannot be compiled into a stacked pass."""


# ----------------------------------------------------------------------
# Functional ops (ensemble axis leading)
# ----------------------------------------------------------------------


def unbind(stacked: Tensor) -> list[Tensor]:
    """Split a stacked ``(E, ...)`` tensor into E per-member tensors.

    Gradient routing is preserved, so downstream per-member consumers (the
    selector, per-net losses) compose with the fused forward.
    """
    return [stacked[i] for i in range(stacked.shape[0])]


def batched_linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map for E members at once; ``weight`` is ``(E, out, in)``.

    ``x`` is ``(E, N, in)`` (per-member) or ``(N, in)`` (shared input); the
    result is always ``(E, N, out)`` via one batched matmul.
    """
    e, out_features, in_features = weight.shape
    rows = int(np.prod(x.shape[:-1]))
    members = 1 if x.ndim == 3 else e
    profiling.record("linear", 2 * rows * members * out_features * in_features)
    out = x @ weight.transpose(0, 2, 1)
    if bias is not None:
        out = out + bias.reshape(e, 1, out_features)
    return out


def _pad_spatial(x: np.ndarray, padding: int,
                 out: np.ndarray | None = None) -> np.ndarray:
    """Zero-pad the trailing two (spatial) axes.

    Equivalent to ``np.pad`` but a plain alloc-and-assign: ``np.pad``'s
    generic machinery costs more Python time than a whole small conv layer
    on the fused hot path.  ``out``, when given, is an arena-recycled
    canvas of the padded shape whose contents are undefined: the border is
    re-zeroed and the interior assigned, so every element is written no
    matter what the previous pass (or a poisoning test) left behind.
    """
    if padding == 0:
        return x
    shape = x.shape[:-2] + (x.shape[-2] + 2 * padding, x.shape[-1] + 2 * padding)
    if out is None:
        out = np.zeros(shape, dtype=x.dtype)
        out[..., padding:-padding, padding:-padding] = x
        return out
    out[..., :padding, :] = 0
    out[..., -padding:, :] = 0
    out[..., padding:-padding, :padding] = 0
    out[..., padding:-padding, -padding:] = 0
    out[..., padding:-padding, padding:-padding] = x
    return out


def _conv_scratch(x: Tensor, weight: Tensor, bias: Tensor | None):
    """The active arena, if gradients cannot be flowing through this op.

    Backward closures capture the im2col column buffer, so scratch may
    only be recycled when no closure will be wired — exactly the
    condition :meth:`Tensor._make` uses to drop the backward function.
    """
    if is_grad_enabled() and (x.requires_grad or weight.requires_grad
                              or (bias is not None and bias.requires_grad)):
        return None
    return active_arena()


def _arena_pad(x: np.ndarray, padding: int, arena) -> np.ndarray:
    if arena is None or padding == 0:
        return _pad_spatial(x, padding)
    shape = x.shape[:-2] + (x.shape[-2] + 2 * padding, x.shape[-1] + 2 * padding)
    return _pad_spatial(x, padding, out=arena.take("pad", shape, x.dtype))


def batched_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution for E members in one fused pass.

    ``weight`` is ``(E, out_c, in_c, kh, kw)``.  For a shared 4-D input the
    image is lowered once and all E kernels apply as a single
    ``(E·out_c, C·kh·kw)`` matmul; for a per-member 5-D input the lowering
    runs over the folded ``E·N`` batch and a single batched matmul contracts
    each member with its own kernel.  Output is ``(E, N, out_c, oh, ow)``.
    """
    e, out_c, in_c, kh, kw = weight.shape
    shared = x.ndim == 4
    if shared:
        n, c, h, w = x.shape
    elif x.ndim == 5:
        xe, n, c, h, w = x.shape
        if xe != e:
            raise ValueError(f"input carries {xe} members, weight has {e}")
    else:
        raise ValueError(f"expected 4-D (shared) or 5-D input, got {x.shape}")
    if c != in_c:
        raise ValueError(f"weight expects {in_c} input channels, got {c}")
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"convolution output would be empty for input {x.shape}")
    k = in_c * kh * kw
    length = out_h * out_w
    hp, wp = h + 2 * padding, w + 2 * padding

    # Arena-recycled scratch (pad canvas, im2col columns, pre-transpose
    # matmul buffer) on the no-grad serving fast path.  Only buffers that
    # are provably consumed inside this op go to the arena — the returned
    # activation is always freshly allocated, so layer outputs (and the
    # response payloads sliced from them) never alias pooled memory.
    arena = _conv_scratch(x, weight, bias)
    if shared:
        x_pad = _arena_pad(x.data, padding, arena)
        cols_out = (arena.take("cols", (n, k, length), x_pad.dtype)
                    if arena is not None else None)
        cols = _im2col(x_pad, kh, kw, stride, out=cols_out)  # (N, K, L)
        w2 = weight.data.reshape(e * out_c, k)
        mm_dtype = np.result_type(w2.dtype, cols.dtype)
        mm_out = (arena.take("mm", (n, e * out_c, length), mm_dtype)
                  if arena is not None else None)
        out = np.matmul(w2[None, :, :], cols, out=mm_out)  # (N, E*out_c, L)
        out = np.ascontiguousarray(
            out.reshape(n, e, out_c, out_h, out_w).transpose(1, 0, 2, 3, 4)
        )
    else:
        x_pad = _arena_pad(x.data, padding, arena)
        cols_out = (arena.take("cols", (e * n, k, length), x_pad.dtype)
                    if arena is not None else None)
        cols = _im2col(x_pad.reshape(e * n, c, hp, wp), kh, kw, stride,
                       out=cols_out)
        cols = cols.reshape(e, n, k, length)
        w2 = weight.data.reshape(e, out_c, k)
        # The matmul result *is* the layer output here (the reshape below
        # is a view), so it must not come from the arena.
        out = np.matmul(w2[:, None, :, :], cols).reshape(e, n, out_c, out_h, out_w)
    profiling.record("conv2d", 2 * e * n * out_c * out_h * out_w * in_c * kh * kw)
    if bias is not None:
        # ``out`` is freshly materialised just above (contiguous copy on
        # the shared path, matmul product on the 5-D path), so the bias
        # lands in place — no extra full-tensor temporary.  This keeps a
        # folded conv←BN pair cheaper than the BN it replaced even for
        # originally bias-free convolutions.
        out += bias.data.reshape(e, 1, out_c, 1, 1)
        profiling.record("bias", e * n * out_c * out_h * out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(1, 3, 4)))
        if shared:
            g2 = np.ascontiguousarray(g.transpose(1, 0, 2, 3, 4)).reshape(
                n, e * out_c, length
            )
            if weight.requires_grad:
                dw = np.einsum("nol,nkl->ok", g2, cols, optimize=True)
                weight._accumulate(dw.reshape(weight.shape))
            if x.requires_grad:
                dcols = np.matmul(w2.T[None, :, :], g2)  # (N, K, L)
                x._accumulate(
                    _col2im(dcols, x.shape, kh, kw, stride, padding, out_h, out_w)
                )
        else:
            g2 = g.reshape(e, n, out_c, length)
            if weight.requires_grad:
                # (E·N, O, L) x (E·N, L, K) batched GEMM, then reduce the
                # batch axis: ~2x faster than the equivalent einsum, which
                # falls off the fast BLAS path for this contraction.
                dw = np.matmul(g2.reshape(e * n, out_c, length),
                               cols.reshape(e * n, k, length).transpose(0, 2, 1))
                dw = dw.reshape(e, n, out_c, k).sum(axis=1)
                weight._accumulate(dw.reshape(weight.shape))
            if x.requires_grad:
                dcols = np.matmul(w2.transpose(0, 2, 1)[:, None, :, :], g2)
                dx = _col2im(
                    dcols.reshape(e * n, k, length), (e * n, c, h, w),
                    kh, kw, stride, padding, out_h, out_w,
                )
                x._accumulate(dx.reshape(e, n, c, h, w))

    return Tensor._make(out, parents, backward)


def batched_conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    output_padding: int = 0,
) -> Tensor:
    """Transposed 2-D convolution for E members in one fused pass.

    ``weight`` is ``(E, in_c, out_c, kh, kw)`` (the stacked PyTorch layout).
    Mirrors :func:`repro.nn.functional.conv_transpose2d` per member: one
    batched matmul over the input positions followed by a strided col2im
    scatter.  A shared 4-D input is lowered once and all E kernels apply as
    a single ``(E·out_c·kh·kw, in_c)`` matmul; a per-member 5-D input uses
    one batched matmul.  Output is ``(E, N, out_c, oh, ow)``.
    """
    e, in_c, out_c, kh, kw = weight.shape
    if padding > kh - 1 or padding > kw - 1:
        raise ValueError("padding must be at most kernel_size - 1")
    if output_padding >= stride:
        raise ValueError("output_padding must be smaller than stride")
    shared = x.ndim == 4
    if shared:
        n, c, h, w = x.shape
    elif x.ndim == 5:
        xe, n, c, h, w = x.shape
        if xe != e:
            raise ValueError(f"input carries {xe} members, weight has {e}")
    else:
        raise ValueError(f"expected 4-D (shared) or 5-D input, got {x.shape}")
    if c != in_c:
        raise ValueError(f"weight expects {in_c} input channels, got {c}")
    out_h = (h - 1) * stride - 2 * padding + kh + output_padding
    out_w = (w - 1) * stride - 2 * padding + kw + output_padding
    k = out_c * kh * kw
    length = h * w
    w2 = weight.data.reshape(e, in_c, k)

    if shared:
        x_flat = x.data.reshape(n, c, length)
        wt = w2.transpose(0, 2, 1).reshape(e * k, in_c)
        cols = np.matmul(wt[None, :, :], x_flat)  # (N, E*K, L)
        cols = np.ascontiguousarray(
            cols.reshape(n, e, k, length).transpose(1, 0, 2, 3))
    else:
        x_flat = x.data.reshape(e, n, c, length)
        cols = np.matmul(w2.transpose(0, 2, 1)[:, None, :, :], x_flat)  # (E,N,K,L)
    out = _col2im(cols.reshape(e * n, k, length), (e * n, out_c, out_h, out_w),
                  kh, kw, stride, padding, h, w).reshape(e, n, out_c, out_h, out_w)
    profiling.record("conv2d", 2 * e * n * c * k * length)
    if bias is not None:
        out = out + bias.data.reshape(e, 1, out_c, 1, 1)
        profiling.record("bias", e * n * out_c * out_h * out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(1, 3, 4)))
        g_pad = _pad_spatial(g, padding)
        gcols = _im2col(g_pad.reshape(e * n, out_c, *g_pad.shape[-2:]),
                        kh, kw, stride).reshape(e, n, k, length)
        if weight.requires_grad:
            if shared:
                dw = np.einsum("ncl,enkl->eck", x_flat, gcols, optimize=True)
            else:
                dw = np.matmul(x_flat.reshape(e * n, c, length),
                               gcols.reshape(e * n, k, length).transpose(0, 2, 1))
                dw = dw.reshape(e, n, c, k).sum(axis=1)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dx = np.matmul(w2[:, None, :, :], gcols)  # (E, N, C, L)
            if shared:
                x._accumulate(dx.sum(axis=0).reshape(n, c, h, w))
            else:
                x._accumulate(dx.reshape(e, n, c, h, w))

    return Tensor._make(out, parents, backward)


def batched_upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling over ``(E, N, C, H, W)`` (or NCHW) input."""
    return _fold_spatial(x, lambda t: F.upsample_nearest2d(t, scale))


def batched_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-member cross-entropy: ``(E, N, C)`` logits, ``(E, N)`` labels -> ``(E,)``.

    Member ``e``'s entry equals ``F.cross_entropy(logits[e], targets[e])``, so
    the sum of the vector backpropagates each member's own gradient — the
    reduction every fused multi-net training uses.
    """
    targets = np.asarray(targets)
    if logits.ndim != 3 or targets.shape != logits.shape[:2]:
        raise ValueError(f"expected (E, N, C) logits with (E, N) targets, got "
                         f"{logits.shape} and {targets.shape}")
    e, n, _ = logits.shape
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(e)[:, None], np.arange(n)[None, :], targets]
    return -picked.mean(axis=1)


def batched_mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Per-member mean squared error over stacked ``(E, ...)`` tensors -> ``(E,)``."""
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    diff = prediction - target
    return (diff * diff).mean(axis=tuple(range(1, prediction.ndim)))


def batched_batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation with per-member affine/statistics ``(E, C)``.

    Matches :func:`repro.nn.functional.batch_norm2d` per member: batch
    statistics and in-place running-stat updates in training mode, running
    statistics in eval mode.  A shared 4-D input broadcasts against the
    per-member parameters, so the output always carries the ensemble axis.
    """
    e, c = gamma.shape
    shared = x.ndim == 4
    members = 1 if shared else e
    profiling.record("batch_norm", 4 * e * (x.size // members))
    if not training:
        # Eval hot path: fold mean/var/affine into one scale-and-shift pair,
        # so the full-size tensor is touched twice instead of four times.
        # Gradients to gamma/beta flow through the small (E, C) precompute.
        inv_std = Tensor(1.0 / np.sqrt(running_var + eps))
        scale = gamma * inv_std
        shift = beta - Tensor(running_mean) * scale
        return x * scale.reshape(e, 1, c, 1, 1) + shift.reshape(e, 1, c, 1, 1)
    axes = (0, 2, 3) if shared else (1, 3, 4)
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    if shared:
        batch = x.shape[0] * x.shape[2] * x.shape[3]
    else:
        batch = x.shape[1] * x.shape[3] * x.shape[4]
    unbiased = var.data * batch / max(batch - 1, 1)
    rows = (1, c) if shared else (e, c)
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean.data.reshape(rows)
    running_var *= 1.0 - momentum
    running_var += momentum * unbiased.reshape(rows)
    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * gamma.reshape(e, 1, c, 1, 1) + beta.reshape(e, 1, c, 1, 1)


def _fold_spatial(x: Tensor, op: Callable[[Tensor], Tensor]) -> Tensor:
    """Apply a per-sample NCHW op by folding the ensemble axis into the batch."""
    if x.ndim == 4:
        return op(x)
    e, n = x.shape[0], x.shape[1]
    out = op(x.reshape(e * n, *x.shape[2:]))
    return out.reshape(e, n, *out.shape[1:])


def batched_max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None,
                       padding: int = 0) -> Tensor:
    """Max pooling over ``(E, N, C, H, W)`` (or shared NCHW) input."""
    return _fold_spatial(x, lambda t: F.max_pool2d(t, kernel_size, stride, padding))


def batched_avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None,
                       padding: int = 0) -> Tensor:
    """Average pooling over ``(E, N, C, H, W)`` (or shared NCHW) input."""
    return _fold_spatial(x, lambda t: F.avg_pool2d(t, kernel_size, stride, padding))


def batched_global_avg_pool2d(x: Tensor) -> Tensor:
    """Spatial global average pooling; ``(E, N, C, H, W)`` -> ``(E, N, C)``."""
    return x.mean(axis=(-2, -1))


# ----------------------------------------------------------------------
# Stacking registry
# ----------------------------------------------------------------------

_STACKERS: dict[type, Callable[[list[Module]], "StackedModule"]] = {}


def register_stacker(module_type: type):
    """Register the stacked counterpart of ``module_type``.

    The decorated callable receives the list of source modules and returns
    the stacked module; composite layers outside this package (residual
    blocks, full bodies) use this to plug into :func:`stack_modules`.
    """

    def decorator(factory):
        _STACKERS[module_type] = factory
        return factory

    return decorator


def stack_modules(modules: Iterable[Module]) -> "StackedModule":
    """Compile architecturally identical modules into one stacked module.

    Raises :class:`UnstackableError` for heterogeneous lists or module types
    without a registered stacker — callers treat that as "use the looped
    path", never as a hard failure.
    """
    modules = list(modules)
    if not modules:
        raise ValueError("need at least one module to stack")
    first_type = type(modules[0])
    if any(type(m) is not first_type for m in modules):
        names = sorted({type(m).__name__ for m in modules})
        raise UnstackableError(f"heterogeneous module types: {names}")
    factory = _STACKERS.get(first_type)
    if factory is None:
        raise UnstackableError(f"no stacker registered for {first_type.__name__}")
    return factory(modules)


def common_attr(modules: list[Module], name: str):
    """The shared value of ``name`` across members, or :class:`UnstackableError`."""
    values = {getattr(m, name) for m in modules}
    if len(values) != 1:
        raise UnstackableError(f"members disagree on {name}: {sorted(values, key=repr)}")
    return values.pop()


class StackedModule(Module):
    """Base class for modules mirroring E identical source modules.

    ``sync_from`` pulls the source modules' parameters/buffers into the
    stacked arrays; ``unstack_to`` writes them back.  The default
    implementations recurse structurally — stacked children are matched to
    same-named attributes of the source modules — so only parameter-holding
    leaves override them.
    """

    num_stacked: int = 0

    def _check_arity(self, modules: list[Module]) -> list[Module]:
        modules = list(modules)
        if len(modules) != self.num_stacked:
            raise ValueError(f"expected {self.num_stacked} modules, got {len(modules)}")
        return modules

    def sync_from(self, modules: list[Module]) -> "StackedModule":
        modules = self._check_arity(modules)
        for name, child in self._modules.items():
            child.sync_from([getattr(m, name) for m in modules])
        return self

    def unstack_to(self, modules: list[Module]) -> "StackedModule":
        modules = self._check_arity(modules)
        for name, child in self._modules.items():
            child.unstack_to([getattr(m, name) for m in modules])
        return self


# ----------------------------------------------------------------------
# Stacked leaves
# ----------------------------------------------------------------------


def _stacked_parameter(tensors: list[Tensor]) -> Parameter:
    shapes = {t.shape for t in tensors}
    if len(shapes) != 1:
        raise UnstackableError(f"parameter shapes differ: {sorted(shapes)}")
    param = Parameter(np.stack([t.data for t in tensors]))
    param.requires_grad = any(t.requires_grad for t in tensors)
    return param


@register_stacker(Conv2d)
class StackedConv2d(StackedModule):
    """E convolutions fused into one :func:`batched_conv2d` call."""

    def __init__(self, convs: list[Conv2d]):
        super().__init__()
        self.num_stacked = len(convs)
        self.stride = common_attr(convs, "stride")
        self.padding = common_attr(convs, "padding")
        if len({conv.bias is None for conv in convs}) != 1:
            raise UnstackableError("members disagree on conv bias")
        self.weight = _stacked_parameter([conv.weight for conv in convs])
        self.bias = (_stacked_parameter([conv.bias for conv in convs])
                     if convs[0].bias is not None else None)
        # Eval-time BN fold for bias-free convs: the folded shift lives in
        # a plain (non-parameter) tensor so ``parameters()`` / state_dict
        # are unchanged by folding.  ``None`` whenever unfolded.
        self._fold_bias: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        bias = self.bias if self._fold_bias is None else self._fold_bias
        return batched_conv2d(x, self.weight, bias, stride=self.stride,
                              padding=self.padding)

    def sync_from(self, convs: list[Conv2d]) -> "StackedConv2d":
        convs = self._check_arity(convs)
        self.weight.data = np.stack([conv.weight.data for conv in convs])
        self.weight.requires_grad = any(conv.weight.requires_grad for conv in convs)
        if self.bias is not None:
            self.bias.data = np.stack([conv.bias.data for conv in convs])
            self.bias.requires_grad = any(conv.bias.requires_grad for conv in convs)
        return self

    def unstack_to(self, convs: list[Conv2d]) -> "StackedConv2d":
        convs = self._check_arity(convs)
        for i, conv in enumerate(convs):
            conv.weight.data = self.weight.data[i].copy()
            if self.bias is not None:
                conv.bias.data = self.bias.data[i].copy()
        return self


@register_stacker(Linear)
class StackedLinear(StackedModule):
    """E affine layers fused into one :func:`batched_linear` call."""

    def __init__(self, linears: list[Linear]):
        super().__init__()
        self.num_stacked = len(linears)
        self.in_features = common_attr(linears, "in_features")
        self.out_features = common_attr(linears, "out_features")
        if len({lin.bias is None for lin in linears}) != 1:
            raise UnstackableError("members disagree on linear bias")
        self.weight = _stacked_parameter([lin.weight for lin in linears])
        self.bias = (_stacked_parameter([lin.bias for lin in linears])
                     if linears[0].bias is not None else None)

    def forward(self, x: Tensor) -> Tensor:
        return batched_linear(x, self.weight, self.bias)

    def sync_from(self, linears: list[Linear]) -> "StackedLinear":
        linears = self._check_arity(linears)
        self.weight.data = np.stack([lin.weight.data for lin in linears])
        self.weight.requires_grad = any(lin.weight.requires_grad for lin in linears)
        if self.bias is not None:
            self.bias.data = np.stack([lin.bias.data for lin in linears])
            self.bias.requires_grad = any(lin.bias.requires_grad for lin in linears)
        return self

    def unstack_to(self, linears: list[Linear]) -> "StackedLinear":
        linears = self._check_arity(linears)
        for i, lin in enumerate(linears):
            lin.weight.data = self.weight.data[i].copy()
            if self.bias is not None:
                lin.bias.data = self.bias.data[i].copy()
        return self


@register_stacker(BatchNorm2d)
class StackedBatchNorm2d(StackedModule):
    """E batch-norm layers with stacked ``(E, C)`` affine and running stats.

    ``record_batch_stats`` mirrors :class:`repro.nn.modules.BatchNorm2d`:
    when enabled, each forward stores the input's differentiable per-member
    batch mean/variance — ``(E, C)`` each for a per-member 5-D input — in
    ``recorded_stats`` without changing the output.  The fused
    DeepInversion-style BN prior of the multi-attack engine reads them.
    """

    def __init__(self, bns: list[BatchNorm2d]):
        super().__init__()
        self.num_stacked = len(bns)
        self.num_features = common_attr(bns, "num_features")
        self.momentum = common_attr(bns, "momentum")
        self.eps = common_attr(bns, "eps")
        self.gamma = _stacked_parameter([bn.gamma for bn in bns])
        self.beta = _stacked_parameter([bn.beta for bn in bns])
        self.register_buffer("running_mean", np.stack([bn.running_mean for bn in bns]))
        self.register_buffer("running_var", np.stack([bn.running_var for bn in bns]))
        self.record_batch_stats = False
        self.recorded_stats: tuple[Tensor, Tensor] | None = None
        # True while this layer's affine map is folded into the preceding
        # stacked conv (see :class:`StackedBodies`): the forward is then a
        # pass-through.  Only ever set in eval mode; ``train()`` unfolds.
        self._folded = False

    def forward(self, x: Tensor) -> Tensor:
        if self._folded and not self.training:
            return x
        if self.record_batch_stats:
            axes = (0, 2, 3) if x.ndim == 4 else (1, 3, 4)
            self.recorded_stats = (x.mean(axis=axes), x.var(axis=axes))
        return batched_batch_norm2d(x, self.gamma, self.beta, self.running_mean,
                                    self.running_var, training=self.training,
                                    momentum=self.momentum, eps=self.eps)

    def sync_from(self, bns: list[BatchNorm2d]) -> "StackedBatchNorm2d":
        bns = self._check_arity(bns)
        self.gamma.data = np.stack([bn.gamma.data for bn in bns])
        self.gamma.requires_grad = any(bn.gamma.requires_grad for bn in bns)
        self.beta.data = np.stack([bn.beta.data for bn in bns])
        self.beta.requires_grad = any(bn.beta.requires_grad for bn in bns)
        self.running_mean[...] = np.stack([bn.running_mean for bn in bns])
        self.running_var[...] = np.stack([bn.running_var for bn in bns])
        return self

    def unstack_to(self, bns: list[BatchNorm2d]) -> "StackedBatchNorm2d":
        bns = self._check_arity(bns)
        for i, bn in enumerate(bns):
            bn.gamma.data = self.gamma.data[i].copy()
            bn.beta.data = self.beta.data[i].copy()
            bn.running_mean[...] = self.running_mean[i]
            bn.running_var[...] = self.running_var[i]
        return self


# ----------------------------------------------------------------------
# Stateless stacked layers
# ----------------------------------------------------------------------


@register_stacker(ConvTranspose2d)
class StackedConvTranspose2d(StackedModule):
    """E transposed convolutions fused into one :func:`batched_conv_transpose2d`.

    The stacker the inversion decoders compile through — with it (plus
    :class:`StackedUpsampleNearest2d` / :class:`StackedSigmoid`) a
    ``build_decoder`` tree stacks end to end.
    """

    def __init__(self, convs: list[ConvTranspose2d]):
        super().__init__()
        self.num_stacked = len(convs)
        self.stride = common_attr(convs, "stride")
        self.padding = common_attr(convs, "padding")
        self.output_padding = common_attr(convs, "output_padding")
        if len({conv.bias is None for conv in convs}) != 1:
            raise UnstackableError("members disagree on conv bias")
        self.weight = _stacked_parameter([conv.weight for conv in convs])
        self.bias = (_stacked_parameter([conv.bias for conv in convs])
                     if convs[0].bias is not None else None)

    def forward(self, x: Tensor) -> Tensor:
        return batched_conv_transpose2d(x, self.weight, self.bias,
                                        stride=self.stride, padding=self.padding,
                                        output_padding=self.output_padding)

    def sync_from(self, convs: list[ConvTranspose2d]) -> "StackedConvTranspose2d":
        convs = self._check_arity(convs)
        self.weight.data = np.stack([conv.weight.data for conv in convs])
        self.weight.requires_grad = any(conv.weight.requires_grad for conv in convs)
        if self.bias is not None:
            self.bias.data = np.stack([conv.bias.data for conv in convs])
            self.bias.requires_grad = any(conv.bias.requires_grad for conv in convs)
        return self

    def unstack_to(self, convs: list[ConvTranspose2d]) -> "StackedConvTranspose2d":
        convs = self._check_arity(convs)
        for i, conv in enumerate(convs):
            conv.weight.data = self.weight.data[i].copy()
            if self.bias is not None:
                conv.bias.data = self.bias.data[i].copy()
        return self


@register_stacker(ReLU)
class StackedReLU(StackedModule):
    def __init__(self, mods: list[ReLU]):
        super().__init__()
        self.num_stacked = len(mods)

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


@register_stacker(Sigmoid)
class StackedSigmoid(StackedModule):
    def __init__(self, mods: list[Sigmoid]):
        super().__init__()
        self.num_stacked = len(mods)

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


@register_stacker(Tanh)
class StackedTanh(StackedModule):
    def __init__(self, mods: list[Tanh]):
        super().__init__()
        self.num_stacked = len(mods)

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


@register_stacker(UpsampleNearest2d)
class StackedUpsampleNearest2d(StackedModule):
    def __init__(self, mods: list[UpsampleNearest2d]):
        super().__init__()
        self.num_stacked = len(mods)
        self.scale = common_attr(mods, "scale")

    def forward(self, x: Tensor) -> Tensor:
        return batched_upsample_nearest2d(x, self.scale)


@register_stacker(Identity)
class StackedIdentity(StackedModule):
    def __init__(self, mods: list[Identity]):
        super().__init__()
        self.num_stacked = len(mods)

    def forward(self, x: Tensor) -> Tensor:
        return x


@register_stacker(MaxPool2d)
class StackedMaxPool2d(StackedModule):
    def __init__(self, mods: list[MaxPool2d]):
        super().__init__()
        self.num_stacked = len(mods)
        self.kernel_size = common_attr(mods, "kernel_size")
        self.stride = common_attr(mods, "stride")
        self.padding = common_attr(mods, "padding")

    def forward(self, x: Tensor) -> Tensor:
        return batched_max_pool2d(x, self.kernel_size, self.stride, self.padding)


@register_stacker(AvgPool2d)
class StackedAvgPool2d(StackedModule):
    def __init__(self, mods: list[AvgPool2d]):
        super().__init__()
        self.num_stacked = len(mods)
        self.kernel_size = common_attr(mods, "kernel_size")
        self.stride = common_attr(mods, "stride")
        self.padding = common_attr(mods, "padding")

    def forward(self, x: Tensor) -> Tensor:
        return batched_avg_pool2d(x, self.kernel_size, self.stride, self.padding)


@register_stacker(GlobalAvgPool2d)
class StackedGlobalAvgPool2d(StackedModule):
    def __init__(self, mods: list[GlobalAvgPool2d]):
        super().__init__()
        self.num_stacked = len(mods)

    def forward(self, x: Tensor) -> Tensor:
        return batched_global_avg_pool2d(x)


@register_stacker(Flatten)
class StackedFlatten(StackedModule):
    """Flatten per member; a 5-D input keeps its leading ensemble axis."""

    def __init__(self, mods: list[Flatten]):
        super().__init__()
        self.num_stacked = len(mods)
        self.start_dim = common_attr(mods, "start_dim")

    def forward(self, x: Tensor) -> Tensor:
        start = self.start_dim + 1 if x.ndim == 5 else self.start_dim
        return x.flatten(start)


@register_stacker(Sequential)
class StackedSequential(StackedModule):
    """Child-wise stacking of E equally long sequential containers."""

    def __init__(self, seqs: list[Sequential]):
        super().__init__()
        self.num_stacked = len(seqs)
        lengths = {len(seq) for seq in seqs}
        if len(lengths) != 1:
            raise UnstackableError(f"sequential lengths differ: {sorted(lengths)}")
        for i in range(lengths.pop()):
            setattr(self, str(i), stack_modules([seq[i] for seq in seqs]))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._modules.values():
            x = layer(x)
        return x


# ----------------------------------------------------------------------
# Eval-time BN fold + padding-safety analysis
# ----------------------------------------------------------------------


def find_fold_pairs(module: Module) -> "list[tuple[StackedConv2d, StackedBatchNorm2d]]":
    """Adjacent ``(StackedConv2d, StackedBatchNorm2d)`` pairs, dataflow order.

    Walks the stacked tree and pairs each conv with the batch-norm layer
    registered *immediately after it* in its parent's ``_modules`` order,
    provided the channel counts agree.  Every composite this package (and
    the model registry) ships declares its children in forward-dataflow
    order, which is what makes adjacency a faithful proxy for "the BN is
    applied straight after the conv"; a composite whose attribute order
    diverges from its dataflow must set ``fold_adjacent = False`` on its
    class to opt out of pairing at its own level (children still recurse).
    """
    pairs: list[tuple[StackedConv2d, StackedBatchNorm2d]] = []
    children = list(module._modules.values())
    for child in children:
        pairs.extend(find_fold_pairs(child))
    if not getattr(module, "fold_adjacent", True):
        return pairs
    for first, second in zip(children, children[1:]):
        if (isinstance(first, StackedConv2d)
                and isinstance(second, StackedBatchNorm2d)
                and first.weight.shape[1] == second.num_features):
            pairs.append((first, second))
    return pairs


#: stacked leaves that are pointwise in every coordinate (value may depend
#: on the element only), hence trivially safe under spatial padding.
_POINTWISE_LEAVES = (StackedReLU, StackedSigmoid, StackedTanh, StackedIdentity)


def padding_safe(module: Module) -> bool:
    """True iff zero-padding the spatial border cannot perturb the output
    on the unpadded extent.

    This is the precondition for speculative canvas batching: requests of
    mixed spatial sizes may share one padded canvas pass — each output
    cropped back to its own extent — only when every op in the tree is
    *spatially pointwise*: activations, eval-mode batch norm (per-channel
    affine), and 1x1 / stride-1 / pad-0 convolutions.  Anything with a
    spatial receptive field (wider kernels, pooling) lets border garbage
    contaminate the interior, so it is reported unsafe and the service
    falls back to one exact sub-pass per coalesce key.

    Composites participate by setting ``pointwise_composite = True`` on
    their class, asserting their ``forward`` combines children with
    pointwise arithmetic only (residual adds, activations).
    """
    if isinstance(module, StackedBatchNorm2d):
        # Eval BN is a per-channel affine map; train-mode BN reduces over
        # the spatial axes (padding would shift the batch statistics), and
        # a stat-recording BN must observe its true input extent.
        return not module.training and not module.record_batch_stats
    if isinstance(module, StackedConv2d):
        kh, kw = int(module.weight.shape[3]), int(module.weight.shape[4])
        return (kh == 1 and kw == 1 and module.stride == 1
                and module.padding == 0)
    if isinstance(module, _POINTWISE_LEAVES):
        return True
    if module._modules and getattr(module, "pointwise_composite", False):
        return all(padding_safe(child) for child in module._modules.values())
    return False


# StackedSequential composes its children in sequence with no spatial
# arithmetic of its own, so it is padding-safe iff its children are.
StackedSequential.pointwise_composite = True


# ----------------------------------------------------------------------
# StackedBodies — the server's fused N-body pass
# ----------------------------------------------------------------------


class StackedBodies(StackedModule):
    """All N server bodies compiled into one fused batched forward.

    ``forward`` takes the shared uploaded features ``(N, C, H, W)`` and
    returns the stacked outputs ``(E, N, ...)``; ``forward_list`` unbinds
    them into the per-body list the protocol transmits.  The stacked
    parameters are a *copy* of the source bodies' — call :meth:`sync_from`
    after mutating the bodies (or :meth:`unstack_to` after fine-tuning the
    stacked copy) to keep the two representations interchangeable.

    Eval-time BN fold
    -----------------
    With ``fold_bn=True`` (the default), switching to eval mode folds
    every adjacent conv→batch-norm pair (:func:`find_fold_pairs`) into
    the conv's own weights and bias::

        scale = gamma / sqrt(running_var + eps)        # (E, C)
        W'    = W * scale                              # per out-channel
        b'    = beta - running_mean * scale + b * scale

    after which the batch-norm forward is a pass-through — the eval hot
    path drops two full-tensor touches (and two allocations) per BN
    layer.  The fold is a pure ``.data`` swap: the original weight/bias
    arrays are stashed by object identity, ``train()`` restores them
    bit-exactly (optimizer steps always run on the unfolded tree), and
    ``sync_from`` / ``unstack_to`` / ``state_dict`` / ``load_state_dict``
    transparently unfold around their work so the folded representation
    never leaks out of the engine.  Pairs whose BN is recording batch
    statistics at fold time are left unfolded (the recorder must observe
    its true input).  The fold also yields to autograd: a forward with
    gradients enabled transparently unfolds first (BN parameters must
    participate in the graph) and the next ``no_grad`` forward re-folds.
    Folded outputs match unfolded outputs to float32 rounding (≪ 1e-5);
    the differential parity suite pins this down.
    """

    #: forward only composes the stacked tree (padding safety delegates).
    pointwise_composite = True

    def __init__(self, bodies: list[Module], fold_bn: bool = True):
        super().__init__()
        bodies = list(bodies)
        if not bodies:
            raise ValueError("need at least one body to stack")
        self.num_stacked = len(bodies)
        self.stacked = stack_modules(bodies)
        # Stacked trees with any state (parameters OR buffers, e.g. a pure
        # FixedGaussianNoise ensemble) emit the ensemble axis themselves;
        # only fully stateless trees pass the shared input through unchanged.
        self._parametric = (len(self.stacked.parameters()) > 0
                            or next(self.stacked.named_buffers(), None) is not None)
        self.fold_bn = fold_bn
        self._fold_pairs = find_fold_pairs(self.stacked) if fold_bn else []
        self._fold_state: list[dict] = []
        self._folded = False

    @classmethod
    def try_build(cls, bodies: list[Module], eval_mode: bool | None = None,
                  fold_bn: bool = True) -> "StackedBodies | None":
        """Build a stacked engine, or ``None`` when the bodies can't be fused.

        The standard construct-or-fall-back used everywhere a batched backend
        is optional.  ``eval_mode`` forces train/eval on the result; ``None``
        inherits the first body's mode.  ``fold_bn`` controls the eval-time
        conv←BN fold (on by default; see the class docstring).
        """
        try:
            stacked = cls(bodies, fold_bn=fold_bn)
        except UnstackableError:
            return None
        mode = bodies[0].training if eval_mode is None else not eval_mode
        stacked.train(mode)
        return stacked

    @property
    def num_bodies(self) -> int:
        return self.num_stacked

    @property
    def folded(self) -> bool:
        """True while conv←BN pairs are folded (eval mode, ``fold_bn``)."""
        return self._folded

    def padding_safe(self) -> bool:
        """Whether the compiled tree admits speculative canvas batching."""
        return padding_safe(self.stacked)

    # -- fold state machine ---------------------------------------------

    def train(self, mode: bool = True) -> "StackedBodies":
        if mode:
            self._unfold()
        super().train(mode)
        if not mode and self.fold_bn:
            self._fold()
        return self

    def _fold(self) -> None:
        if self._folded:
            return
        for conv, bn in self._fold_pairs:
            if bn.record_batch_stats:
                continue  # the recorder must observe its true input
            scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)  # (E, C)
            shift = bn.beta.data - bn.running_mean * scale
            self._fold_state.append({
                "conv": conv, "bn": bn, "weight": conv.weight.data,
                "bias": None if conv.bias is None else conv.bias.data,
            })
            conv.weight.data = conv.weight.data * scale[:, :, None, None, None]
            if conv.bias is not None:
                conv.bias.data = shift + conv.bias.data * scale
            else:
                conv._fold_bias = Tensor(shift)
            bn._folded = True
        self._folded = True

    def _unfold(self) -> None:
        if not self._folded:
            return
        for state in self._fold_state:
            conv, bn = state["conv"], state["bn"]
            conv.weight.data = state["weight"]  # original array objects:
            if state["bias"] is not None:       # bit-exact restoration
                conv.bias.data = state["bias"]
            conv._fold_bias = None
            bn._folded = False
        self._fold_state = []
        self._folded = False

    def _unfolded_call(self, fn):
        """Run ``fn`` on the unfolded tree, re-folding afterwards.

        Weight traffic (sync, unstack, checkpoints) must always see the
        true parameters; the re-fold recomputes from whatever ``fn``
        wrote, so a sync while serving folded stays correct.
        """
        refold = self._folded
        self._unfold()
        try:
            return fn()
        finally:
            if refold and not self.training and self.fold_bn:
                self._fold()

    # -- forward / weight traffic ---------------------------------------

    def forward(self, features: Tensor) -> Tensor:
        if self.fold_bn and not self.training:
            # The fold only holds while gradients are off: a grad-recording
            # eval pass (attack replays, fine-tuning probes) must see the
            # true conv/BN parameters so their gradients flow.  Both calls
            # are no-ops when the state already matches.
            if is_grad_enabled():
                self._unfold()
            else:
                self._fold()
        out = self.stacked(features)
        if not self._parametric:
            # Degenerate all-stateless ensemble: the shared input passed
            # through untouched, so materialise the ensemble axis explicitly.
            out = tensor_stack([out] * self.num_stacked)
        return out

    def forward_list(self, features: Tensor) -> list[Tensor]:
        return unbind(self.forward(features))

    def sync_from(self, bodies: list[Module]) -> "StackedBodies":
        bodies = self._check_arity(bodies)
        self._unfolded_call(lambda: self.stacked.sync_from(bodies))
        return self

    def unstack_to(self, bodies: list[Module]) -> "StackedBodies":
        bodies = self._check_arity(bodies)
        self._unfolded_call(lambda: self.stacked.unstack_to(bodies))
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._unfolded_call(lambda: super(StackedBodies, self).state_dict())

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._unfolded_call(
            lambda: super(StackedBodies, self).load_state_dict(state))
