"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class that underpins the whole
reproduction.  It implements the standard define-by-run tape: every operation
returns a new tensor carrying references to its parents and a closure that
propagates the output gradient to each parent.  :meth:`Tensor.backward`
topologically sorts the tape and runs the closures in reverse.

Only the features needed by the paper's models are implemented, but those are
implemented fully: broadcasting-aware arithmetic, matmul, reductions, shape
ops, and indexing.  Convolution, pooling and normalisation live in
:mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float32

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction within the block (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _grad_enabled


def _sum_to_shape(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (produced under broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected array-like, got Tensor; use .data")
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == np.float64 and dtype is None:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A NumPy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload.  Python floats/lists are converted to the library
        default dtype (float32); existing float64 arrays are preserved only
        when ``dtype`` is passed explicitly (gradient checks use float64).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=None, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, wiring the tape only when grad is enabled."""
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = _sum_to_shape(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of the data severed from the tape."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def astype(self, dtype) -> "Tensor":
        out = Tensor._make(
            self.data.astype(dtype),
            (self,),
            lambda g: self._accumulate(g.astype(self.data.dtype)),
        )
        return out

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``gradient`` defaults to ones (for scalar losses it is simply 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=self.data.dtype)
            if gradient.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {gradient.shape} does not match tensor shape {self.data.shape}"
                )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            a._accumulate(g)
            b._accumulate(g)

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            a._accumulate(g)
            b._accumulate(-g)

        return Tensor._make(a.data - b.data, (a, b), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            a._accumulate(g * b.data)
            b._accumulate(g * a.data)

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            a._accumulate(g / b.data)
            b._accumulate(-g * a.data / (b.data * b.data))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self
        return Tensor._make(-a.data, (a,), lambda g: a._accumulate(-g))

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        a = self

        def backward(g):
            a._accumulate(g * exponent * np.power(a.data, exponent - 1))

        return Tensor._make(np.power(a.data, exponent), (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if b.data.ndim >= 2:
                a._accumulate(g @ np.swapaxes(b.data, -1, -2))
            else:  # vector on the right
                a._accumulate(np.outer(g, b.data) if a.data.ndim == 2 else g * b.data)
            if a.data.ndim >= 2:
                b._accumulate(np.swapaxes(a.data, -1, -2) @ g)
            else:
                b._accumulate(np.outer(a.data, g) if b.data.ndim == 2 else g * a.data)

        return Tensor._make(a.data @ b.data, (a, b), backward)

    # Comparisons produce plain boolean arrays (no gradient flows).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)
        return Tensor._make(out_data, (a,), lambda g: a._accumulate(g * out_data))

    def log(self) -> "Tensor":
        a = self
        return Tensor._make(np.log(a.data), (a,), lambda g: a._accumulate(g / a.data))

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)
        return Tensor._make(out_data, (a,), lambda g: a._accumulate(g * 0.5 / out_data))

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)
        return Tensor._make(out_data, (a,), lambda g: a._accumulate(g * (1.0 - out_data**2)))

    def sigmoid(self) -> "Tensor":
        a = self
        # Numerically stable: never exponentiate a positive argument.
        positive = a.data >= 0
        exp_neg = np.exp(np.where(positive, -a.data, a.data))
        out_data = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
        return Tensor._make(out_data, (a,), lambda g: a._accumulate(g * out_data * (1.0 - out_data)))

    def relu(self) -> "Tensor":
        a = self

        def backward(g):
            # Mask computed lazily: inference never pays for it.
            a._accumulate(g * (a.data > 0))

        return Tensor._make(np.maximum(a.data, 0.0), (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)
        return Tensor._make(np.abs(a.data), (a,), lambda g: a._accumulate(g * sign))

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        mask = (a.data >= low) & (a.data <= high)

        def backward(g):
            a._accumulate(g * mask)

        return Tensor._make(np.clip(a.data, low, high), (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.mean(axis=axis, keepdims=keepdims)
        count = a.data.size / max(out_data.size, 1)

        def backward(g):
            grad = np.asarray(g) / count
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

        return Tensor._make(out_data, (a,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = a.data == expanded
            # Split gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            a._accumulate(grad * mask / counts)

        return Tensor._make(out_data, (a,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.data.shape
        return Tensor._make(
            a.data.reshape(shape), (a,), lambda g: a._accumulate(g.reshape(old_shape))
        )

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes) -> "Tensor":
        a = self
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        return Tensor._make(
            a.data.transpose(axes), (a,), lambda g: a._accumulate(g.transpose(inverse))
        )

    def __getitem__(self, index) -> "Tensor":
        a = self

        def backward(g):
            grad = np.zeros_like(a.data)
            np.add.at(grad, index, g)
            a._accumulate(grad)

        return Tensor._make(a.data[index], (a,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad.  ``pad_width`` follows ``numpy.pad`` conventions."""
        a = self
        widths = tuple((int(lo), int(hi)) for lo, hi in pad_width)

        def backward(g):
            slices = tuple(slice(lo, g.shape[i] - hi) for i, (lo, hi) in enumerate(widths))
            a._accumulate(g[slices])

        return Tensor._make(np.pad(a.data, widths), (a,), backward)


# ----------------------------------------------------------------------
# Multi-input constructors
# ----------------------------------------------------------------------
def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(lo, hi)
            tensor._accumulate(g[tuple(index)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(g, i, axis=axis))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a boolean array (no gradient)."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(g):
        a._accumulate(np.where(cond, g, 0.0))
        b._accumulate(np.where(cond, 0.0, g))

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def zeros(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """All-zeros tensor of the given shape."""
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)


def ones(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """All-ones tensor of the given shape."""
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)


def randn(*shape, rng: np.random.Generator, scale: float = 1.0, requires_grad: bool = False,
          dtype=DEFAULT_DTYPE) -> Tensor:
    """Gaussian tensor drawn from ``rng`` with the given std ``scale``."""
    data = rng.normal(0.0, scale, size=shape).astype(dtype)
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def as_tensor(value, dtype=None) -> Tensor:
    """Wrap array-like ``value`` in a Tensor (no copy for existing tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value, dtype=dtype)
