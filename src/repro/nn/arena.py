"""Tensor arena: reuse scratch buffers across fused serving passes.

Every stacked serving tick re-allocates the same working set — the
im2col column buffers, the padded-input canvases and the pre-transpose
matmul scratch of :func:`repro.nn.batched.batched_conv2d`, plus the
staging buffer the service copies coalesced uplink payloads into.  For
the small-tensor regime this reproduction serves (Table-III split
points), the allocator traffic is a measurable slice of tick latency.
A :class:`TensorArena` keeps those buffers alive between ticks and hands
them back by *slot*: a ``(tag, sequence)`` key in per-pass order for
scratch the kernels request, or a bare named key for singleton staging
buffers the service owns.

Safety model
------------
Arena buffers are only handed to kernels while gradients are disabled
(the kernels check :func:`repro.nn.tensor.is_grad_enabled` and the
operands' ``requires_grad`` before asking), because backward closures
capture the im2col columns — a reused buffer would corrupt a pending
backward.  Kernels also never place an array that *escapes* the pass
(layer outputs, response payloads) in the arena: only scratch that is
provably consumed inside the op may live there, so a poisoned arena
(:meth:`TensorArena.poison`, used by the differential tests) can never
leak NaNs into served features.

Shape-keyed invalidation: a slot whose requested shape or dtype differs
from the cached buffer is re-allocated on the spot, so a coalesce-key
change between ticks (different spatial size, different batch) silently
falls back to fresh memory rather than serving a stale view.

Usage::

    arena = TensorArena()
    with use_arena(arena):          # resets per-pass slot counters
        out = engine(features)      # kernels call arena.take(...)

The context manager is re-entrant-safe (the previously active arena is
restored on exit) but not thread-safe — the serving tier is a
single-threaded tick loop by design.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

__all__ = ["TensorArena", "use_arena", "active_arena"]

#: module-global active arena; ``None`` means "allocate fresh" (the
#: default for every code path outside a serving fast-path pass).
_ACTIVE: "TensorArena | None" = None


class TensorArena:
    """A pool of reusable scratch buffers keyed by slot and shape.

    Two families of slots exist:

    * :meth:`take` — per-pass *sequence* slots: the same tag may be
      requested many times within one pass (one per conv layer, say);
      each request within a pass gets its own distinct buffer, and the
      per-tag sequence counter resets at :meth:`begin_pass`, so layer
      ``i`` of this tick reuses exactly layer ``i``'s buffer of the
      previous tick.
    * :meth:`take_named` — singleton slots for buffers with one logical
      owner per arena (the service's uplink staging buffer); no
      sequence counter, just the name.

    Both invalidate on shape or dtype mismatch: the old buffer is
    dropped and a fresh one allocated (counted in ``misses``).
    """

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self._counters: dict[str, int] = {}
        self.hits = 0
        self.misses = 0

    # -- slot lifecycle -------------------------------------------------

    def begin_pass(self) -> None:
        """Reset per-pass sequence counters (start of one fused pass)."""
        self._counters.clear()

    def take(self, tag: str, shape: tuple[int, ...],
             dtype: np.dtype) -> np.ndarray:
        """A scratch buffer for the next ``tag`` slot of this pass.

        The buffer's contents are **undefined** — callers must overwrite
        every element (the poisoning tests enforce exactly this).
        """
        seq = self._counters.get(tag, 0)
        self._counters[tag] = seq + 1
        return self._fetch(("seq", tag, seq), shape, dtype)

    def take_named(self, name: str, shape: tuple[int, ...],
                   dtype: np.dtype) -> np.ndarray:
        """The singleton buffer registered under ``name`` (see class doc)."""
        return self._fetch(("named", name), shape, dtype)

    def _fetch(self, key: tuple, shape: tuple[int, ...],
               dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    # -- observability / testing ---------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes currently pooled."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def num_buffers(self) -> int:
        """Number of live slots."""
        return len(self._buffers)

    def poison(self, value: float = np.nan) -> None:
        """Fill every pooled float buffer with ``value`` (NaN by default).

        The differential harness calls this between ticks: any stale
        arena byte that leaks into a served feature map then surfaces as
        a NaN instead of a silently plausible number.  Integer buffers
        are filled with their dtype's minimum for the same reason.
        """
        for buf in self._buffers.values():
            if np.issubdtype(buf.dtype, np.floating):
                buf.fill(value)
            elif np.issubdtype(buf.dtype, np.integer):
                buf.fill(np.iinfo(buf.dtype).min)

    def clear(self) -> None:
        """Drop every pooled buffer (and reset pass counters)."""
        self._buffers.clear()
        self._counters.clear()


def active_arena() -> "TensorArena | None":
    """The arena of the pass currently executing, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def use_arena(arena: "TensorArena | None") -> Iterator["TensorArena | None"]:
    """Activate ``arena`` for the duration of one fused pass.

    Entering resets the arena's per-pass slot counters; exiting restores
    whichever arena (or ``None``) was active before.  Passing ``None``
    is allowed and simply runs the body without an arena — callers can
    thread an optional arena through unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    if arena is not None:
        arena.begin_pass()
    _ACTIVE = arena
    try:
        yield arena
    finally:
        _ACTIVE = previous
