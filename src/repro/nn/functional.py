"""Neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Convolution is implemented with the classic im2col/col2im lowering so that the
heavy lifting happens inside BLAS matmuls; everything else composes existing
autograd primitives where possible and falls back to hand-written backward
closures where composition would be wasteful (pooling).
"""

from __future__ import annotations

import numpy as np

from repro.nn import profiling
from repro.nn.tensor import Tensor, concat  # noqa: F401  (concat re-exported)

# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            out: np.ndarray | None = None) -> np.ndarray:
    """Lower padded NCHW input to column form ``(N, C*kh*kw, out_h*out_w)``.

    ``out``, when given, receives the columns — an arena-recycled
    ``(N, C*kh*kw, L)`` buffer on the serving fast path — instead of the
    fresh array the strided-view reshape would otherwise materialise.
    Every element of ``out`` is overwritten.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    if out is not None:
        # The (contiguous) column buffer viewed 6-D is assignment-
        # compatible with the strided windows: one fused copy, no
        # intermediate allocation.
        np.copyto(out.reshape(n, c, kh, kw, out_h, out_w), windows)
        return out
    return windows.reshape(n, c * kh * kw, out_h * out_w)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to input layout (inverse of im2col)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    x_pad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            x_pad[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, i, j]
    if padding:
        return x_pad[:, :, padding:-padding, padding:-padding]
    return x_pad


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"weight expects {in_c} input channels, got {c}")
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"convolution output would be empty for input {x.shape}")

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = _im2col(x_pad, kh, kw, stride)  # (N, C*kh*kw, L)
    w2 = weight.data.reshape(out_c, -1)  # (out_c, C*kh*kw)
    out = np.matmul(w2[None, :, :], cols).reshape(n, out_c, out_h, out_w)
    profiling.record("conv2d", 2 * n * out_c * out_h * out_w * in_c * kh * kw)
    if bias is not None:
        out = out + bias.data.reshape(1, out_c, 1, 1)
        profiling.record("bias", n * out_c * out_h * out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g2 = g.reshape(n, out_c, -1)  # (N, out_c, L)
        if weight.requires_grad:
            dw = np.einsum("nol,nkl->ok", g2, cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.matmul(w2.T[None, :, :], g2)  # (N, C*kh*kw, L)
            dx = _col2im(dcols, x.shape, kh, kw, stride, padding, out_h, out_w)
            x._accumulate(dx)

    return Tensor._make(out, parents, backward)


def dilate2d(x: Tensor, stride: int) -> Tensor:
    """Insert ``stride - 1`` zeros between spatial elements (for transposed conv)."""
    if stride == 1:
        return x
    n, c, h, w = x.shape
    out = np.zeros((n, c, (h - 1) * stride + 1, (w - 1) * stride + 1), dtype=x.data.dtype)
    out[:, :, ::stride, ::stride] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[:, :, ::stride, ::stride])

    return Tensor._make(out, (x,), backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    output_padding: int = 0,
) -> Tensor:
    """Transposed 2-D convolution (a.k.a. deconvolution).

    ``weight`` has shape ``(in_channels, out_channels, kh, kw)`` following the
    PyTorch convention.  Implemented directly as the adjoint of the strided
    convolution: one ``(out_c*kh*kw, in_c)`` matmul over the *input*
    positions followed by a strided col2im scatter — the column buffer is
    ``stride²`` times smaller than the classic dilate-then-convolve lowering
    (whose im2col runs over the zero-dilated map), which matters on the
    fused decoder-training hot path.
    """
    n, c, h, w = x.shape
    in_c, out_c, kh, kw = weight.shape
    if c != in_c:
        raise ValueError(f"weight expects {in_c} input channels, got {c}")
    if padding > kh - 1 or padding > kw - 1:
        raise ValueError("padding must be at most kernel_size - 1")
    if output_padding >= stride:
        raise ValueError("output_padding must be smaller than stride")
    out_h = (h - 1) * stride - 2 * padding + kh + output_padding
    out_w = (w - 1) * stride - 2 * padding + kw + output_padding
    k = out_c * kh * kw
    length = h * w
    x_flat = x.data.reshape(n, c, length)
    w2 = weight.data.reshape(in_c, k)
    cols = np.matmul(w2.T[None, :, :], x_flat)  # (N, K, L)
    out = _col2im(cols, (n, out_c, out_h, out_w), kh, kw, stride, padding, h, w)
    profiling.record("conv2d", 2 * n * c * k * length)
    if bias is not None:
        out = out + bias.data.reshape(1, out_c, 1, 1)
        profiling.record("bias", n * out_c * out_h * out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2, 3)))
        # The im2col windows cover exactly the positions the forward
        # scattered to; the output_padding margin is constant zero, so its
        # incoming gradient is dropped (count stays h*w since op < stride).
        g_pad = np.pad(g, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        gcols = _im2col(g_pad, kh, kw, stride)  # (N, K, L)
        if weight.requires_grad:
            dw = np.einsum("ncl,nkl->ck", x_flat, gcols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dx = np.matmul(w2[None, :, :], gcols)  # (N, C, L)
            x._accumulate(dx.reshape(x.shape))

    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over NCHW input; supports overlapping windows."""
    stride = kernel_size if stride is None else stride
    n, c, h, w = x.shape
    kh = kw = kernel_size
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if padding:
        x_pad = np.pad(
            x.data,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=-np.inf,
        )
    else:
        x_pad = x.data
    s0, s1, s2, s3 = x_pad.strides
    windows = np.lib.stride_tricks.as_strided(
        x_pad,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    profiling.record("max_pool", n * c * out_h * out_w * kh * kw)
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray) -> None:
        grad_pad = np.zeros_like(x_pad, dtype=g.dtype)
        oi, oj = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        h_idx = oi[None, None] * stride + arg // kw  # (N, C, out_h, out_w)
        w_idx = oj[None, None] * stride + arg % kw
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        np.add.at(grad_pad, (ni, ci, h_idx, w_idx), g)
        if padding:
            grad_pad = grad_pad[:, :, padding:-padding, padding:-padding]
        x._accumulate(grad_pad)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over NCHW input (count includes padding, as in PyTorch)."""
    stride = kernel_size if stride is None else stride
    n, c, h, w = x.shape
    kh = kw = kernel_size
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    s0, s1, s2, s3 = x_pad.strides
    windows = np.lib.stride_tricks.as_strided(
        x_pad,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    profiling.record("avg_pool", n * c * out_h * out_w * kh * kw)
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kh * kw)

    def backward(g: np.ndarray) -> None:
        grad_pad = np.zeros_like(x_pad, dtype=g.dtype)
        gs = g * scale
        for i in range(kh):
            i_end = i + stride * out_h
            for j in range(kw):
                j_end = j + stride * out_w
                grad_pad[:, :, i:i_end:stride, j:j_end:stride] += gs
        if padding:
            grad_pad = grad_pad[:, :, padding:-padding, padding:-padding]
        x._accumulate(grad_pad)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor."""
    n, c, h, w = x.shape
    out = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5)))

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Linear / normalisation / regularisation
# ----------------------------------------------------------------------


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    profiling.record("linear", 2 * int(np.prod(x.shape[:-1])) * weight.shape[0] * weight.shape[1])
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    In training mode batch statistics are used and running statistics are
    updated in place; in eval mode the running statistics are used.
    """
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        batch = x.shape[0] * x.shape[2] * x.shape[3]
        unbiased = var.data * batch / max(batch - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased.reshape(-1)
    else:
        mean = Tensor(running_mean.reshape(1, -1, 1, 1))
        var = Tensor(running_var.reshape(1, -1, 1, 1))
    profiling.record("batch_norm", 4 * x.size)
    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * gamma.reshape(1, -1, 1, 1) + beta.reshape(1, -1, 1, 1)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale survivors by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward)


# ----------------------------------------------------------------------
# Activations / classification heads
# ----------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, max(x, 0)."""
    profiling.record("activation", x.size)
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU: x for x > 0, ``negative_slope * x`` otherwise."""
    mask = x.data > 0
    out = np.where(mask, x.data, negative_slope * x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * np.where(mask, 1.0, negative_slope))

    return Tensor._make(out, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits ``(N, C)`` and integer labels ``(N,)``."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D array of class indices")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities."""
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    return -log_probs[np.arange(n), targets].mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    return (prediction - target).abs().mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = 1, eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis`` (used by the Eq. 3 regulariser)."""
    dot = (a * b).sum(axis=axis)
    norm_a = (a * a).sum(axis=axis).sqrt()
    norm_b = (b * b).sum(axis=axis).sqrt()
    return dot / (norm_a * norm_b + eps)
