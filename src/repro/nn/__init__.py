"""``repro.nn`` — a pure-NumPy deep-learning substrate.

This subpackage replaces PyTorch for the reproduction: reverse-mode autograd
(:mod:`repro.nn.tensor`), functional ops (:mod:`repro.nn.functional`), layers
(:mod:`repro.nn.modules`), initialisers (:mod:`repro.nn.init`) and optimisers
(:mod:`repro.nn.optim`).
"""

from repro.nn import arena, functional, init, optim
from repro.nn import batched
from repro.nn.arena import TensorArena, active_arena, use_arena
from repro.nn.batched import StackedBodies, UnstackableError, stack_modules, unbind
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    UpsampleNearest2d,
)
from repro.nn.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    LRScheduler,
    Optimizer,
    StackedAdam,
    StackedSGD,
    StepLR,
)
from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, ones, randn, stack, where, zeros

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "ConvTranspose2d",
    "CosineAnnealingLR",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LRScheduler",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "StackedAdam",
    "StackedBodies",
    "StackedSGD",
    "StepLR",
    "TensorArena",
    "Tanh",
    "Tensor",
    "UnstackableError",
    "UpsampleNearest2d",
    "active_arena",
    "arena",
    "as_tensor",
    "batched",
    "concat",
    "functional",
    "init",
    "no_grad",
    "ones",
    "optim",
    "randn",
    "stack",
    "stack_modules",
    "unbind",
    "use_arena",
    "where",
    "zeros",
]
