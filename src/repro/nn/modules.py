"""Layer and container abstractions over the functional API.

The design mirrors the familiar ``torch.nn`` surface (``Module``,
``Sequential``, named parameters, ``state_dict``) so that the models in the
paper can be expressed naturally, while staying small enough to audit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module` and NumPy-array
    buffers as attributes; registration is automatic.  ``forward`` must be
    overridden; calling the module invokes it.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ---------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in ``state_dict`` (e.g. running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- forward --------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes / gradients -----------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze (``flag=False``) or unfreeze every parameter of the module."""
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # -- (de)serialisation -------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            param.data = state[name].astype(param.data.dtype).copy()
        for name, buf in own_buffers.items():
            buf[...] = state[name]

    def copy_from(self, other: "Module") -> "Module":
        """Copy all parameters and buffers from a structurally identical module."""
        self.load_state_dict(other.state_dict())
        return self


class Sequential(Module):
    """Feed-forward container applying children in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        for i, layer in enumerate(layers):
            setattr(self, str(i), layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._modules.values():
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, layer: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), layer)
        return self


class ModuleList(Module):
    """Holds submodules in a list; useful for the N server nets of Ensembler."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Identity(Module):
    """Pass-through layer (used for 'no noise' slots)."""
    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else new_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.bias_uniform(in_features, out_features, rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else new_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(init.bias_uniform(fan_in, out_channels, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ConvTranspose2d(Module):
    """Transposed 2-D convolution layer (used by inversion decoders)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, output_padding: int = 0,
                 bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else new_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.output_padding = output_padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(init.bias_uniform(fan_in, out_channels, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride,
                                  padding=self.padding, output_padding=self.output_padding)


class BatchNorm2d(Module):
    """Batch normalisation with running statistics.

    ``record_batch_stats`` supports statistics-matching losses (DeepInversion
    style): when enabled, each forward stores the *input's* differentiable
    batch mean/variance in ``recorded_stats`` without changing the output
    (which keeps using running statistics in eval mode).
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.record_batch_stats = False
        self.recorded_stats: tuple[Tensor, Tensor] | None = None

    def forward(self, x: Tensor) -> Tensor:
        if self.record_batch_stats:
            self.recorded_stats = (x.mean(axis=(0, 2, 3)), x.var(axis=(0, 2, 3)))
        return F.batch_norm2d(x, self.gamma, self.beta, self.running_mean, self.running_var,
                              training=self.training, momentum=self.momentum, eps=self.eps)


class ReLU(Module):
    """Rectified linear unit layer."""
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU layer."""
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    """Hyperbolic-tangent layer."""
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid layer (decoder output range)."""
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MaxPool2d(Module):
    """Max-pooling layer over NCHW input."""
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    """Average-pooling layer over NCHW input."""
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Spatial global average pooling to (N, C)."""
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class UpsampleNearest2d(Module):
    """Nearest-neighbour upsampling layer."""
    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)


class Flatten(Module):
    """Flatten trailing dimensions from ``start_dim``."""
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else new_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)
