"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` for determinism
and return plain NumPy arrays; layer constructors wrap them into parameters.
"""

from __future__ import annotations

import math

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (out, in, kh, kw) shapes."""
    if len(shape) < 2:
        raise ValueError("fan computation requires at least 2 dimensions")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0),
                   dtype=np.float32) -> np.ndarray:
    """He initialisation for ReLU networks: N(0, gain^2 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0),
                    dtype=np.float32) -> np.ndarray:
    """He initialisation with a uniform distribution."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                  dtype=np.float32) -> np.ndarray:
    """Glorot initialisation: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(dtype)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                   dtype=np.float32) -> np.ndarray:
    """Glorot initialisation with a uniform distribution."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def bias_uniform(fan_in: int, size: int, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=size).astype(dtype)
