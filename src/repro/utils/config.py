"""Small immutable configuration helper used across experiment code."""

from __future__ import annotations

import dataclasses
from typing import Any


class FrozenConfig:
    """Base class for frozen dataclass configs with dict round-tripping.

    Subclasses are expected to be decorated with
    ``@dataclasses.dataclass(frozen=True)``.  The helpers here keep the
    experiment layer honest: configs serialise to plain dicts for logging and
    can be rebuilt with overrides without mutating the original.
    """

    def to_dict(self) -> dict[str, Any]:
        """Return the config as a plain dictionary (recursively)."""
        return dataclasses.asdict(self)  # type: ignore[arg-type]

    def replace(self, **overrides: Any) -> "FrozenConfig":
        """Return a copy with ``overrides`` applied."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def from_dict(cls, values: dict[str, Any]) -> "FrozenConfig":
        """Build a config from a dictionary, ignoring unknown keys."""
        field_names = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        known = {k: v for k, v in values.items() if k in field_names}
        return cls(**known)
