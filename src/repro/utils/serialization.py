"""Checkpointing: save/load module state dicts as ``.npz`` archives.

The training stages of Ensembler are expensive relative to inference, so the
defense artifacts (stage-1 nets, the stage-3 head/tail, noise maps) need to
be persistable.  NumPy's ``.npz`` container round-trips every parameter and
buffer exactly; the client-secret selector indices are deliberately *not*
serialised by :func:`save_module` — persisting the secret is the caller's
decision (see :func:`save_selector`).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.selector import Selector
from repro.nn.modules import Module


def save_module(module: Module, path: str | pathlib.Path) -> None:
    """Write a module's parameters and buffers to ``path`` (.npz)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | pathlib.Path) -> Module:
    """Load a state dict saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module


def save_selector(selector: Selector, path: str | pathlib.Path) -> None:
    """Persist the client's secret selector.

    Store this only on the client: anyone holding this file can break the
    defense (the whole point of Ensembler is that the server never sees it).
    """
    np.savez(path, num_nets=np.int64(selector.num_nets),
             indices=np.asarray(selector.indices, dtype=np.int64))


def load_selector(path: str | pathlib.Path) -> Selector:
    """Load a selector saved by :func:`save_selector`."""
    with np.load(path) as archive:
        num_nets = int(archive["num_nets"])
        indices = tuple(int(i) for i in archive["indices"])
    return Selector(num_nets, indices)
