"""Deterministic random-number management.

Every stochastic component in the library (weight init, data synthesis, noise
layers, selector draws, attack initialisation) takes an explicit
``numpy.random.Generator`` so that experiments are reproducible bit-for-bit
from a single seed.  A module-level default generator exists only as a
convenience for interactive use.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_default_rng = np.random.default_rng(_DEFAULT_SEED)


def seed_everything(seed: int) -> np.random.Generator:
    """Reset the library-wide default generator and return it.

    Components that were constructed earlier keep their own generators; only
    code that relies on the module default is affected.
    """
    global _default_rng
    _default_rng = np.random.default_rng(seed)
    return _default_rng


def default_rng() -> np.random.Generator:
    """Return the library-wide default generator."""
    return _default_rng


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a fresh generator.

    With ``seed=None`` the new generator is split off the library default so
    that successive calls produce independent streams yet the whole program
    stays reproducible after :func:`seed_everything`.
    """
    if seed is not None:
        return np.random.default_rng(seed)
    return spawn_rng(_default_rng)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def spawn_many(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    return [spawn_rng(rng) for _ in range(count)]


class RngMixin:
    """Mixin giving a class a lazily-created private generator.

    Subclasses may set ``self._rng`` in ``__init__``; otherwise the first
    access derives one from the library default.
    """

    _rng: np.random.Generator | None = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = spawn_rng(_default_rng)
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value
