"""Library logging setup.

The library never configures the root logger; it only attaches a
``NullHandler`` so that applications control output.  ``get_logger`` is the
single entry point used by all subpackages.
"""

from __future__ import annotations

import logging

_LIBRARY_ROOT = "repro"

logging.getLogger(_LIBRARY_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root."""
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the library root (idempotent).

    Used by example scripts and the benchmark harness; tests leave logging
    silent.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s"))
        root.addHandler(handler)
    root.setLevel(level)
