"""Shared utilities: deterministic RNG management, configuration, logging."""

from repro.utils.rng import RngMixin, new_rng, seed_everything, spawn_rng
from repro.utils.config import FrozenConfig
from repro.utils.logging import get_logger

__all__ = [
    "FrozenConfig",
    "RngMixin",
    "get_logger",
    "new_rng",
    "seed_everything",
    "spawn_rng",
]
