"""Schrödinger's model: why the attacker cannot find the right subset.

Section III-D argues that an arbitrary reconstruction against *some* subset
of the ensemble looks successful to the attacker — the shadow network
converges and produces plausible images — so nothing tells it which subset
is the client's secret, and certainty costs an O(2^N) enumeration.

This demo builds a small ensemble (N=4 so the enumeration finishes in
minutes), attacks every subset of the known size P, and prints what the
attacker sees (its own converged losses) next to what it cannot see (the
true reconstruction quality against the client's secret subset).

Run:  python examples/brute_force_demo.py
"""

import numpy as np

from repro.attacks import AttackConfig, InversionAttack, brute_force_attack
from repro.core import EnsemblerConfig, TrainingConfig, brute_force_search_space
from repro.data import cifar10_like
from repro.defenses import fit_ensembler
from repro.models import ResNetConfig
from repro.utils.logging import enable_console_logging
from repro.utils.rng import new_rng


def main() -> None:
    enable_console_logging()
    bundle = cifar10_like(size=16, train_per_class=12, test_per_class=4, num_classes=6)
    model_config = ResNetConfig(num_classes=6, stem_channels=8, stage_channels=(8, 16),
                                blocks_per_stage=(1, 1), use_maxpool=True)
    train = TrainingConfig(epochs=3, batch_size=32, lr=0.05)
    config = EnsemblerConfig(num_nets=4, num_active=2, sigma=0.1, lambda_reg=1.0,
                             stage1=train, stage3=train)

    defense = fit_ensembler(bundle, model_config, config=config, rng=new_rng(0))
    secret = defense.selector.indices
    print(f"client's secret subset: {secret}  (the attacker must not learn this)")
    print(f"search space: {brute_force_search_space(4)} subsets total, "
          f"{brute_force_search_space(4, 2)} of the leaked size P=2\n")

    attack = InversionAttack(model_config, bundle.image_shape, bundle.train,
                             AttackConfig(
                                 shadow=TrainingConfig(epochs=5, batch_size=32, lr=2e-3,
                                                       optimizer="adam"),
                                 decoder=TrainingConfig(epochs=5, batch_size=32, lr=3e-3,
                                                        optimizer="adam"),
                                 decoder_width=16),
                             rng=new_rng(1))
    attack.observe_traffic(defense.intermediate(bundle.train.images[:64]))
    outcome = brute_force_attack(defense, attack, bundle.test.images[:8], known_p=2)

    print(f"{'subset':>10} {'true SSIM':>10} {'true PSNR':>10}   (true = vs client secret)")
    for subset, metrics in outcome.per_subset:
        marker = " <- secret" if tuple(subset) == secret else ""
        print(f"{str(subset):>10} {metrics.ssim:>10.3f} {metrics.psnr:>10.2f}{marker}")

    best_subset, best_metrics = outcome.best("ssim")
    print(f"\nbest-looking reconstruction came from subset {best_subset} "
          f"(SSIM {best_metrics.ssim:.3f})")
    print("every subset yields a *converged* shadow network, so without the "
          "client's secret the attacker\ncannot tell the winner from the rest — "
          "this is the O(2^N) certainty cost of Section III-D.")


if __name__ == "__main__":
    main()
