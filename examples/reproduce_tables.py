"""Regenerate the paper's tables from the command line.

Examples:
    python examples/reproduce_tables.py --table 3
    python examples/reproduce_tables.py --table 1 --preset tiny --datasets cifar10
    python examples/reproduce_tables.py --table 2 --preset small --out results/

Table III runs in seconds; Tables I and II train every defense and mount
every attack, so expect minutes at the ``small`` preset (the EXPERIMENTS.md
scale) and use ``--preset tiny`` for a fast smoke run.
"""

import argparse
import pathlib

from repro.experiments import run_table1, run_table2, run_table3
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--table", type=int, choices=(1, 2, 3), required=True,
                        help="which table of the paper to regenerate")
    parser.add_argument("--preset", default="small", choices=("tiny", "small", "paper"),
                        help="experiment scale (see DESIGN.md section 5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="Table I only: subset of {cifar10, cifar100, celeba}")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to also write the markdown into")
    args = parser.parse_args()

    enable_console_logging()
    if args.table == 1:
        datasets = tuple(args.datasets) if args.datasets else None
        result = run_table1(args.preset, seed=args.seed, datasets=datasets)
        markdown = result.to_markdown()
    elif args.table == 2:
        result = run_table2(args.preset, seed=args.seed)
        markdown = result.to_markdown()
    else:
        result = run_table3()
        markdown = result.to_markdown()

    print(markdown)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"table{args.table}_{args.preset}_seed{args.seed}.md"
        path.write_text(markdown + "\n")
        print(f"\nwritten to {path}")


if __name__ == "__main__":
    main()
