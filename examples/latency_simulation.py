"""Latency study: what does Ensembler cost at inference time? (Table III)

Reproduces the paper's latency table on the calibrated Raspberry-Pi /
A6000 / wired-LAN cost model, then explores the two knobs the paper
discusses in Section III-D:

* ensemble size N — server compute is parallel, so overhead grows slowly;
* multiparty deployment — spreading the N nets over independent servers
  removes even the serial fraction, at unchanged communication cost.

Run:  python examples/latency_simulation.py
"""

from repro.experiments import run_table3
from repro.latency import LatencyModel, StampModel, workload_from_model
from repro.models import ResNetConfig


def main() -> None:
    print("== Table III (ResNet-18, batch 128) ==")
    result = run_table3()
    print(result.to_markdown())
    print(f"Ensembler overhead: {result.overhead_fraction * 100:.1f}% "
          f"(paper reports 4.8%)")
    print(f"STAMP vs standard CI: {result.stamp.total_s / result.standard.total_s:.0f}x")

    print("\n== overhead vs ensemble size N ==")
    workload = workload_from_model(ResNetConfig(num_classes=10), 32, 128)
    model = LatencyModel()
    standard = model.standard_ci(workload)
    print(f"{'N':>4} {'total (s)':>10} {'overhead':>9}")
    for num_nets in (1, 2, 5, 10, 20, 50):
        row = model.ensembler(workload, num_nets)
        overhead = (row.total_s - standard.total_s) / standard.total_s
        print(f"{num_nets:>4} {row.total_s:>10.2f} {overhead * 100:>8.1f}%")

    print("\n== multiparty deployment (one server per net) ==")
    # With fully independent servers the Amdahl serial fraction vanishes.
    multiparty = LatencyModel(serial_fraction=0.0)
    row = multiparty.ensembler(workload, 10)
    print(f"10 servers: total {row.total_s:.2f}s "
          f"(single-server: {model.ensembler(workload, 10).total_s:.2f}s)")

    print("\n== sensitivity: what if the link were 10x faster? ==")
    from repro.latency import NetworkModel, RASPBERRY_PI, A6000
    fast = LatencyModel(network=NetworkModel("fast-lan", 295.0, 1700.0, 0.001))
    std_fast = fast.standard_ci(workload)
    ens_fast = fast.ensembler(workload, 10)
    print(f"standard {std_fast.total_s:.2f}s, ensembler {ens_fast.total_s:.2f}s "
          f"(+{(ens_fast.total_s / std_fast.total_s - 1) * 100:.1f}%) — "
          "communication stops dominating, as Section IV-D anticipates")


if __name__ == "__main__":
    main()
