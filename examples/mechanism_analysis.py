"""Inspect *why* Ensembler works: head-similarity diagnostics.

Section III-C claims two properties that the defense rests on:

1. the N stage-1 heads end up mutually dissimilar, because each is trained
   against its own quasi-orthogonal fixed noise map;
2. the stage-3 head is dissimilar from every stage-1 head, enforced by the
   Eq. 3 cosine-similarity regulariser.

This example trains a small ensemble, prints the full head-similarity matrix
and the stage-3-vs-stage-1 profile, and contrasts a regularised run with a
λ=0 ablation — making the "favored net" effect of Section IV-C visible.

Run:  python examples/mechanism_analysis.py
"""

import numpy as np

from repro.core import EnsemblerConfig, EnsemblerTrainer, TrainingConfig, mechanism_report
from repro.data import cifar10_like
from repro.models import ResNetConfig
from repro.utils.logging import enable_console_logging
from repro.utils.rng import new_rng


def print_matrix(matrix: np.ndarray) -> None:
    for row in matrix:
        print("   " + " ".join(f"{value:+.2f}" for value in row))


def main() -> None:
    enable_console_logging()
    bundle = cifar10_like(size=16, train_per_class=24, test_per_class=8, num_classes=8)
    model_config = ResNetConfig(num_classes=8, stem_channels=8, stage_channels=(8, 16),
                                blocks_per_stage=(1, 1), use_maxpool=True)
    train = TrainingConfig(epochs=4, batch_size=32, lr=0.05)
    probe = bundle.test.images[:32]

    for lam in (1.0, 0.0):
        config = EnsemblerConfig(num_nets=5, num_active=3, sigma=0.1, lambda_reg=lam,
                                 stage1=train,
                                 stage3=TrainingConfig(epochs=8, batch_size=32, lr=0.05))
        trainer = EnsemblerTrainer(model_config, 16, config, rng=new_rng(0))
        result = trainer.train(bundle.train)
        report = mechanism_report(result, probe)

        print(f"\n=== lambda = {lam} ===")
        print("stage-1 pairwise head similarity (standardised cosine):")
        print_matrix(report.stage1_pairwise)
        print("stage-3 head vs each stage-1 head "
              f"(selected = {report.selected_indices}):")
        values = " ".join(f"{v:+.2f}" for v in report.stage3_vs_stage1)
        print(f"   {values}")
        print(report.summary())
        if lam == 0.0:
            favored = int(np.abs(report.stage3_vs_stage1).argmax())
            print(f"without the regulariser the head leans on net {favored} — "
                  "the 'favored net' a single-net attack exploits (Section IV-C)")


if __name__ == "__main__":
    main()
