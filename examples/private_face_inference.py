"""Domain scenario: privacy-preserving face identification at the edge.

The paper's motivating deployment (Section I): an edge camera classifies
faces by offloading the heavy layers to an untrusted cloud.  The cloud is
semi-honest — it serves the model but tries to reconstruct the faces from the
uploaded features.  This example uses the CelebA-HQ-like stand-in to show:

* the unprotected split leaks faces (the attack reconstructs them);
* Ensembler's selective ensemble destroys the reconstruction while keeping
  identification accuracy;
* the brute-force cost the attacker would pay to do better (Section III-D).

Run:  python examples/private_face_inference.py
"""

import numpy as np

from repro.attacks import AttackConfig, InversionAttack, evaluate_reconstruction
from repro.attacks.evaluation import (
    best_single_net,
    observe_victim_traffic,
    run_adaptive_attack,
    run_single_net_attacks,
)
from repro.core import EnsemblerConfig, TrainingConfig, brute_force_search_space
from repro.data import celeba_hq_like
from repro.defenses import fit_ensembler, fit_no_defense
from repro.models import ResNetConfig
from repro.utils.logging import enable_console_logging
from repro.utils.rng import new_rng


def ascii_strip(images: np.ndarray, width: int = 24) -> str:
    """Render a batch of images as coarse ASCII luminance strips."""
    ramp = " .:-=+*#%@"
    lines = []
    for image in images:
        gray = image.mean(axis=0)
        step = max(1, gray.shape[0] // 8)
        row_blocks = gray[::step, ::max(1, gray.shape[1] // width)]
        for row in row_blocks:
            lines.append("".join(ramp[min(int(v * len(ramp)), len(ramp) - 1)] for v in row))
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    enable_console_logging()
    rng = new_rng(3)

    bundle = celeba_hq_like(size=24, num_identities=6, train_per_identity=24,
                            test_per_identity=6, rng=np.random.default_rng(5))
    # CelebA setting of the paper: no stem max-pool, so the uploaded features
    # keep full spatial resolution — the leakiest configuration.
    model_config = ResNetConfig(num_classes=6, stem_channels=8, stage_channels=(8, 16),
                                blocks_per_stage=(1, 1), use_maxpool=False)
    train = TrainingConfig(epochs=4, batch_size=32, lr=0.05)
    attack_config = AttackConfig(
        shadow=TrainingConfig(epochs=8, batch_size=32, lr=2e-3, optimizer="adam"),
        decoder=TrainingConfig(epochs=8, batch_size=32, lr=3e-3, optimizer="adam"),
        decoder_width=24)

    probe = bundle.test.images[:3]
    traffic = bundle.train.images[:96]

    print("== deploying the unprotected split ==")
    undefended = fit_no_defense(bundle, model_config, training=train, rng=rng)
    print(f"identification accuracy: {undefended.accuracy(bundle.test):.3f}")
    attacker = InversionAttack(model_config, bundle.image_shape, bundle.train,
                               attack_config, rng=new_rng(11))
    observe_victim_traffic(undefended, attacker, traffic)
    artifacts = attacker.attack_single(undefended.bodies[0])
    leak = evaluate_reconstruction(undefended, artifacts, probe)
    print(f"attack on unprotected features: SSIM {leak.ssim:.3f}, PSNR {leak.psnr:.2f} dB")

    print("\noriginal faces vs cloud reconstruction (ASCII):")
    print(ascii_strip(probe))
    print(ascii_strip(artifacts.reconstruct(undefended.intermediate(probe))))

    print("== deploying Ensembler (N=6, P=3 secret) ==")
    config = EnsemblerConfig(num_nets=6, num_active=3, sigma=0.1, lambda_reg=1.0,
                             stage1=train, stage3=train)
    defended = fit_ensembler(bundle, model_config, config=config, rng=rng)
    print(f"identification accuracy: {defended.accuracy(bundle.test):.3f}")

    attacker = InversionAttack(model_config, bundle.image_shape, bundle.train,
                               attack_config, rng=new_rng(11))
    singles = run_single_net_attacks(defended, attacker, probe, traffic_images=traffic)
    adaptive = run_adaptive_attack(defended, attacker, probe)
    best = best_single_net(singles, "ssim")
    print(f"best single-net attack:  SSIM {best.ssim:.3f}, PSNR {best.psnr:.2f} dB")
    print(f"adaptive (all-N) attack: SSIM {adaptive.ssim:.3f}, PSNR {adaptive.psnr:.2f} dB")

    subsets = brute_force_search_space(config.num_nets)
    print(f"\nbrute-force space the attacker faces: {subsets} subsets "
          f"({brute_force_search_space(config.num_nets, config.num_active)} even if P leaks)")


if __name__ == "__main__":
    main()
