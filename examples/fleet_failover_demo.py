"""Fleet failover: kill a replica mid-trace and watch nothing get lost.

A :class:`ServiceFleet` runs four full serving replicas behind a
consistent-hash ring.  Every session checkpoints periodically
(versioned, CRC-sealed ``SessionState`` blobs); a heartbeat failure
detector walks silent replicas HEALTHY -> SUSPECT -> DOWN; and when one
goes DOWN it is fenced, evicted from the ring, and only *its* sessions
re-home (about 1/N of the fleet), restored bit-exactly from their last
checkpoint with in-flight requests recovered by client retry timeouts
under the same request ids.

This demo replays one bursty trace twice on virtual clocks:

1. fault-free, as the goodput baseline;
2. with replica 2 crash-killed at t = 50% of the trace — then prints
   the per-replica health timeline, the failover blast radius and the
   goodput split before/after the kill.

Everything is seeded and event-driven: run it twice and the detector
fires, the sessions migrate and the retries land identically.

Run:  python examples/fleet_failover_demo.py
"""

import numpy as np

from repro import nn
from repro.ci import Server
from repro.ci.pipeline import Client
from repro.models import ResNetConfig
from repro.models.resnet import ResNet
from repro.serving import (
    FaultInjector,
    FaultPlan,
    FleetPolicy,
    InferenceService,
    ReplicaFault,
    RetryPolicy,
    ServiceFleet,
    TickCost,
    bursty_trace,
    simulate_fleet,
)
from repro.utils.rng import new_rng

NUM_NETS = 4
NUM_REPLICAS = 4
NUM_SESSIONS = 8
KILL_REPLICA = 2
KILL_AT = 0.24  # 50% of the trace: bursts land at 0.00/0.08/.../0.40

POLICY = FleetPolicy(heartbeat_interval_s=0.01, suspect_after_s=0.025,
                     down_after_s=0.05, checkpoint_interval_s=0.02)
RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.004, multiplier=2.0,
                    max_delay_s=0.05, jitter=0.1, timeout_s=0.06)
COST = TickCost(pass_overhead_s=0.004, per_sample_s=0.0005,
                per_request_downlink_s=0.0002)


def build_bodies():
    config = ResNetConfig(num_classes=4, stem_channels=8,
                          stage_channels=(8, 16), blocks_per_stage=(1, 1),
                          use_maxpool=True)
    bodies = [ResNet(config, rng=new_rng(i)).body for i in range(NUM_NETS)]
    for body in bodies:
        body.eval()
    return bodies


def replay(bodies, features, kill_replica=None):
    plan = FaultPlan(replica_faults=(
        (ReplicaFault(replica=kill_replica, at_s=KILL_AT),)
        if kill_replica is not None else ()))
    replicas = [InferenceService(Server(bodies), max_batch=4,
                                 max_queue=4 * NUM_SESSIONS)
                for _ in range(NUM_REPLICAS)]
    fleet = ServiceFleet(replicas, policy=POLICY,
                         faults=FaultInjector(plan, seed=0))
    sessions = [fleet.adopt_session(Client(nn.Identity(), nn.Identity()))
                for _ in range(NUM_SESSIONS)]
    trace = bursty_trace(num_sessions=NUM_SESSIONS, bursts=6,
                         burst_size=NUM_SESSIONS, burst_gap_s=0.08)
    report = simulate_fleet(fleet, sessions, trace, COST,
                            default_features=features, retry=RETRY)
    return fleet, report


def show(label, report):
    print(f"{label}:")
    print(f"  served {report.served}/{report.submitted}, "
          f"goodput {report.goodput_rps:.1f} req/s, "
          f"p95 {report.p95_s * 1e3:.1f} ms")
    print(f"  failovers {report.failovers}, "
          f"migrated sessions {report.migrated_sessions}, "
          f"duplicate serves {report.duplicate_serves}, "
          f"lost submits {report.lost_submits}")
    ticks = ", ".join(f"r{rid}:{n}"
                      for rid, n in sorted(report.ticks_by_replica.items()))
    print(f"  ticks by replica: {ticks}")
    print(f"  terminal states: "
          f"{ {k: v for k, v in report.terminal_counts.items() if v} }"
          f"  (conserved: {report.conservation_ok})\n")


def show_timeline(report):
    print(f"health timeline (replica {KILL_REPLICA} killed "
          f"at t={KILL_AT * 1e3:.0f} ms):")
    for t, rid, state in report.health_log:
        if t > 0.0 or rid == KILL_REPLICA:
            print(f"  t={t * 1e3:6.1f} ms  replica {rid}: {state}")
    print()


def main() -> None:
    bodies = build_bodies()
    features = np.random.default_rng(0).random((1, 8, 8, 8),
                                               dtype=np.float32)

    _, baseline = replay(bodies, features)
    show(f"fault-free baseline ({NUM_REPLICAS} replicas, "
         f"{NUM_SESSIONS} sessions)", baseline)

    fleet, chaos = replay(bodies, features, kill_replica=KILL_REPLICA)
    show(f"failover (replica {KILL_REPLICA} crashed mid-trace)", chaos)
    show_timeline(chaos)

    before = chaos.goodput_between(0.0, KILL_AT)
    after = chaos.goodput_between(KILL_AT, max(chaos.makespan_s,
                                               KILL_AT + 1e-9))
    ratio = (chaos.goodput_rps / baseline.goodput_rps
             if baseline.goodput_rps > 0 else 0.0)
    print(f"goodput before kill {before:.1f} req/s, after {after:.1f} req/s; "
          f"overall {ratio:.2f}x the fault-free baseline")
    print(f"fleet totals: {fleet.fleet_stats.failovers} failover(s), "
          f"{fleet.fleet_stats.migrated_sessions}/{NUM_SESSIONS} sessions "
          f"re-homed ({fleet.fleet_stats.restored_sessions} restored from "
          f"checkpoints), {fleet.checkpoints.snapshots} snapshots taken")


if __name__ == "__main__":
    main()
