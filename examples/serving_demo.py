"""Multi-tenant serving demo: many clients, one fused ensemble server.

Simulates a fleet of concurrent edge clients talking to one Ensembler
server through the typed serving API (:mod:`repro.serving`):

1. the server deploys N bodies once, behind an :class:`InferenceService`;
2. each client opens a :class:`Session` with its *own* secret selector and
   its own per-session noise map (``noise_seed``) — tenants never share
   client-side secrets;
3. clients submit uploads concurrently; the deterministic tick scheduler
   coalesces up to ``max_batch`` of them into **one** stacked forward over
   all N bodies and routes the N feature maps back per session;
4. the same request stream is replayed without coalescing
   (``max_batch=1``) to show the amortisation win, and the bounded queue
   is overfilled to show backpressure.

The nets are randomly initialised — this demo is about the serving plane,
not accuracy (see quickstart.py for the trained end-to-end loop).

Run:  python examples/serving_demo.py
"""

import time

import numpy as np

from repro.ci import Server
from repro.core.selector import Selector
from repro.models.resnet import ResNetConfig, ResNetBody, ResNetHead, ResNetTail
from repro.serving import BackpressureError, InferenceService
from repro.utils.rng import new_rng

NUM_NETS = 8
NUM_CLIENTS = 8
NUM_ACTIVE = 3
ROUNDS = 4
IMAGE_HW = 16


def build_service(max_batch: int) -> tuple[InferenceService, ResNetConfig]:
    config = ResNetConfig(num_classes=10, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNetBody(config, new_rng(100 + i)) for i in range(NUM_NETS)]
    for body in bodies:
        body.eval()
    service = InferenceService(Server(bodies), max_batch=max_batch,
                               max_queue=2 * NUM_CLIENTS)
    return service, config


def open_clients(service: InferenceService, config: ResNetConfig):
    sessions = []
    for c in range(NUM_CLIENTS):
        head = ResNetHead(config, new_rng(200 + c))
        tail = ResNetTail(config, new_rng(300 + c), in_multiplier=NUM_ACTIVE)
        head.eval()
        tail.eval()
        selector = Selector.random(NUM_NETS, NUM_ACTIVE, rng=new_rng(400 + c))
        sessions.append(service.open_session(
            head, tail, selector=selector, noise_seed=500 + c,
            noise_shape=config.intermediate_shape(IMAGE_HW), noise_sigma=0.1))
    return sessions


def serve_rounds(service, sessions, images) -> tuple[float, list[np.ndarray]]:
    """All clients upload each round; the service drains between rounds."""
    start = time.perf_counter()
    logits = []
    for _ in range(ROUNDS):
        request_ids = [sess.submit(images[c]) for c, sess in enumerate(sessions)]
        service.run_until_idle()
        logits.extend(sess.result(rid) for sess, rid in zip(sessions, request_ids))
    return time.perf_counter() - start, logits


def main() -> None:
    rng = np.random.default_rng(0)
    images = [rng.random((1, 3, IMAGE_HW, IMAGE_HW), dtype=np.float32)
              for _ in range(NUM_CLIENTS)]

    # --- coalesced serving --------------------------------------------
    service, config = build_service(max_batch=NUM_CLIENTS)
    sessions = open_clients(service, config)
    coalesced_s, coalesced_logits = serve_rounds(service, sessions, images)
    stats = service.stats
    print(f"coalesced: {stats.served_requests} requests in {stats.ticks} stacked "
          f"passes (mean {stats.mean_coalesced:.1f} req/pass) — {coalesced_s:.3f}s")

    # --- the same stream, one stacked pass per request ----------------
    sequential, config = build_service(max_batch=1)
    seq_sessions = open_clients(sequential, config)
    sequential_s, sequential_logits = serve_rounds(sequential, seq_sessions, images)
    print(f"sequential: {sequential.stats.served_requests} requests in "
          f"{sequential.stats.ticks} passes — {sequential_s:.3f}s")
    print(f"coalescing speedup: {sequential_s / coalesced_s:.2f}x")
    diff = max(float(np.abs(a - b).max())
               for a, b in zip(coalesced_logits, sequential_logits))
    print(f"output equivalence: max |coalesced - sequential| = {diff:.2e}")

    # --- per-session and aggregate accounting -------------------------
    one = sessions[0].stats
    print(f"\nper-session traffic ({ROUNDS} requests): {one.uplink_bytes} B up, "
          f"{one.downlink_bytes} B down ({one.downlink_messages} responses of "
          f"{NUM_NETS} feature maps each)")
    totals = service.transfer_totals()
    print(f"aggregate ({NUM_CLIENTS} tenants): {totals.uplink_bytes} B up, "
          f"{totals.downlink_bytes} B down, {totals.total_messages} messages")

    # --- backpressure --------------------------------------------------
    rejected = 0
    try:
        for _ in range(10 * NUM_CLIENTS):
            sessions[0].submit(images[0])
    except BackpressureError:
        rejected = 1
    service.run_until_idle()
    print(f"\nbackpressure: bounded queue (max {service.config.max_queue}) "
          f"{'rejected the overflow request' if rejected else 'never filled'}; "
          f"service counted {service.stats.rejected_requests} rejection(s)")


if __name__ == "__main__":
    main()
