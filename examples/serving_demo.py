"""Multi-tenant serving demo: many clients, one fused ensemble server.

Simulates a fleet of concurrent edge clients talking to one Ensembler
server through the typed serving API (:mod:`repro.serving`):

1. the server deploys N bodies once, behind an :class:`InferenceService`;
2. each client opens a :class:`Session` with its *own* secret selector and
   its own per-session noise map (``noise_seed``) — tenants never share
   client-side secrets;
3. clients submit uploads concurrently; the deterministic tick scheduler
   coalesces up to ``max_batch`` of them into **one** stacked forward over
   all N bodies and routes the N feature maps back per session;
4. the same request stream is replayed without coalescing
   (``max_batch=1``) to show the amortisation win, and the bounded queue
   is overfilled to show backpressure;
5. the pluggable scheduler layer: fair-share keeps a chatty tenant from
   monopolising a stacked pass, the event-driven simulator shows
   deadline-aware adaptive batching beating drain-the-queue FIFO p95 on a
   bursty trace, and an fp16-codec session narrows its downlink frames
   (the payload halves; tiny demo maps stay partly header-bound).

The nets are randomly initialised — this demo is about the serving plane,
not accuracy (see quickstart.py for the trained end-to-end loop).

Run:  python examples/serving_demo.py
"""

import time

import numpy as np

from repro.ci import Server
from repro.core.selector import Selector
from repro.models.resnet import ResNetConfig, ResNetBody, ResNetHead, ResNetTail
from repro.serving import (
    BackpressureError,
    DeadlineScheduler,
    InferenceService,
    TickCost,
    bursty_trace,
    simulate,
)
from repro.utils.rng import new_rng

NUM_NETS = 8
NUM_CLIENTS = 8
NUM_ACTIVE = 3
ROUNDS = 4
IMAGE_HW = 16


def build_service(max_batch: int, scheduler="fifo",
                  codec="fp32") -> tuple[InferenceService, ResNetConfig]:
    config = ResNetConfig(num_classes=10, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNetBody(config, new_rng(100 + i)) for i in range(NUM_NETS)]
    for body in bodies:
        body.eval()
    service = InferenceService(Server(bodies), max_batch=max_batch,
                               max_queue=2 * NUM_CLIENTS, scheduler=scheduler,
                               codec=codec)
    return service, config


def open_clients(service: InferenceService, config: ResNetConfig):
    sessions = []
    for c in range(NUM_CLIENTS):
        head = ResNetHead(config, new_rng(200 + c))
        tail = ResNetTail(config, new_rng(300 + c), in_multiplier=NUM_ACTIVE)
        head.eval()
        tail.eval()
        selector = Selector.random(NUM_NETS, NUM_ACTIVE, rng=new_rng(400 + c))
        sessions.append(service.open_session(
            head, tail, selector=selector, noise_seed=500 + c,
            noise_shape=config.intermediate_shape(IMAGE_HW), noise_sigma=0.1))
    return sessions


def serve_rounds(service, sessions, images) -> tuple[float, list[np.ndarray]]:
    """All clients upload each round; the service drains between rounds."""
    start = time.perf_counter()
    logits = []
    for _ in range(ROUNDS):
        request_ids = [sess.submit(images[c]) for c, sess in enumerate(sessions)]
        service.run_until_idle()
        logits.extend(sess.result(rid) for sess, rid in zip(sessions, request_ids))
    return time.perf_counter() - start, logits


def main() -> None:
    rng = np.random.default_rng(0)
    images = [rng.random((1, 3, IMAGE_HW, IMAGE_HW), dtype=np.float32)
              for _ in range(NUM_CLIENTS)]

    # --- coalesced serving --------------------------------------------
    service, config = build_service(max_batch=NUM_CLIENTS)
    sessions = open_clients(service, config)
    coalesced_s, coalesced_logits = serve_rounds(service, sessions, images)
    stats = service.stats
    print(f"coalesced: {stats.served_requests} requests in {stats.ticks} stacked "
          f"passes (mean {stats.mean_coalesced:.1f} req/pass) — {coalesced_s:.3f}s")

    # --- the same stream, one stacked pass per request ----------------
    sequential, config = build_service(max_batch=1)
    seq_sessions = open_clients(sequential, config)
    sequential_s, sequential_logits = serve_rounds(sequential, seq_sessions, images)
    print(f"sequential: {sequential.stats.served_requests} requests in "
          f"{sequential.stats.ticks} passes — {sequential_s:.3f}s")
    print(f"coalescing speedup: {sequential_s / coalesced_s:.2f}x")
    diff = max(float(np.abs(a - b).max())
               for a, b in zip(coalesced_logits, sequential_logits))
    print(f"output equivalence: max |coalesced - sequential| = {diff:.2e}")

    # --- per-session and aggregate accounting -------------------------
    one = sessions[0].stats
    print(f"\nper-session traffic ({ROUNDS} requests): {one.uplink_bytes} B up, "
          f"{one.downlink_bytes} B down ({one.downlink_messages} responses of "
          f"{NUM_NETS} feature maps each)")
    totals = service.transfer_totals()
    print(f"aggregate ({NUM_CLIENTS} tenants): {totals.uplink_bytes} B up, "
          f"{totals.downlink_bytes} B down, {totals.total_messages} messages")

    # --- backpressure --------------------------------------------------
    rejected = 0
    try:
        for _ in range(10 * NUM_CLIENTS):
            sessions[0].submit(images[0])
    except BackpressureError:
        rejected = 1
    service.run_until_idle()
    print(f"\nbackpressure: bounded queue (max {service.config.max_queue}) "
          f"{'rejected the overflow request' if rejected else 'never filled'}; "
          f"service counted {service.stats.rejected_requests} rejection(s)")

    # --- fair-share scheduling: no tenant monopolises a pass ----------
    fair, config = build_service(max_batch=4, scheduler="fair")
    fair_sessions = open_clients(fair, config)
    chatty, *quiet = fair_sessions
    for _ in range(6):
        chatty.submit(images[0])
    quiet_ids = [sess.submit(images[1]) for sess in quiet[:3]]
    fair.tick()
    served_quiet = sum(sess.has_result(rid)
                       for sess, rid in zip(quiet[:3], quiet_ids))
    print(f"\nfair-share: chatty tenant queued 6 requests, yet the first "
          f"4-wide pass served {served_quiet} of 3 quiet tenants "
          f"(chatty still has {chatty.outstanding} outstanding)")
    fair.run_until_idle()

    # --- deadline-aware simulation on a bursty trace ------------------
    cost = TickCost(pass_overhead_s=0.010, per_sample_s=0.001)
    trace = bursty_trace(num_sessions=NUM_CLIENTS, bursts=3, burst_size=16,
                         burst_gap_s=0.08, deadline_s=0.04)
    probe = sessions[0].encode(images[0])
    reports = []
    for label, policy in (("fifo", "fifo"),
                          ("deadline", DeadlineScheduler(
                              pass_overhead_s=cost.pass_overhead_s,
                              sample_cost_s=cost.per_sample_s,
                              max_group_samples=16))):
        sim_service, sim_config = build_service(max_batch=4, scheduler=policy)
        sim_sessions = open_clients(sim_service, sim_config)
        reports.append(simulate(sim_service, sim_sessions, trace, cost,
                                default_features=probe))
    print("\nevent-driven simulation (3 bursts x 16 requests, 40 ms SLO):")
    for report in reports:
        print(f"  {report.summary()}")

    # --- fp16 downlink codec ------------------------------------------
    fp16_service, config = build_service(max_batch=NUM_CLIENTS, codec="fp16")
    fp16_sessions = open_clients(fp16_service, config)
    rid = fp16_sessions[0].submit(images[0])
    fp16_service.run_until_idle()
    fp16_logits = fp16_sessions[0].result(rid)
    fp16_down = fp16_sessions[0].stats.downlink_bytes
    fp32_stats = sessions[0].stats  # every response carries the same N maps
    fp32_down = fp32_stats.downlink_bytes // fp32_stats.downlink_messages
    drift = float(np.abs(fp16_logits - coalesced_logits[0]).max())
    print(f"\nfp16 downlink codec: {fp32_down} B -> {fp16_down} B per request "
          f"({fp32_down / fp16_down:.2f}x smaller), logits drift {drift:.2e}")


if __name__ == "__main__":
    main()
