"""Quickstart: split a network, run collaborative inference, defend it.

This walks the library's core loop end to end at toy scale (about a minute
on a laptop CPU):

1. build a CIFAR-10-like task and a split ResNet (client head+tail, server body);
2. run the standard collaborative-inference protocol over the byte-counting
   channel;
3. train the Ensembler defense (stages 1-3) and run the ensemble protocol;
4. mount the paper's model-inversion attack against both deployments and
   compare reconstruction quality (SSIM / PSNR — lower is better defense);
5. serve several tenants at once through the multi-tenant serving API,
   coalescing their concurrent uploads into one stacked ensemble pass
   (see examples/serving_demo.py for the full serving walkthrough).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import AttackConfig, InversionAttack, evaluate_reconstruction
from repro.attacks.evaluation import (
    best_single_net,
    observe_victim_traffic,
    run_single_net_attacks,
)
from repro.ci import Channel, Client, EnsembleCIPipeline, Server, StandardCIPipeline
from repro.core import EnsemblerConfig, TrainingConfig
from repro.data import cifar10_like
from repro.defenses import fit_ensembler, fit_no_defense
from repro.models import ResNetConfig
from repro.utils.logging import enable_console_logging
from repro.utils.rng import new_rng


def main() -> None:
    enable_console_logging()
    rng = new_rng(42)

    # --- 1. task + model configuration --------------------------------
    bundle = cifar10_like(size=16, train_per_class=24, test_per_class=8, num_classes=6)
    model_config = ResNetConfig(num_classes=6, stem_channels=8, stage_channels=(8, 16),
                                blocks_per_stage=(1, 1), use_maxpool=True)
    train = TrainingConfig(epochs=4, batch_size=32, lr=0.05)

    # --- 2. standard collaborative inference ---------------------------
    undefended = fit_no_defense(bundle, model_config, training=train, rng=rng)
    client = Client(undefended.head, undefended.tail, noise=undefended.noise)
    server = Server(undefended.bodies)
    pipeline = StandardCIPipeline(client, server, Channel())
    logits = pipeline.infer(bundle.test.images[:8])
    accuracy = float((logits.argmax(axis=1) == bundle.test.labels[:8]).mean())
    stats = pipeline.channel.stats
    print(f"standard CI: accuracy {accuracy:.2f} on 8 probes, "
          f"{stats.uplink_bytes} B up / {stats.downlink_bytes} B down")

    # --- 3. the Ensembler defense --------------------------------------
    # Stage 3 re-trains head+tail from scratch against frozen bodies, so it
    # gets a larger epoch budget than the stage-1 nets.
    config = EnsemblerConfig(num_nets=4, num_active=2, sigma=0.1, lambda_reg=1.0,
                             stage1=train,
                             stage3=TrainingConfig(epochs=10, batch_size=32, lr=0.05))
    defended = fit_ensembler(bundle, model_config, config=config, rng=rng)
    ens_client = Client(defended.head, defended.tail, noise=defended.noise,
                        selector=defended.selector)
    ens_server = Server(defended.bodies)
    ens_pipeline = EnsembleCIPipeline(ens_client, ens_server, Channel())
    logits = ens_pipeline.infer(bundle.test.images[:8])
    accuracy = float((logits.argmax(axis=1) == bundle.test.labels[:8]).mean())
    print(f"ensembler CI: accuracy {accuracy:.2f}, server ran "
          f"{ens_pipeline.num_nets} nets, selector kept {defended.selector.num_active} "
          f"(secret)")

    # --- 4. the model-inversion attack ----------------------------------
    attack_config = AttackConfig(
        shadow=TrainingConfig(epochs=10, batch_size=32, lr=2e-3, optimizer="adam"),
        decoder=TrainingConfig(epochs=10, batch_size=32, lr=3e-3, optimizer="adam"),
        decoder_width=24)
    probe = bundle.test.images[:16]
    traffic = bundle.train.images[:96]

    attacker = InversionAttack(model_config, bundle.image_shape, bundle.train,
                               attack_config, rng=new_rng(7))
    observe_victim_traffic(undefended, attacker, traffic)
    artifacts = attacker.attack_single(undefended.bodies[0])
    open_metrics = evaluate_reconstruction(undefended, artifacts, probe)

    attacker_ens = InversionAttack(model_config, bundle.image_shape, bundle.train,
                                   attack_config, rng=new_rng(7))
    results = run_single_net_attacks(defended, attacker_ens, probe, traffic_images=traffic)
    defended_metrics = best_single_net(results, "ssim")
    from repro.attacks.evaluation import run_adaptive_attack
    adaptive_metrics = run_adaptive_attack(defended, attacker_ens, probe)

    print("\nreconstruction quality (lower = better defense)")
    print(f"  no defense           : SSIM {open_metrics.ssim:.3f}  "
          f"PSNR {open_metrics.psnr:.2f} dB")
    print(f"  ensembler, best-of-{len(results)} : SSIM {defended_metrics.ssim:.3f}  "
          f"PSNR {defended_metrics.psnr:.2f} dB")
    print(f"  ensembler, adaptive  : SSIM {adaptive_metrics.ssim:.3f}  "
          f"PSNR {adaptive_metrics.psnr:.2f} dB  (the attack that cannot pick "
          "the right subset)")

    # --- 5. multi-tenant serving ----------------------------------------
    # The pipelines above are single-session adapters over the serving API;
    # a deployment serves many tenants through one InferenceService, which
    # coalesces their concurrent uploads into one stacked N-body pass.
    from repro.serving import InferenceService

    service = InferenceService(ens_server, max_batch=4)
    tenants = [service.open_session(defended.head, defended.tail,
                                    selector=defended.selector,
                                    noise=defended.noise)
               for _ in range(3)]
    requests = [tenant.submit(bundle.test.images[i:i + 2])
                for i, tenant in enumerate(tenants)]
    service.run_until_idle()
    logits = [tenant.result(rid) for tenant, rid in zip(tenants, requests)]
    print(f"\nserving: {service.stats.served_requests} tenant requests in "
          f"{service.stats.ticks} stacked pass(es) "
          f"({service.stats.mean_coalesced:.0f} coalesced), "
          f"{service.transfer_totals().total_bytes} B total traffic, "
          f"logit batches {[l.shape[0] for l in logits]}")


if __name__ == "__main__":
    main()
