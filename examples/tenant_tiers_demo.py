"""Per-tenant QoS demo: weighted tiers plus a rate-limited tenant.

Three tenants share one fused N-body Ensembler server through the
:mod:`repro.serving` QoS layer:

* **gold**   — fair-share weight 2.0: buys ~2x the stacked samples of
  silver while both have backlog (deficit round-robin over samples);
* **silver** — weight 1.0: the baseline paying tier;
* **free**   — weight 1.0 but behind a token-bucket
  :class:`~repro.serving.service.RateLimit`: it may burst a few
  requests, then sustains only its configured rate — excess submissions
  raise ``RateLimitedError`` and are counted, not queued.

The same bursty arrival trace (offered 2:1:2 across the tenants —
*free* offers as much as gold but is throttled at admission) is
replayed on the virtual clock, then per-tenant p50/p95 latency and
exact downlink bytes are printed.  Gold and silver negotiate different
downlink codecs (int8 vs fp16) to show per-session codec negotiation
riding along with the QoS knobs.

Run:  python examples/tenant_tiers_demo.py
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import nn
from repro.ci import Server
from repro.ci.pipeline import Client
from repro.models.resnet import ResNetBody, ResNetConfig
from repro.serving import (
    InferenceService,
    RateLimit,
    TickCost,
    bursty_trace,
    simulate,
)
from repro.utils.rng import new_rng

NUM_NETS = 6
WIDTH = 8
IMAGE_HW = 16


def main():
    config = ResNetConfig(num_classes=10, stem_channels=WIDTH,
                          stage_channels=(WIDTH, 2 * WIDTH),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNetBody(config, new_rng(300 + i)) for i in range(NUM_NETS)]
    for body in bodies:
        body.eval()

    service = InferenceService(Server(bodies), max_batch=4, max_queue=128,
                               scheduler="weighted")
    # Protocol-plane clients (identity head/tail) keep the demo on the
    # QoS layer; serving_demo.py shows full head/selector/tail tenants.
    gold = service.adopt_session(Client(nn.Identity(), nn.Identity()),
                                 weight=2.0, codec="int8")
    silver = service.adopt_session(Client(nn.Identity(), nn.Identity()),
                                   weight=1.0, codec="fp16")
    free = service.adopt_session(Client(nn.Identity(), nn.Identity()),
                                 weight=1.0,
                                 rate_limit=RateLimit(rate_per_s=50.0,
                                                      burst=4))
    tenants = {"gold (w=2, int8)": gold,
               "silver (w=1, fp16)": silver,
               "free (rate-limited)": free}

    features = new_rng(7).random((1, config.stem_channels, IMAGE_HW // 2,
                                  IMAGE_HW // 2), dtype=np.float32)
    # Bursty offered load, 2:1:2 across (gold, silver, free): free *offers*
    # as much as gold, but its bucket sheds the excess at admission.
    trace = bursty_trace(num_sessions=3, bursts=4, burst_size=15,
                         burst_gap_s=0.10, deadline_s=0.08,
                         session_weights=(2.0, 1.0, 2.0))
    cost = TickCost(pass_overhead_s=0.008, per_sample_s=0.001,
                    per_request_downlink_s=0.0005)

    print(f"replaying {len(trace)} arrivals over "
          f"{max(a.time for a in trace) * 1e3:.0f} virtual ms "
          f"(N={NUM_NETS} bodies, weighted scheduler, max_batch=4)\n")
    report = simulate(service, [gold, silver, free], trace, cost,
                      default_features=features)
    print(report.summary())
    print(f"\n{'tenant':>20}  {'served':>6}  {'p50 [ms]':>9}  {'p95 [ms]':>9}  "
          f"{'downlink [B]':>12}")
    for name, session in tenants.items():
        sid = session.session_id
        served = len(report.latencies_by_session.get(sid, ()))
        print(f"{name:>20}  {served:>6}  "
              f"{report.session_percentile(sid, 50) * 1e3:>9.1f}  "
              f"{report.session_percentile(sid, 95) * 1e3:>9.1f}  "
              f"{session.stats.downlink_bytes:>12}")
    print(f"\nthrottled (free tier's bucket): "
          f"{service.stats.throttled_requests} requests shed at admission")
    print("gold's int8 downlink is ~4x smaller per response than fp32; "
          "silver's fp16 ~2x — headers are never narrowed, and the "
          "quantisation parameters ride inside them for free.")


if __name__ == "__main__":
    main()
