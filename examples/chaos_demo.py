"""Chaos replay: what serving a hostile network actually looks like.

The serving stack survives a faulted fleet by construction: CRC32 frame
checksums turn corruption into typed ``ProtocolError``s, client retries
with exponential backoff recover dropped frames under the same request
id (deduplicated server-side), crashed stacked passes re-queue their
riders, and an overload controller trades quality for capacity one
reversible step at a time.  This demo shows all of it on one deterministic
replay:

1. a fault-free bursty trace as the baseline;
2. the same trace over a seeded :class:`FaultInjector` — ~6% of frames
   corrupted/truncated/dropped, network delays, and a tick crash mid-run —
   with a :class:`RetryPolicy` recovering the losses;
3. a deliberate overload (a queue held at the high watermark) walking the
   degradation ladder up and back down.

Everything is seeded: run it twice and every corrupted frame, retry and
ladder transition lands on the same request.

Run:  python examples/chaos_demo.py
"""

import numpy as np

from repro import nn
from repro.ci import Server
from repro.ci.pipeline import Client
from repro.models import ResNetConfig
from repro.models.resnet import ResNet
from repro.serving import (
    FaultInjector,
    FaultPlan,
    InferenceService,
    OverloadPolicy,
    RetryPolicy,
    TickCost,
    bursty_trace,
    simulate,
)
from repro.utils.rng import new_rng

NUM_NETS = 4
NUM_SESSIONS = 4

PLAN = FaultPlan(corrupt_rate=0.025, truncate_rate=0.015, drop_rate=0.02,
                 delay_rate=0.15, delay_s=0.003, tick_failures_at=(3,))
RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.002, multiplier=2.0,
                    max_delay_s=0.05, jitter=0.1, timeout_s=0.06)
COST = TickCost(pass_overhead_s=0.010, per_sample_s=0.001)


def build_service(faults=None, overload=None, max_queue=64):
    config = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNet(config, rng=new_rng(i)).body for i in range(NUM_NETS)]
    for body in bodies:
        body.eval()
    service = InferenceService(Server(bodies), max_batch=4, max_queue=max_queue,
                               faults=faults, overload=overload, tick_retries=1)
    sessions = [service.adopt_session(Client(nn.Identity(), nn.Identity()))
                for _ in range(NUM_SESSIONS)]
    return service, sessions


def replay(faults=None, retry=None):
    service, sessions = build_service(faults=faults)
    trace = bursty_trace(num_sessions=NUM_SESSIONS, bursts=4, burst_size=8,
                         burst_gap_s=0.08)
    features = np.random.default_rng(0).random((1, 8, 8, 8), dtype=np.float32)
    report = simulate(service, sessions, trace, COST,
                      default_features=features, retry=retry)
    return service, report


def show(label, service, report):
    stats = service.stats
    print(f"{label}:")
    print(f"  served {report.served}/{report.submitted}, "
          f"p50 {report.p50_s * 1e3:.1f} ms, p95 {report.p95_s * 1e3:.1f} ms, "
          f"goodput {report.goodput_rps:.1f} req/s")
    print(f"  wire: {stats.corrupt_frames} corrupt, "
          f"{stats.dropped_frames} dropped; "
          f"{stats.tick_failures} crashed passes; "
          f"{report.retries} client retries, "
          f"{stats.deduped_requests} deduplicated")
    print(f"  terminal states: { {k: v for k, v in report.terminal_counts.items() if v} }"
          f"  (conserved: {report.conservation_ok})\n")


def overload_walk():
    """Hold the queue hot and watch the ladder climb, then recover."""
    policy = OverloadPolicy(high_watermark=0.5, low_watermark=0.15,
                            patience_ticks=1, min_ensemble_fraction=0.5)
    service, sessions = build_service(overload=policy, max_queue=8)
    features = np.random.default_rng(1).random((1, 8, 8, 8), dtype=np.float32)
    print("overload ladder (queue 8, high watermark 0.5):")
    for step in range(8):
        # Keep pressure on for the first half, then let the queue drain.
        if step < 4:
            for session in sessions:
                if service.pending < 8:
                    session.submit_features(features)
        service.tick()
        print(f"  tick {step}: pending {service.pending}, "
              f"level {service.stats.overload_level} "
              f"({service.overload.level_name}), "
              f"degraded responses so far {service.stats.degraded_responses}")
    service.run_until_idle()
    for _ in range(3):
        service.tick()  # quiet observations walk the ladder back down
    print(f"  drained: level {service.stats.overload_level} "
          f"({service.overload.level_name}), "
          f"{service.stats.overload_escalations} escalations / "
          f"{service.stats.overload_recoveries} recoveries\n")


def main() -> None:
    service, report = replay()
    show("fault-free baseline", service, report)

    faults = FaultInjector(PLAN, seed=7)
    service, report = replay(faults=faults, retry=RETRY)
    show(f"chaos ({PLAN.frame_fault_rate * 100:.0f}% frame faults + "
         f"delays + tick crash, seed 7)", service, report)
    print(f"  injector dealt: {faults.stats.as_dict()}\n")

    overload_walk()


if __name__ == "__main__":
    main()
