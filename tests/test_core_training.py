"""Tests for the Ensembler model and the three-stage trainer."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    EnsemblerConfig,
    EnsemblerModel,
    EnsemblerTrainer,
    FixedGaussianNoise,
    Selector,
    TrainingConfig,
)
from repro.core.training import run_sgd
from repro.data import cifar10_like
from repro.models import ResNet, ResNetConfig
from repro.models.resnet import ResNetHead, ResNetTail
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

rng = np.random.default_rng(61)

TINY_MODEL = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
TINY_TRAIN = TrainingConfig(epochs=2, batch_size=16, lr=0.05)


@pytest.fixture(scope="module")
def bundle():
    return cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4)


@pytest.fixture(scope="module")
def trained(bundle):
    config = EnsemblerConfig(num_nets=3, num_active=2, sigma=0.1, lambda_reg=1.0,
                             stage1=TINY_TRAIN, stage3=TINY_TRAIN)
    trainer = EnsemblerTrainer(TINY_MODEL, 16, config, rng=new_rng(0))
    return trainer.train(bundle.train)


class TestConfigs:
    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(momentum=1.0)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_ensembler_config_validation(self):
        with pytest.raises(ValueError):
            EnsemblerConfig(num_nets=3, num_active=4)
        with pytest.raises(ValueError):
            EnsemblerConfig(sigma=-0.1)
        with pytest.raises(ValueError):
            EnsemblerConfig(lambda_reg=-1.0)

    def test_build_optimizer_kinds(self):
        layer = nn.Linear(2, 2, rng=new_rng(0))
        assert isinstance(TrainingConfig(optimizer="adam").build_optimizer(layer.parameters()),
                          nn.Adam)
        assert isinstance(TrainingConfig(optimizer="sgd").build_optimizer(layer.parameters()),
                          nn.SGD)

    def test_config_replace(self):
        config = EnsemblerConfig(num_nets=4, num_active=2)
        assert config.replace(num_active=3).num_active == 3
        assert config.num_active == 2  # original untouched


class TestRunSgd:
    def test_loss_decreases(self, bundle):
        net = ResNet(TINY_MODEL, rng=new_rng(1))

        def loss_fn(images, labels):
            return F.cross_entropy(net(Tensor(images)), labels)

        history = run_sgd(net.parameters(), loss_fn,
                          bundle.train, TrainingConfig(epochs=4, batch_size=16, lr=0.05),
                          new_rng(2))
        assert len(history) == 4
        assert history[-1] < history[0]


class TestEnsemblerModel:
    def make_model(self, num_nets=3, num_active=2):
        nets = [ResNet(TINY_MODEL, rng=new_rng(i)) for i in range(num_nets)]
        for net in nets:
            net.eval()
        selector = Selector(num_nets, tuple(range(num_active)))
        head = ResNetHead(TINY_MODEL, new_rng(10))
        tail = ResNetTail(TINY_MODEL, new_rng(11), in_multiplier=num_active)
        noise = FixedGaussianNoise(TINY_MODEL.intermediate_shape(16), 0.1, new_rng(12))
        model = EnsemblerModel(head, [n.body for n in nets], tail, selector, noise)
        return model.eval()

    def test_arity_mismatch_rejected(self):
        nets = [ResNet(TINY_MODEL, rng=new_rng(i)) for i in range(2)]
        selector = Selector(3, (0, 1))
        with pytest.raises(ValueError):
            EnsemblerModel(ResNetHead(TINY_MODEL, new_rng(0)),
                           [n.body for n in nets],
                           ResNetTail(TINY_MODEL, new_rng(1), in_multiplier=2),
                           selector, nn.Identity())

    def test_forward_shape(self):
        model = self.make_model()
        with no_grad():
            out = model(Tensor(rng.random((2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 4)

    def test_forward_matches_full_protocol(self):
        """Client shortcut (selected bodies only) == full N-body protocol."""
        model = self.make_model()
        x = Tensor(rng.random((2, 3, 16, 16)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(model(x).data, model.forward_full_protocol(x).data,
                                       rtol=1e-5)

    def test_server_outputs_all_nets(self):
        model = self.make_model(num_nets=3)
        with no_grad():
            features = model.intermediate(Tensor(rng.random((1, 3, 16, 16)).astype(np.float32)))
            outputs = model.server_outputs(features)
        assert len(outputs) == 3

    def test_parameter_partition(self):
        model = self.make_model()
        client = {id(p) for p in model.client_parameters()}
        server = {id(p) for p in model.server_parameters()}
        assert not client & server


class TestThreeStageTraining:
    def test_stage1_produces_n_distinct_nets(self, trained):
        assert len(trained.stage1_nets) == 3
        assert len(trained.stage1_noises) == 3
        # The noises are distinct fixed maps.
        flat = [n.noise.reshape(-1) for n in trained.stage1_noises]
        assert not np.array_equal(flat[0], flat[1])

    def test_stage1_losses_decrease(self, trained):
        for history in trained.stage1_history:
            assert history[-1] <= history[0]

    def test_selector_matches_config(self, trained):
        assert trained.selector.num_nets == 3
        assert trained.selector.num_active == 2

    def test_stage3_model_uses_all_bodies(self, trained):
        assert trained.model.num_nets == 3

    def test_stage3_bodies_are_frozen_stage1_bodies(self, trained):
        for net, body in zip(trained.stage1_nets, trained.model.bodies):
            assert body is net.body
            assert all(not p.requires_grad for p in body.parameters())

    def test_stage3_head_differs_from_stage1_heads(self, trained):
        """The re-trained head must not equal any stage-1 head (the whole
        point of the quasi-orthogonality regulariser)."""
        new_head = trained.model.head
        x = Tensor(rng.random((4, 3, 16, 16)).astype(np.float32))
        with no_grad():
            new_out = new_head(x).data.reshape(4, -1)
            for net in trained.stage1_nets:
                old_out = net.head(x).data.reshape(4, -1)
                cos = np.abs((new_out * old_out).sum(axis=1)
                             / (np.linalg.norm(new_out, axis=1)
                                * np.linalg.norm(old_out, axis=1) + 1e-8))
                assert cos.mean() < 0.95

    def test_stage3_tail_width(self, trained):
        assert trained.model.tail.fc.weight.shape[1] == 2 * TINY_MODEL.feature_dim

    def test_model_predicts(self, trained, bundle):
        trained.model.eval()
        with no_grad():
            logits = trained.model(Tensor(bundle.test.images[:4]))
        assert logits.shape == (4, 4)

    def test_lambda_zero_skips_regulariser(self, bundle):
        config = EnsemblerConfig(num_nets=2, num_active=1, sigma=0.1, lambda_reg=0.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        trainer = EnsemblerTrainer(TINY_MODEL, 16, config, rng=new_rng(5))
        result = trainer.train(bundle.train)
        assert result.model.num_nets == 2

    def test_custom_noise_factory(self, bundle):
        from repro.defenses.base import AlwaysOnDropout
        config = EnsemblerConfig(num_nets=2, num_active=1, sigma=0.0, lambda_reg=0.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        trainer = EnsemblerTrainer(
            TINY_MODEL, 16, config, rng=new_rng(6),
            noise_factory=lambda shape, noise_rng: AlwaysOnDropout(0.2, noise_rng))
        result = trainer.train(bundle.train)
        assert isinstance(result.model.noise, AlwaysOnDropout)

    def test_deterministic_given_seed(self, bundle):
        config = EnsemblerConfig(num_nets=2, num_active=1, sigma=0.1, lambda_reg=1.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        a = EnsemblerTrainer(TINY_MODEL, 16, config, rng=new_rng(9)).train(bundle.train)
        b = EnsemblerTrainer(TINY_MODEL, 16, config, rng=new_rng(9)).train(bundle.train)
        assert a.selector.indices == b.selector.indices
        x = Tensor(bundle.test.images[:2])
        a.model.eval()
        b.model.eval()
        with no_grad():
            np.testing.assert_array_equal(a.model(x).data, b.model(x).data)
