"""Aliasing fuzz tests for the zero-copy wire decode.

``UploadRequest.from_bytes(..., zero_copy=True)`` hands back ``features``
as a :func:`numpy.frombuffer` view straight into the wire buffer — no
payload copy at decode time.  That is only sound under two invariants
this suite attacks from both sides:

* a view is shared **only** over immutable ``bytes``; any mutable source
  (``bytearray``, writable ``memoryview``) gets a defensive copy, so a
  sender recycling its frame buffer can never alias into served
  features — we mutate the source after decode and diff;
* shared views are **read-only**; nothing downstream (including the
  serving tick itself) can scribble on the wire buffer — we serve real
  traffic through ``submit_bytes`` and check the frame bytes after.
"""

import numpy as np
import pytest

from repro import nn
from repro.ci.pipeline import Client, Server
from repro.serving.protocol import Codec, FeatureResponse, UploadRequest
from repro.serving.service import InferenceService


def make_frame(shape=(2, 3, 6, 6), dtype=np.float32, seed=0) -> tuple:
    rng = np.random.default_rng(seed)
    features = rng.standard_normal(shape).astype(dtype)
    return features, UploadRequest(1, 7, features).to_bytes()


def make_bodies(num_nets: int = 2, channels: int = 3) -> list[nn.Module]:
    from repro.utils.rng import new_rng
    return [nn.Sequential(nn.Conv2d(channels, 4, 3, padding=1,
                                    rng=new_rng(70 + i)), nn.ReLU())
            for i in range(num_nets)]


class TestZeroCopyDecode:
    def test_bytes_input_shares_a_readonly_view(self):
        features, blob = make_frame()
        request = UploadRequest.from_bytes(blob, zero_copy=True)
        assert not request.features.flags.writeable
        # Genuinely zero-copy: the view's backing buffer is the frame.
        assert np.shares_memory(request.features,
                                np.frombuffer(blob, dtype=np.uint8))
        np.testing.assert_array_equal(request.features, features)
        with pytest.raises((ValueError, RuntimeError)):
            request.features[0, 0, 0, 0] = 1.0

    def test_default_decode_is_a_writable_copy(self):
        features, blob = make_frame()
        request = UploadRequest.from_bytes(blob)
        assert request.features.flags.writeable
        assert not np.shares_memory(request.features,
                                    np.frombuffer(blob, dtype=np.uint8))
        request.features[:] = -1.0  # scribbling must not touch the frame
        np.testing.assert_array_equal(
            UploadRequest.from_bytes(blob).features, features)

    @pytest.mark.parametrize("wrap", [bytearray,
                                      lambda b: memoryview(bytearray(b))])
    def test_mutable_sources_are_defensively_copied(self, wrap):
        """zero_copy over a recyclable buffer must never alias into it."""
        features, blob = make_frame()
        source = wrap(blob)
        request = UploadRequest.from_bytes(source, zero_copy=True)
        # The sender recycles its buffer: flip every payload byte.
        mutable = source.obj if isinstance(source, memoryview) else source
        for i in range(len(mutable)):
            mutable[i] ^= 0xFF
        np.testing.assert_array_equal(request.features, features)

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_shapes_decode_identically_both_modes(self, seed):
        """zero-copy and copying parses agree over random frames."""
        rng = np.random.default_rng(300 + seed)
        ndim = int(rng.integers(1, 5))
        shape = tuple(int(rng.integers(1, 6)) for _ in range(ndim))
        dtype = rng.choice([np.float32, np.float64, np.int64])
        features, blob = make_frame(shape, np.dtype(dtype), seed=seed)
        shared = UploadRequest.from_bytes(blob, zero_copy=True)
        copied = UploadRequest.from_bytes(blob)
        np.testing.assert_array_equal(shared.features, features)
        np.testing.assert_array_equal(shared.features, copied.features)
        assert shared.features.dtype == copied.features.dtype == features.dtype

    def test_feature_response_zero_copy_views_are_readonly(self):
        maps = [np.arange(12, dtype=np.float32).reshape(1, 3, 2, 2)
                for _ in range(2)]
        blob = FeatureResponse.encode(1, 2, maps, codec=Codec.FP32).to_bytes()
        response = FeatureResponse.from_bytes(blob, zero_copy=True)
        for arr, ref in zip(response.outputs, maps):
            assert not arr.flags.writeable
            np.testing.assert_array_equal(arr, ref)


class TestZeroCopyServePath:
    def _serve(self, fast_path: bool, frames: list[bytes]) -> list[list]:
        service = InferenceService(Server(make_bodies()),
                                   fast_path=fast_path)
        session = service.adopt_session(Client(nn.Identity(), nn.Identity()))
        ids = [service.submit_bytes(frame) for frame in frames]
        service.run_until_idle()
        return [session.result(rid) for rid in ids]

    def _frames(self, count: int = 3) -> tuple[list[np.ndarray], list[bytes]]:
        rng = np.random.default_rng(9)
        feats = [rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
                 for _ in range(count)]
        return feats, [UploadRequest(1, i, f).to_bytes()
                       for i, f in enumerate(feats)]

    def test_submit_bytes_serves_reference_outputs(self):
        """The zero-copy ingest path returns byte-identical features."""
        _, frames = self._frames()
        fast = self._serve(True, frames)
        slow = self._serve(False, frames)
        for fast_maps, slow_maps in zip(fast, slow):
            for a, b in zip(fast_maps, slow_maps):
                np.testing.assert_array_equal(a, b)

    def test_wire_frames_unchanged_after_serving(self):
        """Serving shared views must never write through to the frames."""
        _, frames = self._frames()
        pristine = [bytes(frame) for frame in frames]
        self._serve(True, frames)
        assert frames == pristine

    def test_copying_ingest_tolerates_recycled_frames(self):
        """A sender may reuse its buffer once submit_bytes returns —
        the mutable-buffer decode copied defensively."""
        feats, frames = self._frames(2)
        service = InferenceService(Server(make_bodies()), fast_path=True)
        session = service.adopt_session(Client(nn.Identity(), nn.Identity()))
        buffers = [bytearray(frame) for frame in frames]
        ids = [service.submit_bytes(buf) for buf in buffers]
        for buf in buffers:  # recycle before the tick even runs
            for i in range(len(buf)):
                buf[i] ^= 0xFF
        service.run_until_idle()
        reference = self._serve(False, frames)
        for rid, ref_maps in zip(ids, reference):
            for a, b in zip(session.result(rid), ref_maps):
                np.testing.assert_array_equal(a, b)
