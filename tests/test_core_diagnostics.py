"""Tests for the mechanism diagnostics (head-similarity analysis)."""

import numpy as np
import pytest

from repro.core import (
    EnsemblerConfig,
    EnsemblerTrainer,
    TrainingConfig,
    head_similarity,
    head_similarity_matrix,
    mechanism_report,
)
from repro.data import cifar10_like
from repro.models import ResNetConfig
from repro.models.resnet import ResNetHead
from repro.utils.rng import new_rng

rng = np.random.default_rng(81)

MODEL = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                     blocks_per_stage=(1, 1), use_maxpool=True)


def images(n=8):
    return rng.random((n, 3, 16, 16)).astype(np.float32)


class TestHeadSimilarity:
    def test_self_similarity_is_one(self):
        head = ResNetHead(MODEL, new_rng(0)).eval()
        assert head_similarity(head, head, images()) == pytest.approx(1.0, abs=1e-5)

    def test_independent_heads_less_similar_than_self(self):
        a = ResNetHead(MODEL, new_rng(1)).eval()
        b = ResNetHead(MODEL, new_rng(2)).eval()
        assert head_similarity(a, b, images()) < 0.99

    def test_symmetry(self):
        a = ResNetHead(MODEL, new_rng(3)).eval()
        b = ResNetHead(MODEL, new_rng(4)).eval()
        x = images()
        assert head_similarity(a, b, x) == pytest.approx(head_similarity(b, a, x), abs=1e-6)

    def test_standardize_changes_score(self):
        a = ResNetHead(MODEL, new_rng(5)).eval()
        b = ResNetHead(MODEL, new_rng(6)).eval()
        x = images()
        raw = head_similarity(a, b, x, standardize=False)
        std = head_similarity(a, b, x, standardize=True)
        assert raw != pytest.approx(std, abs=1e-6)

    def test_matrix_shape_and_diagonal(self):
        heads = [ResNetHead(MODEL, new_rng(i)).eval() for i in range(3)]
        matrix = head_similarity_matrix(heads, images())
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)


class TestMechanismReport:
    @pytest.fixture(scope="class")
    def result(self):
        bundle = cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4)
        train = TrainingConfig(epochs=2, batch_size=16, lr=0.05)
        config = EnsemblerConfig(num_nets=3, num_active=2, sigma=0.1, lambda_reg=1.0,
                                 stage1=train, stage3=train)
        trainer = EnsemblerTrainer(MODEL, 16, config, rng=new_rng(0))
        return trainer.train(bundle.train), bundle

    def test_report_shapes(self, result):
        training, bundle = result
        report = mechanism_report(training, bundle.test.images[:8])
        assert report.stage1_pairwise.shape == (3, 3)
        assert report.stage3_vs_stage1.shape == (3,)
        assert report.selected_indices == training.selector.indices

    def test_summary_mentions_both_quantities(self, result):
        training, bundle = result
        report = mechanism_report(training, bundle.test.images[:8])
        text = report.summary()
        assert "stage-1" in text and "stage-3" in text

    def test_stage3_less_similar_than_identical(self, result):
        """The regularised stage-3 head must not coincide with any stage-1
        head (similarity strictly below self-similarity)."""
        training, bundle = result
        report = mechanism_report(training, bundle.test.images[:8])
        assert report.max_stage3_vs_selected < 0.999
