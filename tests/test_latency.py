"""Tests for the FLOP profiler and the Table III latency model."""

import numpy as np
import pytest

from repro.latency import (
    A6000,
    DeviceModel,
    LatencyModel,
    NetworkModel,
    RASPBERRY_PI,
    STAMP_SLOWDOWN_VS_PLAINTEXT,
    SplitWorkload,
    StampModel,
    WIRED_LAN,
    workload_from_model,
)
from repro.models import ResNetConfig, resnet18
from repro.nn.profiling import FlopCounter, count_forward_flops


class TestProfiling:
    def test_conv_flops_formula(self):
        from repro import nn
        from repro.nn.tensor import Tensor, no_grad
        conv = nn.Conv2d(3, 8, 3, padding=1, bias=False)
        with FlopCounter() as counter:
            with no_grad():
                conv(Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32)))
        # 2 * N * C_out * H * W * C_in * K * K
        assert counter.by_kind["conv2d"] == 2 * 1 * 8 * 16 * 16 * 3 * 9

    def test_linear_flops_formula(self):
        from repro import nn
        from repro.nn.tensor import Tensor, no_grad
        layer = nn.Linear(10, 5)
        with FlopCounter() as counter:
            with no_grad():
                layer(Tensor(np.zeros((4, 10), dtype=np.float32)))
        assert counter.by_kind["linear"] == 2 * 4 * 5 * 10

    def test_counting_only_when_active(self):
        from repro import nn
        from repro.nn.tensor import Tensor, no_grad
        conv = nn.Conv2d(1, 1, 3)
        with no_grad():
            conv(Tensor(np.zeros((1, 1, 8, 8), dtype=np.float32)))  # no counter active
        with FlopCounter() as counter:
            pass
        assert counter.total == 0

    def test_nesting_rejected(self):
        with FlopCounter():
            with pytest.raises(RuntimeError):
                FlopCounter().__enter__()
        # outer exit must have cleared the active counter
        with FlopCounter() as counter:
            assert counter.total == 0

    def test_resnet18_flops_magnitude(self):
        model = resnet18(num_classes=10).eval()
        flops = count_forward_flops(model, np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert 2e8 < flops < 4e8  # ~281 MFLOPs for our CIFAR-stem variant


class TestDeviceAndNetwork:
    def test_device_seconds(self):
        device = DeviceModel("x", effective_gflops=1.0)
        assert device.seconds(1e9) == pytest.approx(1.0)

    def test_device_validation(self):
        with pytest.raises(ValueError):
            DeviceModel("x", effective_gflops=0.0)

    def test_network_seconds(self):
        net = NetworkModel("x", uplink_mbps=8.0, downlink_mbps=8.0, per_message_s=0.01)
        # 1 MB at 8 Mbps = 1 second + latency
        assert net.uplink_seconds(10**6) == pytest.approx(1.01)

    def test_network_validation(self):
        with pytest.raises(ValueError):
            NetworkModel("x", uplink_mbps=0.0, downlink_mbps=1.0)
        with pytest.raises(ValueError):
            NetworkModel("x", uplink_mbps=1.0, downlink_mbps=1.0, per_message_s=-1.0)

    def test_calibrated_devices_sane(self):
        assert RASPBERRY_PI.effective_gflops < A6000.effective_gflops
        assert WIRED_LAN.uplink_mbps < WIRED_LAN.downlink_mbps


class TestLatencyModel:
    def make_workload(self):
        return SplitWorkload(
            batch_size=128,
            client_head_flops=4e8,
            client_tail_flops=1e6,
            server_body_flops=3e10,
            upload_bytes=8_000_000,
            download_bytes_per_net=260_000,
        )

    def test_standard_breakdown_positive(self):
        row = LatencyModel().standard_ci(self.make_workload())
        assert row.client_s > 0 and row.server_s > 0 and row.communication_s > 0
        assert row.total_s == pytest.approx(row.client_s + row.server_s + row.communication_s)

    def test_ensembler_client_time_unchanged(self):
        model = LatencyModel()
        workload = self.make_workload()
        std = model.standard_ci(workload)
        ens = model.ensembler(workload, 10)
        assert ens.client_s == pytest.approx(std.client_s)

    def test_ensembler_overhead_grows_with_n(self):
        model = LatencyModel()
        workload = self.make_workload()
        totals = [model.ensembler(workload, n).total_s for n in (1, 5, 10)]
        assert totals[0] < totals[1] < totals[2]

    def test_ensembler_n1_matches_standard(self):
        model = LatencyModel()
        workload = self.make_workload()
        std = model.standard_ci(workload)
        ens = model.ensembler(workload, 1)
        assert ens.total_s == pytest.approx(std.total_s, rel=1e-6)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LatencyModel(serial_fraction=1.5)
        with pytest.raises(ValueError):
            LatencyModel().ensembler(self.make_workload(), 0)

    def test_coalesced_r1_matches_ensembler(self):
        model = LatencyModel()
        workload = self.make_workload()
        ens = model.ensembler(workload, 10)
        coal = model.ensembler_coalesced(workload, 10, coalesced=1)
        assert coal.server_s == pytest.approx(ens.server_s)
        assert coal.client_s == pytest.approx(ens.client_s)
        assert coal.communication_s == pytest.approx(ens.communication_s)

    def test_coalescing_amortises_serial_overhead(self):
        """Per-request server time decreases monotonically with the number
        of coalesced requests; client and communication stay per-session."""
        model = LatencyModel()
        workload = self.make_workload()
        rows = [model.ensembler_coalesced(workload, 10, coalesced=r)
                for r in (1, 4, 16)]
        assert rows[0].server_s > rows[1].server_s > rows[2].server_s
        base = model.server.seconds(workload.server_body_flops)
        assert rows[2].server_s > base  # never below the raw body pass
        for row in rows:
            assert row.client_s == pytest.approx(rows[0].client_s)
            assert row.communication_s == pytest.approx(rows[0].communication_s)

    def test_coalescing_needs_fused_server(self):
        model = LatencyModel()
        workload = self.make_workload()
        looped = model.ensembler_coalesced(workload, 10, coalesced=8, fused=False)
        assert looped.server_s == pytest.approx(
            model.ensembler(workload, 10, fused=False).server_s)

    def test_coalesced_validation(self):
        with pytest.raises(ValueError):
            LatencyModel().ensembler_coalesced(self.make_workload(), 10, coalesced=0)
        with pytest.raises(ValueError):
            LatencyModel().ensembler_coalesced(self.make_workload(), 0)

    def test_codec_downlink_bytes(self):
        """fp16 halves the payload, never the 64-byte frame header."""
        from repro.ci.channel import HEADER_BYTES
        framed = 1000 + HEADER_BYTES
        assert LatencyModel.codec_downlink_bytes(framed, "fp32") == framed
        assert LatencyModel.codec_downlink_bytes(framed, "fp16") == 500 + HEADER_BYTES

    def test_fp16_codec_shrinks_communication_only(self):
        model = LatencyModel()
        workload = self.make_workload()
        fp32 = model.ensembler(workload, 10)
        fp16 = model.ensembler(workload, 10, downlink_codec="fp16")
        assert fp16.communication_s < fp32.communication_s
        assert fp16.client_s == pytest.approx(fp32.client_s)
        assert fp16.server_s == pytest.approx(fp32.server_s)
        coal16 = model.ensembler_coalesced(workload, 10, coalesced=4,
                                           downlink_codec="fp16")
        assert coal16.communication_s == pytest.approx(fp16.communication_s)

    def test_paper_calibration_holds(self):
        """The calibrated model must reproduce Table III within 2%."""
        workload = workload_from_model(ResNetConfig(num_classes=10), 32, 128)
        model = LatencyModel()
        std = model.standard_ci(workload)
        ens = model.ensembler(workload, 10)
        assert std.client_s == pytest.approx(0.66, rel=0.02)
        assert std.server_s == pytest.approx(0.98, rel=0.02)
        assert std.communication_s == pytest.approx(2.30, rel=0.02)
        assert ens.total_s == pytest.approx(4.13, rel=0.02)
        overhead = (ens.total_s - std.total_s) / std.total_s
        assert overhead == pytest.approx(0.048, abs=0.01)


class TestStamp:
    def test_slowdown_anchor(self):
        assert STAMP_SLOWDOWN_VS_PLAINTEXT == pytest.approx(309.7 / 3.94, rel=1e-6)

    def test_from_plaintext(self):
        from repro.latency.model import LatencyBreakdown
        plain = LatencyBreakdown("std", 1.0, 1.0, 2.0)
        stamp = StampModel(slowdown=10.0).from_plaintext(plain)
        assert stamp.total_s == pytest.approx(40.0)

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            StampModel(slowdown=0.5)
