"""Tests for the batched-ensemble execution engine (repro.nn.batched).

The contract under test: for any ensemble of architecturally identical
bodies, the fused stacked pass and the looped reference produce the same
outputs (≤1e-5), the same gradients, and interchangeable parameters via
``sync_from`` / ``unstack_to``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.ci import Channel, Client, EnsembleCIPipeline, Server
from repro.core import EnsemblerModel, FixedGaussianNoise, Selector
from repro.core.training import recalibrate_batchnorm
from repro.models import ResNet, ResNetConfig
from repro.models.resnet import ResNetBody, ResNetHead, ResNetTail
from repro.nn import functional as F
from repro.nn.batched import (
    StackedBodies,
    UnstackableError,
    batched_batch_norm2d,
    batched_conv2d,
    batched_cross_entropy,
    batched_linear,
    batched_mse,
    stack_modules,
    unbind,
)
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

rng = np.random.default_rng(77)


def body_config(width: int, stages: int = 2) -> ResNetConfig:
    return ResNetConfig(num_classes=4, stem_channels=width,
                        stage_channels=tuple(width * 2**i for i in range(stages)),
                        blocks_per_stage=(1,) * stages, use_maxpool=True)


def make_bodies(num_nets: int, width: int = 8, seed: int = 0) -> list[ResNetBody]:
    config = body_config(width)
    bodies = [ResNetBody(config, new_rng(seed + i)) for i in range(num_nets)]
    for body in bodies:
        body.eval()
    return bodies


def features_for(width: int, batch: int = 2, spatial: int = 8) -> np.ndarray:
    return rng.random((batch, width, spatial, spatial)).astype(np.float32)


class TestBatchedOps:
    def test_batched_linear_matches_loop(self):
        linears = [nn.Linear(6, 3, rng=new_rng(i)) for i in range(4)]
        stacked = stack_modules(linears)
        x = Tensor(rng.random((5, 6)).astype(np.float32))
        out = stacked(x)
        assert out.shape == (4, 5, 3)
        for i, lin in enumerate(linears):
            np.testing.assert_allclose(out.data[i], lin(x).data, atol=1e-6)

    def test_batched_linear_per_member_input(self):
        linears = [nn.Linear(6, 3, rng=new_rng(i)) for i in range(3)]
        stacked = stack_modules(linears)
        xs = rng.random((3, 5, 6)).astype(np.float32)
        out = stacked(Tensor(xs))
        for i, lin in enumerate(linears):
            np.testing.assert_allclose(out.data[i], lin(Tensor(xs[i])).data, atol=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), members=st.integers(1, 6))
    def test_batched_conv2d_matches_loop(self, seed, members):
        """Property: the fused conv equals E independent convs, any E."""
        local = np.random.default_rng(seed)
        convs = [nn.Conv2d(3, 5, 3, padding=1, rng=new_rng(seed + i))
                 for i in range(members)]
        stacked = stack_modules(convs)
        x = Tensor(local.random((2, 3, 6, 6)).astype(np.float32))
        out = stacked(x)
        assert out.shape == (members, 2, 5, 6, 6)
        for i, conv in enumerate(convs):
            np.testing.assert_allclose(out.data[i], conv(x).data, atol=1e-5)

    def test_batched_conv2d_per_member_input(self):
        convs = [nn.Conv2d(3, 4, 3, stride=2, padding=1, rng=new_rng(i))
                 for i in range(3)]
        stacked = stack_modules(convs)
        xs = rng.random((3, 2, 3, 8, 8)).astype(np.float32)
        out = stacked(Tensor(xs))
        for i, conv in enumerate(convs):
            np.testing.assert_allclose(out.data[i], conv(Tensor(xs[i])).data, atol=1e-5)

    def test_batched_batch_norm_eval_matches_loop(self):
        bns = [nn.BatchNorm2d(4) for _ in range(3)]
        for i, bn in enumerate(bns):
            bn.gamma.data = rng.random(4).astype(np.float32) + 0.5
            bn.beta.data = rng.random(4).astype(np.float32)
            bn.running_mean[...] = rng.random(4).astype(np.float32)
            bn.running_var[...] = rng.random(4).astype(np.float32) + 0.5
            bn.eval()
        stacked = stack_modules(bns)
        stacked.eval()
        x = Tensor(rng.random((2, 4, 5, 5)).astype(np.float32))
        out = stacked(x)
        for i, bn in enumerate(bns):
            np.testing.assert_allclose(out.data[i], bn(x).data, atol=1e-5)

    def test_batched_batch_norm_train_updates_running_stats(self):
        bns = [nn.BatchNorm2d(4) for _ in range(2)]
        stacked = stack_modules(bns)
        stacked.train()
        xs = rng.random((2, 3, 4, 5, 5)).astype(np.float32)
        stacked(Tensor(xs))
        for i, bn in enumerate(bns):
            bn.train()
            bn(Tensor(xs[i]))
            np.testing.assert_allclose(stacked.running_mean[i], bn.running_mean,
                                       atol=1e-6)
            np.testing.assert_allclose(stacked.running_var[i], bn.running_var,
                                       atol=1e-6)

    def test_unstackable_types_raise(self):
        with pytest.raises(UnstackableError):
            stack_modules([nn.Dropout(0.5), nn.Dropout(0.5)])
        with pytest.raises(UnstackableError):
            stack_modules([nn.ReLU(), nn.Identity()])
        with pytest.raises(UnstackableError):
            stack_modules([nn.Linear(4, 2, rng=new_rng(0)),
                           nn.Linear(8, 2, rng=new_rng(1))])


# Every (ensemble size, width) combination the experiment presets and the
# benchmark exercise: tiny preset N=4/width 8, small preset N=10/width 16,
# bench N ∈ {3, 5, 8}.
EXPERIMENT_SHAPES = [(3, 8), (4, 8), (5, 8), (8, 8), (10, 16)]


class TestStackedBodies:
    @pytest.mark.parametrize("num_nets,width", EXPERIMENT_SHAPES)
    def test_batched_matches_looped(self, num_nets, width):
        bodies = make_bodies(num_nets, width)
        stacked = StackedBodies(bodies)
        stacked.eval()
        x = Tensor(features_for(width))
        with no_grad():
            fused = stacked(x)
            looped = [body(x) for body in bodies]
        assert fused.shape[0] == num_nets
        for i in range(num_nets):
            assert np.abs(fused.data[i] - looped[i].data).max() <= 1e-5

    def test_forward_list_unbinds(self):
        bodies = make_bodies(3)
        stacked = StackedBodies(bodies)
        stacked.eval()
        with no_grad():
            outs = stacked.forward_list(Tensor(features_for(8)))
        assert len(outs) == 3
        assert all(isinstance(o, Tensor) for o in outs)

    def test_gradient_parity_with_loop(self):
        """Input and parameter gradients agree between the two backends."""
        bodies = make_bodies(3)
        x_loop = Tensor(features_for(8), requires_grad=True)
        x_fused = Tensor(x_loop.data.copy(), requires_grad=True)

        nn.stack([body(x_loop) for body in bodies]).sum().backward()

        stacked = StackedBodies(bodies)
        stacked.eval()
        stacked(x_fused).sum().backward()

        np.testing.assert_allclose(x_fused.grad, x_loop.grad, atol=1e-4)
        stacked_params = dict(stacked.stacked.named_parameters())
        for i, body in enumerate(bodies):
            for name, param in body.named_parameters():
                assert name in stacked_params
                np.testing.assert_allclose(stacked_params[name].grad[i],
                                           param.grad, atol=1e-4,
                                           err_msg=f"grad mismatch: body {i}, {name}")

    def test_frozen_bodies_get_no_parameter_gradients(self):
        bodies = make_bodies(2)
        for body in bodies:
            body.requires_grad_(False)
        stacked = StackedBodies(bodies)
        stacked.eval()
        x = Tensor(features_for(8), requires_grad=True)
        stacked(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is None for p in stacked.parameters())

    def test_sync_from_roundtrip_state_dict(self):
        """bodies -> stack -> unstack_to(clones) reproduces every array."""
        bodies = make_bodies(3, seed=0)
        clones = make_bodies(3, seed=50)  # different weights, same architecture
        stacked = StackedBodies(bodies)
        stacked.unstack_to(clones)
        for body, clone in zip(bodies, clones):
            original = body.state_dict()
            restored = clone.state_dict()
            assert set(original) == set(restored)
            for key in original:
                np.testing.assert_array_equal(original[key], restored[key])

    def test_sync_from_tracks_mutation(self):
        bodies = make_bodies(2)
        stacked = StackedBodies(bodies)
        stacked.eval()
        x = Tensor(features_for(8))
        for param in bodies[0].parameters():
            param.data = param.data + 0.01
        stacked.sync_from(bodies)
        with no_grad():
            fused = stacked(x)
            looped = [body(x) for body in bodies]
        for i in range(2):
            assert np.abs(fused.data[i] - looped[i].data).max() <= 1e-5

    def test_buffer_only_ensemble_keeps_single_axis(self):
        """Stateful-but-parameterless stackers already emit the ensemble
        axis; StackedBodies must not stack it a second time."""
        noises = [FixedGaussianNoise((4, 5, 5), 0.1, new_rng(i)) for i in range(3)]
        stacked = StackedBodies(noises)
        x = Tensor(rng.random((2, 4, 5, 5)).astype(np.float32))
        with no_grad():
            out = stacked(x)
        assert out.shape == (3, 2, 4, 5, 5)
        for i, noise in enumerate(noises):
            np.testing.assert_allclose(out.data[i], noise(x).data, atol=1e-6)

    def test_stacked_parameters_do_not_alias_bodies(self):
        bodies = make_bodies(2)
        stacked = StackedBodies(bodies)
        body_arrays = {id(p.data) for body in bodies for p in body.parameters()}
        stacked_arrays = {id(p.data) for p in stacked.parameters()}
        assert not body_arrays & stacked_arrays


class TestEnsemblerModelBackend:
    def make_model(self, num_nets=3, num_active=2, backend="batched", width=8):
        config = body_config(width)
        nets = [ResNet(config, rng=new_rng(i)) for i in range(num_nets)]
        for net in nets:
            net.eval()
        selector = Selector(num_nets, tuple(range(num_active)))
        head = ResNetHead(config, new_rng(10))
        tail = ResNetTail(config, new_rng(11), in_multiplier=num_active)
        noise = FixedGaussianNoise(config.intermediate_shape(16), 0.1, new_rng(12))
        model = EnsemblerModel(head, [n.body for n in nets], tail, selector, noise,
                               backend=backend)
        return model.eval()

    def test_backend_resolution(self):
        assert self.make_model(backend="batched").backend == "batched"
        assert self.make_model(backend="looped").backend == "looped"
        with pytest.raises(ValueError):
            self.make_model(backend="gpu")

    @pytest.mark.parametrize("num_nets,width", EXPERIMENT_SHAPES)
    def test_server_outputs_backend_parity(self, num_nets, width):
        model = self.make_model(num_nets=num_nets, num_active=2, width=width)
        features = Tensor(features_for(width))
        with no_grad():
            fused = model.server_outputs(features, backend="batched")
            looped = model.server_outputs(features, backend="looped")
        assert len(fused) == len(looped) == num_nets
        for a, b in zip(fused, looped):
            assert np.abs(a.data - b.data).max() <= 1e-5

    def test_forward_backend_parity(self):
        batched = self.make_model(backend="batched")
        looped = self.make_model(backend="looped")
        x = Tensor(rng.random((2, 3, 16, 16)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(batched(x).data, looped(x).data, atol=1e-5)
            np.testing.assert_allclose(batched.forward_full_protocol(x).data,
                                       looped.forward_full_protocol(x).data,
                                       atol=1e-5)

    def test_heterogeneous_bodies_fall_back_to_looped(self):
        config8, config16 = body_config(8), body_config(8)
        bodies = [ResNet(config8, rng=new_rng(0)).body,
                  nn.Sequential(nn.GlobalAvgPool2d())]
        selector = Selector(2, (0, 1))
        model = EnsemblerModel(ResNetHead(config16, new_rng(1)), bodies,
                               nn.Identity(), selector, nn.Identity())
        assert model.backend == "looped"

    def test_load_state_dict_resyncs_stacked(self):
        source = self.make_model()
        target = self.make_model()
        for param in target.server_parameters():
            param.data = param.data + 0.05
        target.load_state_dict(source.state_dict())
        features = Tensor(features_for(8))
        with no_grad():
            fused = target.server_outputs(features, backend="batched")
            expected = source.server_outputs(features, backend="looped")
        for a, b in zip(fused, expected):
            assert np.abs(a.data - b.data).max() <= 1e-5

    def test_train_mode_updates_bodies_then_eval_resyncs(self):
        """Train-mode forwards must update BN stats in the *bodies* (looped
        path), and eval() must refresh the stacked mirror from them, so the
        backends stay interchangeable across a train/eval cycle."""
        model = self.make_model()
        x = Tensor(rng.random((4, 3, 16, 16)).astype(np.float32))
        before = [body.state_dict() for body in model.bodies]
        model.train()
        model.forward_full_protocol(x)  # runs looped; bodies' BN stats move
        after = [body.state_dict() for body in model.bodies]
        moved = any(not np.array_equal(b[k], a[k])
                    for b, a in zip(before, after) for k in b)
        assert moved, "train-mode forward should update the bodies' BN stats"
        model.eval()
        feats = Tensor(features_for(8))
        with no_grad():
            fused = model.server_outputs(feats, backend="batched")
            looped = model.server_outputs(feats, backend="looped")
        for a, b in zip(fused, looped):
            assert np.abs(a.data - b.data).max() <= 1e-5

    def test_state_dict_unchanged_by_backend(self):
        """The stacked mirror must not leak into checkpoints/parameters."""
        batched = self.make_model(backend="batched")
        looped = self.make_model(backend="looped")
        assert set(batched.state_dict()) == set(looped.state_dict())
        assert batched.num_parameters() == looped.num_parameters()


class TestServerBackend:
    def test_compute_backend_parity(self):
        bodies = make_bodies(4)
        features = features_for(8)
        fused = Server(bodies, backend="batched").compute(features)
        looped = Server(bodies, backend="looped").compute(features)
        assert len(fused) == len(looped) == 4
        for a, b in zip(fused, looped):
            assert np.abs(a - b).max() <= 1e-5

    def test_single_body_uses_loop(self):
        server = Server(make_bodies(1))
        assert server.backend == "looped"

    def test_heterogeneous_bodies_fall_back(self):
        bodies = [*make_bodies(1), nn.Sequential(nn.GlobalAvgPool2d())]
        server = Server(bodies)
        assert server.backend == "looped"
        assert len(server.compute(features_for(8))) == 2

    def test_sync_refreshes_after_mutation(self):
        bodies = make_bodies(2)
        server = Server(bodies)
        assert server.backend == "batched"
        for param in bodies[1].parameters():
            param.data = param.data + 0.02
        server.sync()
        features = features_for(8)
        fused = server.compute(features)
        looped = Server(bodies, backend="looped").compute(features)
        for a, b in zip(fused, looped):
            assert np.abs(a - b).max() <= 1e-5

    def test_pipeline_infer_backend_parity(self):
        config = body_config(8)
        nets = [ResNet(config, rng=new_rng(i)) for i in range(3)]
        for net in nets:
            net.eval()
        selector = Selector(3, (0, 2))
        head = ResNetHead(config, new_rng(20))
        tail = ResNetTail(config, new_rng(21), in_multiplier=2)
        head.eval()
        tail.eval()
        images = rng.random((2, 3, 16, 16)).astype(np.float32)
        logits = {}
        for backend in ("batched", "looped"):
            client = Client(head, tail, selector=selector)
            server = Server([net.body for net in nets], backend=backend)
            logits[backend] = EnsembleCIPipeline(client, server, Channel()).infer(images)
        np.testing.assert_allclose(logits["batched"], logits["looped"], atol=1e-5)


class TestStackedRecalibration:
    def test_recalibrate_batchnorm_accepts_stacked(self):
        """A fused replay recalibrates every member's BN stats like N loops."""
        nets = [ResNet(body_config(8), rng=new_rng(i)) for i in range(3)]
        clones = [ResNet(body_config(8), rng=new_rng(50 + i)) for i in range(3)]
        for net, clone in zip(nets, clones):
            clone.load_state_dict(net.state_dict())
        images = rng.random((12, 3, 16, 16)).astype(np.float32)

        for net in nets:
            recalibrate_batchnorm([net], lambda imgs, net=net: net(Tensor(imgs)),
                                  images, batch_size=4)

        stacked = stack_modules(clones)
        recalibrate_batchnorm([stacked], lambda imgs: stacked(Tensor(imgs)),
                              images, batch_size=4)
        stacked.unstack_to(clones)

        for net, clone in zip(nets, clones):
            for (name, buf), (_, clone_buf) in zip(net.named_buffers(),
                                                   clone.named_buffers()):
                np.testing.assert_allclose(clone_buf, buf, atol=1e-4,
                                           err_msg=f"buffer {name} diverged")


class TestDecoderStackers:
    """Fused-vs-looped parity for the decoder-topology stacker ops."""

    def _grads(self, module):
        return [p.grad.copy() for p in module.parameters()]

    def test_stacked_conv_transpose_shared_input(self):
        convs = [nn.ConvTranspose2d(4, 5, 4, stride=2, padding=1, rng=new_rng(i))
                 for i in range(3)]
        stacked = stack_modules(convs)
        x = Tensor(rng.random((2, 4, 6, 6)).astype(np.float32))
        out = stacked(x)
        assert out.shape == (3, 2, 5, 12, 12)
        for i, conv in enumerate(convs):
            np.testing.assert_allclose(out.data[i], conv(x).data, atol=1e-5)

    def test_stacked_conv_transpose_per_member_gradients(self):
        convs = [nn.ConvTranspose2d(3, 4, 4, stride=2, padding=1, rng=new_rng(i))
                 for i in range(3)]
        stacked = stack_modules(convs)
        xs = rng.random((3, 2, 3, 5, 5)).astype(np.float32)
        x = Tensor(xs, requires_grad=True)
        out = stacked(x)
        (out * out).sum().backward()
        stacked_grads = self._grads(stacked)
        for i, conv in enumerate(convs):
            xi = Tensor(xs[i], requires_grad=True)
            (lambda o: (o * o).sum().backward())(conv(xi))
            for got, ref in zip(stacked_grads, self._grads(conv)):
                np.testing.assert_allclose(got[i], ref, atol=1e-4)
            np.testing.assert_allclose(x.grad[i], xi.grad, atol=1e-4)

    def test_stacked_conv_transpose_output_padding(self):
        convs = [nn.ConvTranspose2d(2, 3, 3, stride=2, padding=1, output_padding=1,
                                    rng=new_rng(i)) for i in range(2)]
        stacked = stack_modules(convs)
        x = Tensor(rng.random((2, 2, 4, 4)).astype(np.float32))
        out = stacked(x)
        assert out.shape == (2, 2, 3, 8, 8)
        for i, conv in enumerate(convs):
            np.testing.assert_allclose(out.data[i], conv(x).data, atol=1e-5)

    def test_stacked_upsample_and_sigmoid(self):
        ups = stack_modules([nn.UpsampleNearest2d(2) for _ in range(2)])
        xs = rng.random((2, 3, 2, 4, 4)).astype(np.float32)
        out = ups(Tensor(xs))
        assert out.shape == (2, 3, 2, 8, 8)
        np.testing.assert_allclose(out.data[1], np.repeat(np.repeat(
            xs[1], 2, axis=2), 2, axis=3), atol=1e-6)
        sig = stack_modules([nn.Sigmoid() for _ in range(2)])
        out = sig(Tensor(xs))
        np.testing.assert_allclose(out.data, 1.0 / (1.0 + np.exp(-xs)), atol=1e-6)

    def test_full_decoder_tree_parity_both_variants(self):
        from repro.models.decoder import build_decoder
        for use_transposed in (True, False):
            decoders = [build_decoder((4, 4, 4), (3, 8, 8), width=4,
                                      use_transposed=use_transposed,
                                      rng=new_rng(10 + i)) for i in range(3)]
            stacked = stack_modules(decoders)
            xs = rng.random((3, 2, 4, 4, 4)).astype(np.float32)
            out = stacked(Tensor(xs))
            (out * out).sum().backward()
            stacked_grads = self._grads(stacked)
            for i, decoder in enumerate(decoders):
                o = decoder(Tensor(xs[i]))
                np.testing.assert_allclose(out.data[i], o.data, atol=1e-5)
                (o * o).sum().backward()
                for got, ref in zip(stacked_grads, self._grads(decoder)):
                    np.testing.assert_allclose(got[i], ref, atol=1e-4)

    def test_stacked_conv_transpose_unstack_roundtrip(self):
        convs = [nn.ConvTranspose2d(2, 2, 4, stride=2, padding=1, rng=new_rng(i))
                 for i in range(2)]
        stacked = stack_modules(convs)
        stacked.weight.data += 1.0
        stacked.bias.data += 0.5
        stacked.unstack_to(convs)
        for i, conv in enumerate(convs):
            np.testing.assert_allclose(conv.weight.data, stacked.weight.data[i])
            np.testing.assert_allclose(conv.bias.data, stacked.bias.data[i])
        stacked2 = stack_modules(convs)
        np.testing.assert_allclose(stacked2.weight.data, stacked.weight.data)

    def test_stacked_conv_transpose_rejects_mixed_stride(self):
        convs = [nn.ConvTranspose2d(2, 2, 4, stride=2, rng=new_rng(0)),
                 nn.ConvTranspose2d(2, 2, 4, stride=1, rng=new_rng(1))]
        with pytest.raises(UnstackableError):
            stack_modules(convs)

    def test_stacked_shadow_head_parity(self):
        from repro.models.shadow import ShadowHead
        config = body_config(8)
        heads = [ShadowHead(config, rng=new_rng(i)) for i in range(3)]
        for head in heads:
            head.eval()
        stacked = stack_modules(heads)
        stacked.eval()
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        out = stacked(x)
        for i, head in enumerate(heads):
            np.testing.assert_allclose(out.data[i], head(x).data, atol=1e-5)


class TestPerMemberLosses:
    def test_batched_cross_entropy_matches_loop(self):
        logits = Tensor(rng.random((3, 5, 4)).astype(np.float32))
        targets = rng.integers(0, 4, size=(3, 5))
        losses = batched_cross_entropy(logits, targets)
        assert losses.shape == (3,)
        for i in range(3):
            ref = F.cross_entropy(Tensor(logits.data[i]), targets[i])
            np.testing.assert_allclose(losses.data[i], ref.data, atol=1e-6)

    def test_batched_cross_entropy_gradient_is_per_member(self):
        data = rng.random((2, 4, 3)).astype(np.float32)
        targets = rng.integers(0, 3, size=(2, 4))
        logits = Tensor(data, requires_grad=True)
        batched_cross_entropy(logits, targets).sum().backward()
        for i in range(2):
            member = Tensor(data[i], requires_grad=True)
            F.cross_entropy(member, targets[i]).backward()
            np.testing.assert_allclose(logits.grad[i], member.grad, atol=1e-6)

    def test_batched_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            batched_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))

    def test_batched_mse_matches_loop(self):
        a = Tensor(rng.random((3, 2, 4, 5, 5)).astype(np.float32))
        b = Tensor(rng.random((3, 2, 4, 5, 5)).astype(np.float32))
        losses = batched_mse(a, b)
        assert losses.shape == (3,)
        for i in range(3):
            ref = F.mse_loss(Tensor(a.data[i]), Tensor(b.data[i]))
            np.testing.assert_allclose(losses.data[i], ref.data, atol=1e-6)

    def test_batched_mse_validates_shapes(self):
        with pytest.raises(ValueError):
            batched_mse(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))))


class TestStackedBatchNormRecording:
    def test_recorded_stats_are_per_member(self):
        bns = [nn.BatchNorm2d(4) for _ in range(3)]
        for bn in bns:
            bn.eval()
        stacked = stack_modules(bns)
        stacked.eval()
        stacked.record_batch_stats = True
        xs = rng.random((3, 2, 4, 5, 5)).astype(np.float32)
        stacked(Tensor(xs))
        rec_mean, rec_var = stacked.recorded_stats
        assert rec_mean.shape == (3, 4)
        for i in range(3):
            np.testing.assert_allclose(rec_mean.data[i], xs[i].mean(axis=(0, 2, 3)),
                                       atol=1e-6)
