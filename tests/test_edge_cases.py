"""Edge-case coverage across the library surface.

Behaviours that the main suites exercise only implicitly: dtype promotion,
gradient flow through uncommon op combinations, optimiser corner settings,
and defensive validation paths.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.optim import Adam, SGD
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

rng = np.random.default_rng(91)


class TestTensorEdgeCases:
    def test_astype_roundtrip_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True, dtype=np.float64)
        out = a.astype(np.float32).astype(np.float64)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_tensor_from_tensor_shares_nothing_on_copy(self):
        a = Tensor([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == pytest.approx(1.0)

    def test_tensor_wrapping_tensor_takes_data(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor(a)
        assert not b.requires_grad
        np.testing.assert_array_equal(b.data, a.data)

    def test_int_array_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.int64

    def test_scalar_tensor_len_raises(self):
        with pytest.raises(TypeError):
            len(Tensor(1.0))

    def test_getitem_single_element_grad(self):
        a = Tensor(np.arange(4, dtype=np.float64), requires_grad=True, dtype=np.float64)
        a[2].backward()
        np.testing.assert_allclose(a.grad, [0, 0, 1, 0])

    def test_chained_views_backprop(self):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True, dtype=np.float64)
        out = a.transpose(1, 0, 2).reshape(3, 8)[1:].sum()
        out.backward()
        assert a.grad is not None
        assert a.grad.shape == a.shape

    def test_where_with_scalar_branches(self):
        from repro.nn.tensor import where
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([0.0, 0.0]))
        np.testing.assert_array_equal(out.data, [1.0, 0.0])


class TestFunctionalEdgeCases:
    def test_conv_1x1_kernel(self):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)), dtype=np.float64)
        w = Tensor(rng.normal(size=(2, 4, 1, 1)), dtype=np.float64)
        out = F.conv2d(x, w)
        assert out.shape == (1, 2, 5, 5)
        # 1x1 conv == per-pixel linear map.
        expected = np.einsum("oc,nchw->nohw", w.data[:, :, 0, 0], x.data)
        np.testing.assert_allclose(out.data, expected, rtol=1e-8)

    def test_conv_batch_of_one(self):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), dtype=np.float64)
        w = Tensor(rng.normal(size=(1, 1, 3, 3)), dtype=np.float64)
        assert F.conv2d(x, w, padding=1).shape == (1, 1, 4, 4)

    def test_max_pool_kernel_equals_input(self):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), dtype=np.float64)
        out = F.max_pool2d(x, 4)
        assert out.shape == (1, 1, 1, 1)
        assert out.data[0, 0, 0, 0] == pytest.approx(x.data.max())

    def test_upsample_scale_one_is_identity_shape(self):
        x = Tensor(rng.normal(size=(1, 2, 3, 3)).astype(np.float32))
        out = F.upsample_nearest2d(x, 1)
        np.testing.assert_array_equal(out.data, x.data)

    def test_cross_entropy_single_sample(self):
        logits = Tensor(np.array([[10.0, -10.0]]), dtype=np.float64)
        loss = F.cross_entropy(logits, np.array([0]))
        assert float(loss.data) < 1e-6

    def test_cosine_similarity_antiparallel(self):
        a = Tensor(np.array([[1.0, 2.0]]), dtype=np.float64)
        b = Tensor(np.array([[-1.0, -2.0]]), dtype=np.float64)
        assert F.cosine_similarity(a, b).item() == pytest.approx(-1.0, abs=1e-6)


class TestOptimEdgeCases:
    def test_adam_decoupled_weight_decay_shrinks_without_grad_signal(self):
        layer = nn.Linear(3, 3, bias=False, rng=new_rng(0))
        opt = Adam(layer.parameters(), lr=0.1, weight_decay=0.1, decoupled=True)
        norm0 = np.linalg.norm(layer.weight.data)
        layer.weight.grad = np.zeros_like(layer.weight.data)
        for _ in range(5):
            opt.step()
        assert np.linalg.norm(layer.weight.data) < norm0

    def test_sgd_nesterov_converges(self):
        layer = nn.Linear(4, 1, bias=False, rng=new_rng(1))
        x = Tensor(rng.normal(size=(16, 4)).astype(np.float32))
        w_true = rng.normal(size=(1, 4)).astype(np.float32)
        target = Tensor(x.data @ w_true.T)  # realisable: optimum loss is 0
        opt = SGD(layer.parameters(), lr=0.05, momentum=0.9, nesterov=True)
        for step in range(100):
            opt.zero_grad()
            loss = F.mse_loss(layer(x), target)
            loss.backward()
            opt.step()
        assert float(loss.data) < 1e-3

    def test_adam_step_count_bias_correction(self):
        layer = nn.Linear(2, 2, rng=new_rng(0))
        opt = Adam(layer.parameters(), lr=0.1)
        layer.weight.grad = np.ones_like(layer.weight.data)
        before = layer.weight.data.copy()
        opt.step()
        # First Adam step moves by ~lr regardless of gradient scale.
        delta = np.abs(layer.weight.data - before)
        np.testing.assert_allclose(delta, 0.1, rtol=1e-4)


class TestBatchNormEdgeCases:
    def test_record_batch_stats_keeps_output_unchanged(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        x = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        with no_grad():
            base = bn(x).data.copy()
        bn.record_batch_stats = True
        with no_grad():
            recorded = bn(x).data
        np.testing.assert_array_equal(base, recorded)
        assert bn.recorded_stats is not None
        bn.record_batch_stats = False

    def test_recalibrate_batchnorm_matches_population_stats(self):
        from repro.core.training import recalibrate_batchnorm
        bn = nn.BatchNorm2d(3)
        images = rng.normal(2.0, 3.0, size=(64, 3, 4, 4)).astype(np.float32)
        recalibrate_batchnorm([bn], lambda batch: bn(Tensor(batch)), images,
                              batch_size=16)
        np.testing.assert_allclose(bn.running_mean, images.mean(axis=(0, 2, 3)),
                                   atol=0.05)

    def test_recalibrate_noop_without_bns(self):
        from repro.core.training import recalibrate_batchnorm
        layer = nn.Linear(4, 2, rng=new_rng(0))
        recalibrate_batchnorm([layer], lambda batch: layer(Tensor(batch)),
                              np.zeros((8, 4), dtype=np.float32))


class TestDefenseValidation:
    def test_shredder_sampling_is_seeded(self):
        from repro.defenses.shredder import ShredderNoise
        bank = [rng.normal(size=(2, 3, 3)).astype(np.float32) for _ in range(4)]
        a = ShredderNoise(bank, new_rng(5))
        b = ShredderNoise(bank, new_rng(5))
        seq_a = [a.sample_index() for _ in range(10)]
        seq_b = [b.sample_index() for _ in range(10)]
        assert seq_a == seq_b

    def test_latency_breakdown_total(self):
        from repro.latency import LatencyBreakdown
        row = LatencyBreakdown("x", 1.0, 2.0, 3.0)
        assert row.total_s == pytest.approx(6.0)
