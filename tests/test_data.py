"""Tests for datasets, loaders and the procedural generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    DataLoader,
    DatasetBundle,
    celeba_hq_like,
    cifar10_like,
    cifar100_like,
    make_face_identification,
    make_pattern_classification,
)

rng = np.random.default_rng(21)


def small_dataset(n=10, size=8, classes=3):
    images = rng.random((n, 3, size, size)).astype(np.float32)
    labels = rng.integers(0, classes, n)
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = small_dataset(n=7)
        assert len(ds) == 7
        image, label = ds[2]
        assert image.shape == (3, 8, 8)
        assert isinstance(label, int)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 3, 4, 4)), np.zeros(2))

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 4, 4)), np.zeros(3))

    def test_subset(self):
        ds = small_dataset(n=10)
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.images[1], ds.images[5])

    def test_dtype_coercion(self):
        ds = ArrayDataset(np.zeros((2, 1, 4, 4), dtype=np.float64), np.zeros(2, dtype=np.int32))
        assert ds.images.dtype == np.float32
        assert ds.labels.dtype == np.int64


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(small_dataset(n=10), batch_size=4)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        loader = DataLoader(small_dataset(n=10), batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert [len(b[0]) for b in loader] == [4, 4]

    def test_len_matches_iteration(self):
        loader = DataLoader(small_dataset(n=10), batch_size=3)
        assert len(loader) == len(list(loader))

    def test_shuffle_changes_order_but_not_content(self):
        ds = small_dataset(n=32)
        loader = DataLoader(ds, batch_size=32, shuffle=True, rng=np.random.default_rng(0))
        (images, labels), = list(loader)
        assert not np.array_equal(images, ds.images)  # order changed
        assert sorted(labels.tolist()) == sorted(ds.labels.tolist())

    def test_no_shuffle_preserves_order(self):
        ds = small_dataset(n=8)
        loader = DataLoader(ds, batch_size=8)
        (images, _), = list(loader)
        np.testing.assert_array_equal(images, ds.images)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(small_dataset(), batch_size=0)


class TestPatternGenerator:
    def test_shapes_and_range(self):
        ds = make_pattern_classification(4, 5, 16, np.random.default_rng(0))
        assert ds.images.shape == (20, 3, 16, 16)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_all_classes_present(self):
        ds = make_pattern_classification(5, 3, 16, np.random.default_rng(0))
        assert set(ds.labels.tolist()) == set(range(5))

    def test_instances_differ_within_class(self):
        ds = make_pattern_classification(1, 2, 16, np.random.default_rng(0))
        assert not np.array_equal(ds.images[0], ds.images[1])

    def test_classes_are_separable_by_template_matching(self):
        """Nearest-class-mean classification must beat chance by a wide margin
        — this is the property that makes ΔAcc meaningful."""
        gen = np.random.default_rng(0)
        train = make_pattern_classification(4, 20, 16, gen, seed=9)
        test = make_pattern_classification(4, 10, 16, gen, seed=9)
        means = np.stack([train.images[train.labels == c].mean(axis=0) for c in range(4)])
        flat_means = means.reshape(4, -1)
        flat_test = test.images.reshape(len(test), -1)
        distances = ((flat_test[:, None, :] - flat_means[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        assert (predictions == test.labels).mean() > 0.8

    def test_deterministic_given_seed(self):
        a = make_pattern_classification(2, 3, 8, np.random.default_rng(5), seed=1)
        b = make_pattern_classification(2, 3, 8, np.random.default_rng(5), seed=1)
        np.testing.assert_array_equal(a.images, b.images)


class TestFaceGenerator:
    def test_shapes_and_range(self):
        ds = make_face_identification(3, 4, 32, np.random.default_rng(0))
        assert ds.images.shape == (12, 3, 32, 32)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_identities_distinct(self):
        ds = make_face_identification(2, 8, 32, np.random.default_rng(0))
        mean_a = ds.images[ds.labels == 0].mean(axis=0)
        mean_b = ds.images[ds.labels == 1].mean(axis=0)
        assert np.abs(mean_a - mean_b).mean() > 0.01


class TestBundles:
    def test_cifar10_like_defaults(self):
        bundle = cifar10_like(size=16, train_per_class=2, test_per_class=1)
        assert bundle.num_classes == 10
        assert bundle.image_shape == (3, 16, 16)
        assert len(bundle.train) == 20
        assert len(bundle.test) == 10

    def test_cifar100_like_has_100_classes(self):
        bundle = cifar100_like(size=16, train_per_class=1, test_per_class=1)
        assert bundle.num_classes == 100
        assert set(bundle.train.labels.tolist()) == set(range(100))

    def test_celeba_like_shape(self):
        bundle = celeba_hq_like(size=32, num_identities=4, train_per_identity=2,
                                test_per_identity=1)
        assert bundle.image_shape == (3, 32, 32)
        assert bundle.num_classes == 4

    def test_bundle_validates_shapes(self):
        ds = small_dataset(n=4, size=8)
        with pytest.raises(ValueError):
            DatasetBundle("bad", ds, ds, 3, (3, 16, 16))


@settings(max_examples=10, deadline=None)
@given(classes=st.integers(2, 6), per_class=st.integers(1, 4), seed=st.integers(0, 100))
def test_property_generator_counts(classes, per_class, seed):
    """Every generated dataset has exactly classes*per_class balanced samples."""
    ds = make_pattern_classification(classes, per_class, 8, np.random.default_rng(seed))
    assert len(ds) == classes * per_class
    counts = np.bincount(ds.labels, minlength=classes)
    assert (counts == per_class).all()
