"""Tests for the multi-tenant serving API (protocol, sessions, coalescing)."""

import numpy as np
import pytest

from repro.ci import Channel, EnsembleCIPipeline, HEADER_BYTES, Server, TransferStats
from repro.ci.pipeline import Client
from repro.core.selector import Selector
from repro.models.resnet import ResNet, ResNetConfig, ResNetHead, ResNetTail
from repro.serving import (
    BackpressureError,
    Codec,
    FeatureResponse,
    InferenceService,
    ProtocolError,
    ServingConfig,
    Session,
    UploadRequest,
)
from repro.serving.protocol import _DTYPE_CODES
from repro.utils.rng import new_rng

rng = np.random.default_rng(7)


def tiny_config(num_classes=4):
    return ResNetConfig(num_classes=num_classes, stem_channels=8, stage_channels=(8, 16),
                        blocks_per_stage=(1, 1), use_maxpool=True)


def make_bodies(num_nets=3, config=None):
    config = config or tiny_config()
    bodies = [ResNet(config, rng=new_rng(i)).body for i in range(num_nets)]
    for body in bodies:
        body.eval()
    return bodies


def make_client_parts(config, num_nets, num_active, seed=0):
    head = ResNetHead(config, new_rng(50 + seed))
    tail = ResNetTail(config, new_rng(80 + seed), in_multiplier=num_active)
    head.eval()
    tail.eval()
    selector = Selector.random(num_nets, num_active, rng=new_rng(110 + seed))
    return head, tail, selector


class TestProtocol:
    def test_upload_round_trip(self):
        features = rng.random((3, 8, 8, 8)).astype(np.float32)
        request = UploadRequest(5, 17, features, record=True)
        parsed = UploadRequest.from_bytes(request.to_bytes())
        assert parsed.session_id == 5
        assert parsed.request_id == 17
        assert parsed.record is True
        np.testing.assert_array_equal(parsed.features, features)

    def test_response_round_trip(self):
        outputs = [rng.random((2, 16)).astype(np.float32) for _ in range(4)]
        response = FeatureResponse(9, 3, outputs)
        parsed = FeatureResponse.from_bytes(response.to_bytes())
        assert parsed.session_id == 9 and parsed.request_id == 3
        assert parsed.num_nets == 4
        for a, b in zip(parsed.outputs, outputs):
            np.testing.assert_array_equal(a, b)

    def test_wire_nbytes_is_exact_framed_length(self):
        """The channel accounts len(to_bytes()) — and that equals the
        historical per-array framing, keeping Table III calibration."""
        features = rng.random((2, 8, 8, 8)).astype(np.float32)
        request = UploadRequest(1, 0, features)
        assert request.wire_nbytes() == len(request.to_bytes())
        assert request.wire_nbytes() == features.nbytes + HEADER_BYTES
        outputs = [rng.random((2, 16)).astype(np.float32) for _ in range(3)]
        response = FeatureResponse(1, 0, outputs)
        assert response.wire_nbytes() == len(response.to_bytes())
        assert response.wire_nbytes() == sum(o.nbytes + HEADER_BYTES for o in outputs)

    def test_dtype_preserved(self):
        features = rng.integers(0, 255, size=(1, 4, 4), dtype=np.int64).astype(np.float64)
        parsed = UploadRequest.from_bytes(UploadRequest(1, 1, features).to_bytes())
        assert parsed.features.dtype == np.float64

    def test_parsed_array_is_writable_copy(self):
        features = rng.random((1, 4)).astype(np.float32)
        parsed = UploadRequest.from_bytes(UploadRequest(1, 1, features).to_bytes())
        parsed.features[0, 0] = 42.0  # must not raise (frombuffer is read-only)

    def test_bad_magic_rejected(self):
        blob = bytearray(UploadRequest(1, 1, np.zeros((1, 2), dtype=np.float32)).to_bytes())
        blob[:4] = b"XXXX"
        with pytest.raises(ProtocolError):
            UploadRequest.from_bytes(bytes(blob))

    def test_truncated_payload_rejected(self):
        blob = UploadRequest(1, 1, np.zeros((2, 3), dtype=np.float32)).to_bytes()
        with pytest.raises(ProtocolError):
            UploadRequest.from_bytes(blob[:-4])

    def test_kind_mismatch_rejected(self):
        blob = UploadRequest(1, 1, np.zeros((1, 2), dtype=np.float32)).to_bytes()
        with pytest.raises(ProtocolError):
            FeatureResponse.from_bytes(blob)

    def test_channel_accounts_wire_messages(self):
        channel = Channel()
        features = rng.random((2, 8, 8, 8)).astype(np.float32)
        request = UploadRequest(1, 0, features)
        channel.send_up(request)
        assert channel.stats.uplink_messages == 1
        assert channel.stats.uplink_bytes == len(request.to_bytes())

    @pytest.mark.parametrize("dtype", sorted(_DTYPE_CODES, key=str),
                             ids=lambda d: str(d))
    def test_round_trip_over_every_wire_dtype(self, dtype):
        """Property-style: every registered dtype survives the frame."""
        if dtype == np.dtype(np.bool_):
            features = rng.random((2, 3, 5)) > 0.5
        elif dtype.kind in "iu":
            features = rng.integers(0, 100, size=(2, 3, 5)).astype(dtype)
        else:
            features = rng.random((2, 3, 5)).astype(dtype)
        parsed = UploadRequest.from_bytes(UploadRequest(4, 9, features).to_bytes())
        assert parsed.features.dtype == dtype
        np.testing.assert_array_equal(parsed.features, features)
        response = FeatureResponse(4, 9, [features, features])
        reparsed = FeatureResponse.from_bytes(response.to_bytes())
        for arr in reparsed.outputs:
            assert arr.dtype == dtype
            np.testing.assert_array_equal(arr, features)

    def _valid_blob(self) -> bytearray:
        return bytearray(
            UploadRequest(1, 1, np.zeros((2, 3), dtype=np.float32)).to_bytes())

    def test_truncated_header_rejected(self):
        blob = self._valid_blob()
        with pytest.raises(ProtocolError, match="truncated frame header"):
            UploadRequest.from_bytes(bytes(blob[:32]))

    def test_version_mismatch_rejected(self):
        blob = self._valid_blob()
        blob[4:6] = (1).to_bytes(2, "little")  # wire version 1 frame
        with pytest.raises(ProtocolError, match="protocol version"):
            UploadRequest.from_bytes(bytes(blob))

    def test_unknown_dtype_code_rejected(self):
        blob = self._valid_blob()
        blob[30:32] = (250).to_bytes(2, "little")
        with pytest.raises(ProtocolError, match="unknown dtype code"):
            UploadRequest.from_bytes(bytes(blob))

    def test_unknown_codec_code_rejected(self):
        blob = self._valid_blob()
        blob[34:36] = (77).to_bytes(2, "little")
        with pytest.raises(ProtocolError, match="unknown codec code"):
            UploadRequest.from_bytes(bytes(blob))

    def test_bad_ndim_rejected(self):
        blob = self._valid_blob()
        blob[32:34] = (9).to_bytes(2, "little")
        with pytest.raises(ProtocolError, match="bad ndim"):
            UploadRequest.from_bytes(bytes(blob))

    def test_empty_message_rejected(self):
        with pytest.raises(ProtocolError, match="empty message"):
            UploadRequest.from_bytes(b"")


class TestCodec:
    def test_parse_specs(self):
        assert Codec.parse("fp16") is Codec.FP16
        assert Codec.parse("FP32") is Codec.FP32
        assert Codec.parse(None) is Codec.FP32
        assert Codec.parse(Codec.FP16) is Codec.FP16
        assert Codec.parse(1) is Codec.FP16
        with pytest.raises(ValueError, match="unknown codec"):
            Codec.parse("fp8")

    def test_fp16_narrows_response_payload_exactly(self):
        outputs = [rng.random((2, 16)).astype(np.float32) for _ in range(3)]
        fp32 = FeatureResponse.encode(1, 0, outputs, codec="fp32")
        fp16 = FeatureResponse.encode(1, 0, outputs, codec="fp16")
        assert fp16.codec is Codec.FP16
        assert all(arr.dtype == np.float16 for arr in fp16.outputs)
        # exact byte accounting: payload halves, per-array headers stay
        assert fp16.wire_nbytes() == len(fp16.to_bytes())
        assert fp16.wire_nbytes() == sum(
            o.nbytes // 2 + HEADER_BYTES for o in outputs)
        assert fp32.wire_nbytes() == sum(o.nbytes + HEADER_BYTES for o in outputs)

    def test_fp16_round_trip_and_decode_tolerance(self):
        outputs = [rng.random((2, 16)).astype(np.float32) for _ in range(3)]
        parsed = FeatureResponse.from_bytes(
            FeatureResponse.encode(1, 0, outputs, codec="fp16").to_bytes())
        assert parsed.codec is Codec.FP16
        decoded = parsed.decoded()
        for got, want in zip(decoded, outputs):
            assert got.dtype == np.float32
            np.testing.assert_allclose(got, want, atol=1e-3)

    def test_fp32_codec_is_identity(self):
        outputs = [rng.random((2, 16)).astype(np.float32)]
        response = FeatureResponse.encode(1, 0, outputs)
        assert response.outputs[0] is outputs[0] or np.shares_memory(
            response.outputs[0], outputs[0])
        np.testing.assert_array_equal(response.decoded()[0], outputs[0])


class TestTransferStats:
    def test_add_combines_counters(self):
        a = TransferStats(1, 100, 2, 200)
        b = TransferStats(3, 50, 4, 25)
        total = a + b
        assert total == TransferStats(4, 150, 6, 225)
        # operands untouched
        assert a == TransferStats(1, 100, 2, 200)

    def test_merge_in_place(self):
        a = TransferStats(1, 10, 1, 10)
        result = a.merge(TransferStats(1, 5, 0, 0))
        assert result is a
        assert a == TransferStats(2, 15, 1, 10)

    def test_sum_builtin(self):
        parts = [TransferStats(1, 10, 1, 20) for _ in range(3)]
        total = sum(parts)
        assert total.uplink_bytes == 30 and total.downlink_bytes == 60
        assert total is not parts[0]

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            TransferStats() + 5


class TestSessions:
    def make_service(self, num_nets=3, **kwargs):
        kwargs.setdefault("max_batch", 4)
        return InferenceService(Server(make_bodies(num_nets)), **kwargs)

    def test_open_session_builds_client(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        session = service.open_session(head, tail, selector=selector)
        assert isinstance(session, Session)
        assert session.selector is selector
        assert session.session_id in {s.session_id for s in service.sessions}

    def test_per_session_noise_seed_is_deterministic(self):
        service = self.make_service()
        config = tiny_config()
        shape = config.intermediate_shape(16)
        head, tail, selector = make_client_parts(config, 3, 2)
        same_a = service.open_session(head, tail, selector=selector,
                                      noise_seed=5, noise_shape=shape)
        same_b = service.open_session(head, tail, selector=selector,
                                      noise_seed=5, noise_shape=shape)
        other = service.open_session(head, tail, selector=selector,
                                     noise_seed=6, noise_shape=shape)
        np.testing.assert_array_equal(same_a.client.noise.noise,
                                      same_b.client.noise.noise)
        assert np.abs(other.client.noise.noise - same_a.client.noise.noise).max() > 0

    def test_noise_seed_requires_shape(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        with pytest.raises(ValueError):
            service.open_session(head, tail, selector=selector, noise_seed=1)

    def test_unknown_session_rejected(self):
        service = self.make_service()
        with pytest.raises(KeyError):
            service.submit(UploadRequest(99, 0, np.zeros((1, 8, 8, 8), np.float32)))

    def test_result_before_tick_raises(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        session = service.open_session(head, tail, selector=selector)
        rid = session.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        assert session.outstanding == 1
        with pytest.raises(KeyError, match="no\\s+result yet"):
            session.result(rid)
        service.run_until_idle()
        assert session.has_result(rid)
        assert session.result(rid).shape == (1, 4)
        assert session.outstanding == 0

    def test_take_response_and_discard_results(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        session = service.open_session(head, tail, selector=selector)
        images = rng.random((1, 3, 16, 16)).astype(np.float32)
        first = session.submit(images)
        second = session.submit(images)
        service.run_until_idle()
        response = session.take_response(first)
        assert isinstance(response, FeatureResponse)
        assert response.num_nets == 3
        assert session.take_response(first) is None  # popped
        assert session.discard_results() == 1  # the second response
        assert not session.has_result(second)

    def test_result_consumed_twice_says_so(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        session = service.open_session(head, tail, selector=selector)
        rid = session.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        service.run_until_idle()
        session.result(rid)
        with pytest.raises(KeyError, match="already consumed"):
            session.result(rid)

    def test_closed_session_traffic_retained_in_totals(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        sessions = [service.open_session(head, tail, selector=selector)
                    for _ in range(2)]
        for session in sessions:
            session.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        service.run_until_idle()
        before = service.transfer_totals()
        service.close_session(sessions[0])
        assert service.transfer_totals() == before  # churn must not shrink totals

    def test_closed_session_requests_dropped(self):
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        session = service.open_session(head, tail, selector=selector)
        session.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        service.close_session(session)
        assert service.pending == 0
        assert service.run_until_idle() == 0

    def test_close_session_counts_cancelled_requests(self):
        """Shed queued work is observable: uplink bytes were already
        accounted, so the drop must show up in stats.cancelled_requests."""
        service = self.make_service()
        head, tail, selector = make_client_parts(tiny_config(), 3, 2)
        victim = service.open_session(head, tail, selector=selector)
        survivor = service.open_session(head, tail, selector=selector)
        images = rng.random((1, 3, 16, 16)).astype(np.float32)
        victim.submit(images)
        victim.submit(images)
        survivor.submit(images)
        assert service.stats.cancelled_requests == 0
        service.close_session(victim)
        assert service.stats.cancelled_requests == 2
        assert service.pending == 1  # the survivor's request is untouched
        service.run_until_idle()
        assert service.stats.served_requests == 1
        service.close_session(survivor)  # nothing queued: no new cancels
        assert service.stats.cancelled_requests == 2

    def test_fp16_session_halves_downlink_and_keeps_outputs_close(self):
        """Codec negotiation at open_session: exact narrowed byte
        accounting, outputs within fp16 tolerance of the fp32 session."""
        config = tiny_config()
        bodies = make_bodies(3, config)
        service = InferenceService(Server(bodies), max_batch=4)
        head, tail, selector = make_client_parts(config, 3, 2)
        fp32 = service.open_session(head, tail, selector=selector)
        fp16 = service.open_session(head, tail, selector=selector, codec="fp16")
        assert fp16.codec is Codec.FP16
        images = rng.random((2, 3, 16, 16)).astype(np.float32)
        rid32 = fp32.submit(images)
        rid16 = fp16.submit(images)
        service.run_until_idle()
        logits32 = fp32.result(rid32)
        logits16 = fp16.result(rid16)
        np.testing.assert_allclose(logits16, logits32, atol=5e-2)
        assert fp32.stats.uplink_bytes == fp16.stats.uplink_bytes
        payload32 = fp32.stats.downlink_bytes - 3 * HEADER_BYTES
        assert fp16.stats.downlink_bytes == payload32 // 2 + 3 * HEADER_BYTES

    def test_config_codec_sets_session_default(self):
        service = InferenceService(Server(make_bodies(2)), codec="fp16")
        head, tail, selector = make_client_parts(tiny_config(), 2, 1)
        default = service.open_session(head, tail, selector=selector)
        override = service.open_session(head, tail, selector=selector,
                                        codec="fp32")
        assert default.codec is Codec.FP16
        assert override.codec is Codec.FP32


class TestCoalescing:
    """The acceptance criterion: coalesced == sequential to <= 1e-5."""

    def make_deployment(self, num_nets=4, num_active=2, num_sessions=3):
        config = tiny_config()
        bodies = make_bodies(num_nets, config)
        service = InferenceService(Server(bodies), max_batch=16, max_queue=32)
        sessions = []
        for s in range(num_sessions):
            head, tail, selector = make_client_parts(config, num_nets, num_active,
                                                     seed=s)
            sessions.append(service.open_session(
                head, tail, selector=selector, noise_seed=700 + s,
                noise_shape=config.intermediate_shape(16)))
        return config, bodies, service, sessions

    def sequential_reference(self, bodies, sessions, images, record=False):
        """K independent single-request EnsembleCIPipeline.infer calls."""
        server = Server(list(bodies))
        logits = []
        for session, batch in zip(sessions, images):
            pipeline = EnsembleCIPipeline(session.client, server, Channel())
            logits.append(pipeline.infer(batch, record=record))
        return logits, server

    def test_coalesced_equals_sequential(self):
        config, bodies, service, sessions = self.make_deployment()
        images = [rng.random((2, 3, 16, 16)).astype(np.float32)
                  for _ in sessions]
        request_ids = [s.submit(im) for s, im in zip(sessions, images)]
        ticks = service.run_until_idle()
        assert ticks == 1  # all three requests served by ONE stacked pass
        coalesced = [s.result(r) for s, r in zip(sessions, request_ids)]
        expected, _ = self.sequential_reference(bodies, sessions, images)
        for got, want in zip(coalesced, expected):
            np.testing.assert_allclose(got, want, atol=1e-5)

    def test_mixed_batch_sizes(self):
        config, bodies, service, sessions = self.make_deployment(num_sessions=3)
        images = [rng.random((b, 3, 16, 16)).astype(np.float32)
                  for b in (1, 3, 2)]
        request_ids = [s.submit(im) for s, im in zip(sessions, images)]
        assert service.run_until_idle() == 1
        coalesced = [s.result(r) for s, r in zip(sessions, request_ids)]
        assert [c.shape[0] for c in coalesced] == [1, 3, 2]
        expected, _ = self.sequential_reference(bodies, sessions, images)
        for got, want in zip(coalesced, expected):
            np.testing.assert_allclose(got, want, atol=1e-5)

    def test_record_mode_captures_per_request_features(self):
        config, bodies, service, sessions = self.make_deployment(num_sessions=3)
        images = [rng.random((b, 3, 16, 16)).astype(np.float32)
                  for b in (2, 1, 2)]
        request_ids = [s.submit(im, record=True)
                       for s, im in zip(sessions, images)]
        service.run_until_idle()
        coalesced = [s.result(r) for s, r in zip(sessions, request_ids)]
        expected, seq_server = self.sequential_reference(bodies, sessions, images,
                                                         record=True)
        for got, want in zip(coalesced, expected):
            np.testing.assert_allclose(got, want, atol=1e-5)
        # The semi-honest server retains the same per-request feature maps in
        # the same order as K sequential record=True serves.
        assert len(service.server.observed_features) == len(seq_server.observed_features)
        for got, want in zip(service.server.observed_features,
                             seq_server.observed_features):
            np.testing.assert_allclose(got, want, atol=1e-6)

    def test_byte_accounting_identical_to_sequential(self):
        config, bodies, service, sessions = self.make_deployment(num_sessions=3)
        images = [rng.random((b, 3, 16, 16)).astype(np.float32)
                  for b in (1, 2, 3)]
        for session, batch in zip(sessions, images):
            session.submit(batch)
        service.run_until_idle()
        server = Server(list(bodies))
        for session, batch in zip(sessions, images):
            reference = EnsembleCIPipeline(session.client, server, Channel())
            reference.infer(batch)
            assert session.stats == reference.channel.stats

    def test_max_batch_splits_ticks(self):
        config, bodies, service, sessions = self.make_deployment(num_sessions=3)
        small = InferenceService(Server(bodies), max_batch=2, max_queue=8)
        tenants = [small.adopt_session(s.client) for s in sessions]
        for tenant in tenants:
            tenant.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        assert small.run_until_idle() == 2  # 2 + 1 requests
        assert small.stats.peak_coalesced == 2
        assert small.stats.served_requests == 3

    def test_shape_change_breaks_group(self):
        """FIFO groups stop at a feature-shape boundary (never reorder)."""
        config = tiny_config()
        bodies = make_bodies(3, config)
        service = InferenceService(Server(bodies), max_batch=8)
        client = Client(ResNetHead(config, new_rng(1)).eval(),
                        ResNetTail(config, new_rng(2), in_multiplier=2).eval(),
                        selector=Selector(3, (0, 1)))
        session = service.adopt_session(client)
        # Convolutional bodies accept any spatial size; 8x8 and 4x4 uploads
        # cannot share one concatenated batch.
        session.submit_features(rng.random((1, 8, 8, 8)).astype(np.float32))
        session.submit_features(rng.random((1, 8, 4, 4)).astype(np.float32))
        session.submit_features(rng.random((1, 8, 8, 8)).astype(np.float32))
        assert service.run_until_idle() == 3
        assert service.stats.peak_coalesced == 1

    def test_aggregate_transfer_totals(self):
        config, bodies, service, sessions = self.make_deployment(num_sessions=3)
        for session in sessions:
            session.submit(rng.random((1, 3, 16, 16)).astype(np.float32))
        service.run_until_idle()
        totals = service.transfer_totals()
        assert totals == sum(s.stats for s in sessions)
        assert totals.uplink_messages == 3
        assert totals.downlink_messages == 3


class TestBackpressure:
    def test_queue_bound_enforced(self):
        service = InferenceService(Server(make_bodies(2)), max_batch=2, max_queue=2)
        head, tail, selector = make_client_parts(tiny_config(), 2, 1)
        session = service.open_session(head, tail, selector=selector)
        features = rng.random((1, 8, 8, 8)).astype(np.float32)
        session.submit_features(features)
        session.submit_features(features)
        before = session.stats.uplink_bytes
        with pytest.raises(BackpressureError):
            session.submit_features(features)
        # the rejected request transmitted nothing and is not outstanding
        assert session.stats.uplink_bytes == before
        assert session.outstanding == 2
        assert service.stats.rejected_requests == 1
        service.run_until_idle()
        session.submit_features(features)  # space again after draining
        assert service.pending == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServingConfig(scheduler="lifo")
        with pytest.raises(ValueError):
            ServingConfig(codec="fp8")


class TestPresetWiring:
    def test_preset_builds_service(self):
        from repro.experiments.common import get_preset
        preset = get_preset("tiny")
        assert preset.serving.max_batch == 4
        service = preset.inference_service(make_bodies(3))
        assert isinstance(service, InferenceService)
        assert service.config == preset.serving
        assert service.num_nets == 3

    def test_all_presets_carry_serving_config(self):
        from repro.experiments.common import get_preset
        for name in ("tiny", "small", "paper"):
            config = get_preset(name).serving
            assert config.max_batch >= 1
            assert config.max_queue >= config.max_batch


class TestPipelineAdapters:
    def test_pipeline_exposes_session(self):
        config = tiny_config()
        bodies = make_bodies(3, config)
        head, tail, selector = make_client_parts(config, 3, 2)
        client = Client(head, tail, selector=selector)
        pipeline = EnsembleCIPipeline(client, Server(bodies), Channel())
        assert isinstance(pipeline.session, Session)
        assert pipeline.session.channel is pipeline.channel

    def test_repeated_infer_accumulates_stats(self):
        config = tiny_config()
        bodies = make_bodies(3, config)
        head, tail, selector = make_client_parts(config, 3, 2)
        client = Client(head, tail, selector=selector)
        pipeline = EnsembleCIPipeline(client, Server(bodies), Channel())
        images = rng.random((2, 3, 16, 16)).astype(np.float32)
        pipeline.infer(images)
        pipeline.infer(images)
        assert pipeline.channel.stats.uplink_messages == 2
        assert pipeline.channel.stats.downlink_messages == 2
