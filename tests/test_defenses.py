"""Tests for the defense implementations behind the uniform FittedDefense API."""

import numpy as np
import pytest

from repro import nn
from repro.core import EnsemblerConfig, TrainingConfig
from repro.data import cifar10_like
from repro.defenses import (
    REGISTRY,
    AlwaysOnDropout,
    FittedDefense,
    ShredderNoise,
    fit_dropout_ensemble,
    fit_dropout_single,
    fit_ensembler,
    fit_no_defense,
    fit_shredder,
    fit_single,
)
from repro.models import ResNetConfig
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

rng = np.random.default_rng(71)

TINY_MODEL = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
TINY_TRAIN = TrainingConfig(epochs=2, batch_size=16, lr=0.05)
TINY_ENSEMBLE = EnsemblerConfig(num_nets=3, num_active=2, sigma=0.1, lambda_reg=1.0,
                                stage1=TINY_TRAIN, stage3=TINY_TRAIN)


@pytest.fixture(scope="module")
def bundle():
    return cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4)


class TestFittedDefense:
    def test_requires_bodies(self):
        with pytest.raises(ValueError):
            FittedDefense("x", nn.Identity(), [], nn.Identity(), nn.Identity(), TINY_MODEL)

    def test_selector_arity_checked(self, bundle):
        from repro.core import Selector
        defense = fit_no_defense(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))
        with pytest.raises(ValueError):
            FittedDefense("x", defense.head, defense.bodies, defense.tail, defense.noise,
                          TINY_MODEL, selector=Selector(3, (0,)))

    def test_predict_shape(self, bundle):
        defense = fit_no_defense(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))
        logits = defense.predict(bundle.test.images[:4])
        assert logits.shape == (4, 4)

    def test_intermediate_is_noised_head(self, bundle):
        defense = fit_single(bundle, TINY_MODEL, sigma=0.3, training=TINY_TRAIN,
                             rng=new_rng(0))
        images = bundle.test.images[:2]
        from repro.nn.tensor import no_grad
        with no_grad():
            clean = defense.head(Tensor(images)).data
        noised = defense.intermediate(images)
        expected = np.broadcast_to(defense.noise.noise, noised.shape)
        np.testing.assert_allclose(noised - clean, expected, atol=1e-5)

    def test_accuracy_in_unit_range(self, bundle):
        defense = fit_no_defense(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))
        assert 0.0 <= defense.accuracy(bundle.test) <= 1.0


class TestBaselines:
    def test_no_defense_has_identity_noise(self, bundle):
        defense = fit_no_defense(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))
        assert defense.name == "none"
        assert isinstance(defense.noise, nn.Identity)
        assert len(defense.bodies) == 1
        assert defense.selector is None

    def test_single_uses_fixed_gaussian(self, bundle):
        from repro.core import FixedGaussianNoise
        defense = fit_single(bundle, TINY_MODEL, sigma=0.1, training=TINY_TRAIN,
                             rng=new_rng(0))
        assert isinstance(defense.noise, FixedGaussianNoise)
        assert defense.extras["sigma"] == 0.1

    def test_training_history_recorded(self, bundle):
        defense = fit_single(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))
        assert len(defense.extras["history"]) == TINY_TRAIN.epochs

    def test_dropout_single_noise_active_in_eval(self, bundle):
        defense = fit_dropout_single(bundle, TINY_MODEL, p=0.5, training=TINY_TRAIN,
                                     rng=new_rng(0))
        assert isinstance(defense.noise, AlwaysOnDropout)
        a = defense.intermediate(bundle.test.images[:1])
        b = defense.intermediate(bundle.test.images[:1])
        assert not np.array_equal(a, b)  # dropout still randomises at inference

    def test_always_on_dropout_validation(self):
        with pytest.raises(ValueError):
            AlwaysOnDropout(1.0)


class TestShredder:
    @pytest.fixture(scope="class")
    def shredder(self, bundle):
        return fit_shredder(bundle, TINY_MODEL, bank_size=2, training=TINY_TRAIN,
                            noise_training=TINY_TRAIN, rng=new_rng(0))

    def test_noise_bank_size(self, shredder):
        assert isinstance(shredder.noise, ShredderNoise)
        assert shredder.noise.bank_size == 2

    def test_bank_tensors_differ(self, shredder):
        a = shredder.noise.noise_0
        b = shredder.noise.noise_1
        assert not np.array_equal(a, b)

    def test_learned_noise_is_larger_than_init(self, bundle):
        """The magnitude bonus must grow the noise beyond its init scale."""
        defense = fit_shredder(bundle, TINY_MODEL, bank_size=1, init_sigma=0.1, mu=0.5,
                               training=TINY_TRAIN,
                               noise_training=TrainingConfig(epochs=4, batch_size=16, lr=0.05),
                               rng=new_rng(1))
        learned = np.abs(defense.noise.noise_0).mean()
        assert learned > 0.08  # grew from |N(0, 0.1)| mean ~= 0.08

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            ShredderNoise([])

    def test_intermediate_uses_sampled_noise(self, shredder, bundle):
        values = {shredder.intermediate(bundle.test.images[:1]).tobytes()
                  for _ in range(8)}
        assert len(values) >= 2  # different bank entries get sampled


class TestEnsembleDefenses:
    @pytest.fixture(scope="class")
    def ensembler(self, bundle):
        return fit_ensembler(bundle, TINY_MODEL, config=TINY_ENSEMBLE, rng=new_rng(0))

    def test_ensembler_shape(self, ensembler):
        assert ensembler.name == "ensembler"
        assert len(ensembler.bodies) == 3
        assert ensembler.selector is not None
        assert ensembler.selector.num_active == 2

    def test_ensembler_predicts(self, ensembler, bundle):
        assert ensembler.predict(bundle.test.images[:4]).shape == (4, 4)

    def test_ensembler_keeps_training_result(self, ensembler):
        result = ensembler.extras["training_result"]
        assert len(result.stage1_nets) == 3

    def test_dropout_ensemble_removes_stage1_noise(self, bundle):
        defense = fit_dropout_ensemble(bundle, TINY_MODEL, config=TINY_ENSEMBLE, p=0.2,
                                       rng=new_rng(1))
        assert defense.name == "dr-3"
        config = defense.extras["config"]
        assert config.sigma == 0.0
        assert config.lambda_reg == 0.0
        assert isinstance(defense.noise, AlwaysOnDropout)

    def test_registry_complete(self):
        assert set(REGISTRY) == {"none", "single", "shredder", "dr-single",
                                 "dr-ensemble", "ensembler"}
