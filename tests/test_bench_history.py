"""Tests for the benchmark history helpers: bounded, per-key trimming."""

import importlib.util
import json
from pathlib import Path

import pytest

_UTILS_PATH = (Path(__file__).resolve().parent.parent
               / "benchmarks" / "_bench_utils.py")


@pytest.fixture(scope="module")
def bench_utils():
    # benchmarks/ is deliberately not a package; load the helper module
    # by file path exactly the way the bench scripts resolve it.
    spec = importlib.util.spec_from_file_location("_bench_utils", _UTILS_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWriteRecord:
    def test_appends_in_order(self, bench_utils, tmp_path):
        path = tmp_path / "BENCH_test.json"
        for i in range(3):
            bench_utils.write_record({"benchmark": "a", "run": i}, path)
        history = bench_utils.load_history(path)
        assert [r["run"] for r in history] == [0, 1, 2]

    def test_keeps_newest_eight_per_key(self, bench_utils, tmp_path):
        path = tmp_path / "BENCH_test.json"
        for i in range(12):
            bench_utils.write_record({"benchmark": "a", "run": i}, path)
        history = bench_utils.load_history(path)
        assert len(history) == bench_utils.MAX_RECORDS_PER_BENCHMARK == 8
        assert [r["run"] for r in history] == list(range(4, 12))

    def test_trim_is_per_benchmark_key(self, bench_utils, tmp_path):
        path = tmp_path / "BENCH_test.json"
        for i in range(10):
            bench_utils.write_record({"benchmark": "a", "run": i}, path)
            bench_utils.write_record({"benchmark": "b", "run": i}, path)
        history = bench_utils.load_history(path)
        assert len(history) == 16
        # interleaved append order is preserved after trimming
        assert [(r["benchmark"], r["run"]) for r in history] == [
            (key, i) for i in range(2, 10) for key in ("a", "b")]

    def test_untagged_legacy_records_share_one_bucket(self, bench_utils,
                                                      tmp_path):
        path = tmp_path / "BENCH_test.json"
        for i in range(10):
            bench_utils.write_record({"run": i}, path)
        history = bench_utils.load_history(path)
        assert len(history) == 8
        assert [r["run"] for r in history] == list(range(2, 10))

    def test_legacy_single_record_file_is_wrapped(self, bench_utils,
                                                  tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text(json.dumps({"benchmark": "a", "run": 0}))
        assert bench_utils.load_history(path) == [{"benchmark": "a",
                                                   "run": 0}]
        bench_utils.write_record({"benchmark": "a", "run": 1}, path)
        assert [r["run"] for r in bench_utils.load_history(path)] == [0, 1]

    def test_missing_file_is_empty_history(self, bench_utils, tmp_path):
        assert bench_utils.load_history(tmp_path / "absent.json") == []
