"""Tests for the model-inversion attack machinery."""

import numpy as np
import pytest

from repro.attacks import (
    AttackConfig,
    InversionAttack,
    ReconstructionMetrics,
    best_single_net,
    brute_force_attack,
    evaluate_reconstruction,
    expected_attack_work,
    run_adaptive_attack,
    run_single_net_attacks,
)
from repro.attacks.evaluation import observe_victim_traffic
from repro.core import EnsemblerConfig, TrainingConfig
from repro.data import cifar10_like
from repro.defenses import fit_ensembler, fit_no_defense
from repro.models import ResNetConfig
from repro.utils.rng import new_rng

TINY_MODEL = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
TINY_TRAIN = TrainingConfig(epochs=2, batch_size=16, lr=0.05)
TINY_ATTACK = AttackConfig(
    shadow=TrainingConfig(epochs=2, batch_size=16, lr=2e-3, optimizer="adam"),
    decoder=TrainingConfig(epochs=2, batch_size=16, lr=3e-3, optimizer="adam"),
    decoder_width=16)


@pytest.fixture(scope="module")
def bundle():
    return cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4)


@pytest.fixture(scope="module")
def victim(bundle):
    return fit_no_defense(bundle, TINY_MODEL, training=TINY_TRAIN, rng=new_rng(0))


@pytest.fixture(scope="module")
def attack(bundle):
    return InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                           rng=new_rng(1))


class TestInversionAttack:
    def test_requires_bodies(self, attack):
        with pytest.raises(ValueError):
            attack.train_shadow([])

    def test_observe_traffic_requires_nchw(self, attack):
        with pytest.raises(ValueError):
            attack.observe_traffic(np.zeros((4, 8)))

    def test_artifacts_reconstruct_shape(self, victim, attack, bundle):
        artifacts = attack.attack_single(victim.bodies[0])
        probe = bundle.test.images[:4]
        recon = artifacts.reconstruct(victim.intermediate(probe))
        assert recon.shape == probe.shape
        assert recon.min() >= 0.0 and recon.max() <= 1.0

    def test_single_attack_name_carries_index(self, victim, attack):
        artifacts = attack.attack_single(victim.bodies[0], index=5)
        assert artifacts.name == "single[5]"
        assert artifacts.details["body_index"] == 5

    def test_bn_record_flags_restored(self, victim, attack):
        from repro import nn
        attack.attack_single(victim.bodies[0])
        for module in victim.bodies[0].modules():
            if isinstance(module, nn.BatchNorm2d):
                assert not module.record_batch_stats

    def test_shadow_mode_paper_uses_three_convs(self, bundle, victim):
        from repro import nn
        config = AttackConfig(shadow=TINY_ATTACK.shadow, decoder=TINY_ATTACK.decoder,
                              decoder_width=16, shadow_mode="paper")
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, config,
                                 rng=new_rng(2))
        shadow = attack.train_shadow([victim.bodies[0]])
        convs = [m for m in shadow.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 3

    def test_unknown_shadow_mode_rejected(self, bundle, victim):
        config = AttackConfig(shadow_mode="mystery")
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, config,
                                 rng=new_rng(2))
        with pytest.raises(ValueError):
            attack.train_shadow([victim.bodies[0]])


class TestEvaluation:
    def test_evaluate_reconstruction_fields(self, victim, attack, bundle):
        artifacts = attack.attack_single(victim.bodies[0])
        metrics = evaluate_reconstruction(victim, artifacts, bundle.test.images[:4])
        assert -1.0 <= metrics.ssim <= 1.0
        assert np.isfinite(metrics.psnr)

    def test_run_single_net_attacks_one_per_body(self, bundle):
        config = EnsemblerConfig(num_nets=2, num_active=1, sigma=0.1, lambda_reg=1.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        defense = fit_ensembler(bundle, TINY_MODEL, config=config, rng=new_rng(3))
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                                 rng=new_rng(4))
        results = run_single_net_attacks(defense, attack, bundle.test.images[:4],
                                         traffic_images=bundle.train.images[:16])
        assert len(results) == 2

    def test_adaptive_attack_runs(self, bundle):
        config = EnsemblerConfig(num_nets=2, num_active=1, sigma=0.1, lambda_reg=1.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        defense = fit_ensembler(bundle, TINY_MODEL, config=config, rng=new_rng(5))
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                                 rng=new_rng(6))
        metrics = run_adaptive_attack(defense, attack, bundle.test.images[:4],
                                      traffic_images=bundle.train.images[:16])
        assert metrics.attack_name == "adaptive"

    def test_best_single_net_reductions(self):
        results = [ReconstructionMetrics("a", 0.2, 10.0),
                   ReconstructionMetrics("b", 0.5, 8.0),
                   ReconstructionMetrics("c", 0.3, 12.0)]
        assert best_single_net(results, "ssim").attack_name == "b"
        assert best_single_net(results, "psnr").attack_name == "c"

    def test_best_single_net_validation(self):
        with pytest.raises(ValueError):
            best_single_net([], "ssim")
        with pytest.raises(ValueError):
            best_single_net([ReconstructionMetrics("a", 0.1, 1.0)], "mse")

    def test_stronger_than(self):
        strong = ReconstructionMetrics("s", 0.9, 30.0)
        weak = ReconstructionMetrics("w", 0.1, 10.0)
        assert strong.stronger_than(weak)
        assert not weak.stronger_than(strong)

    def test_observe_victim_traffic_sets_stats(self, victim, bundle):
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                                 rng=new_rng(7))
        observe_victim_traffic(victim, attack, bundle.train.images[:16])
        assert attack._observed_mean is not None
        assert attack._observed_gram is not None


class TestBruteForce:
    def test_expected_work_is_exponential(self):
        assert expected_attack_work(10) == 1023.0
        assert expected_attack_work(10, known_p=4) == 210.0

    def test_brute_force_enumerates_known_p(self, bundle):
        config = EnsemblerConfig(num_nets=3, num_active=2, sigma=0.1, lambda_reg=1.0,
                                 stage1=TINY_TRAIN, stage3=TINY_TRAIN)
        defense = fit_ensembler(bundle, TINY_MODEL, config=config, rng=new_rng(8))
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                                 rng=new_rng(9))
        outcome = brute_force_attack(defense, attack, bundle.test.images[:2], known_p=2)
        assert outcome.search_space == 3
        assert outcome.subsets_tried == 3
        subset, metrics = outcome.best("ssim")
        assert len(subset) == 2

    def test_brute_force_truncation(self, bundle, victim):
        attack = InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                                 rng=new_rng(10))
        outcome = brute_force_attack(victim, attack, bundle.test.images[:2],
                                     max_subsets=1)
        assert outcome.subsets_tried == 1
        assert outcome.search_space == 1  # single body: 2^1 - 1
