"""Tests for utilities: RNG management, configs, logging, serialization."""

import dataclasses
import logging

import numpy as np
import pytest

from repro import nn
from repro.core.selector import Selector
from repro.utils.config import FrozenConfig
from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import (
    RngMixin,
    default_rng,
    new_rng,
    seed_everything,
    spawn_many,
    spawn_rng,
)
from repro.utils.serialization import load_module, load_selector, save_module, save_selector


class TestRng:
    def test_seed_everything_resets_default(self):
        seed_everything(123)
        a = default_rng().integers(0, 1000)
        seed_everything(123)
        b = default_rng().integers(0, 1000)
        assert a == b

    def test_new_rng_with_seed_is_independent_of_default(self):
        seed_everything(0)
        a = new_rng(5).integers(0, 10**9)
        seed_everything(99)
        b = new_rng(5).integers(0, 10**9)
        assert a == b

    def test_new_rng_without_seed_derives_from_default(self):
        seed_everything(7)
        a = new_rng().integers(0, 10**9)
        seed_everything(7)
        b = new_rng().integers(0, 10**9)
        assert a == b

    def test_spawn_rng_streams_differ(self):
        parent = new_rng(0)
        a, b = spawn_rng(parent), spawn_rng(parent)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_spawn_many_count(self):
        assert len(spawn_many(new_rng(0), 5)) == 5

    def test_rng_mixin_lazy_creation(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        assert thing.rng is thing.rng  # cached after first access
        custom = new_rng(3)
        thing.rng = custom
        assert thing.rng is custom


class TestFrozenConfig:
    @dataclasses.dataclass(frozen=True)
    class Example(FrozenConfig):
        alpha: int = 1
        beta: str = "x"

    def test_to_dict(self):
        assert self.Example().to_dict() == {"alpha": 1, "beta": "x"}

    def test_replace_returns_copy(self):
        base = self.Example()
        other = base.replace(alpha=5)
        assert other.alpha == 5
        assert base.alpha == 1

    def test_from_dict_ignores_unknown(self):
        config = self.Example.from_dict({"alpha": 2, "gamma": "ignored"})
        assert config.alpha == 2


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging()
        root = logging.getLogger("repro")
        count = len([h for h in root.handlers if isinstance(h, logging.StreamHandler)])
        enable_console_logging()
        count_after = len([h for h in root.handlers if isinstance(h, logging.StreamHandler)])
        assert count == count_after


class TestSerialization:
    def test_module_roundtrip(self, tmp_path):
        from repro.utils.rng import new_rng
        a = nn.Sequential(nn.Conv2d(3, 4, 3, rng=new_rng(1)), nn.BatchNorm2d(4))
        b = nn.Sequential(nn.Conv2d(3, 4, 3, rng=new_rng(2)), nn.BatchNorm2d(4))
        path = tmp_path / "model.npz"
        save_module(a, path)
        load_module(b, path)
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_module_roundtrip_includes_buffers(self, tmp_path):
        bn_a = nn.BatchNorm2d(2)
        bn_a.running_mean[...] = 3.0
        path = tmp_path / "bn.npz"
        save_module(bn_a, path)
        bn_b = nn.BatchNorm2d(2)
        load_module(bn_b, path)
        np.testing.assert_array_equal(bn_b.running_mean, [3.0, 3.0])

    def test_load_into_mismatched_module_fails(self, tmp_path):
        from repro.utils.rng import new_rng
        path = tmp_path / "x.npz"
        save_module(nn.Linear(2, 2, rng=new_rng(0)), path)
        # Same parameter names but wrong shapes -> ValueError; a structurally
        # different module (extra/missing names) -> KeyError.
        with pytest.raises(ValueError):
            load_module(nn.Conv2d(1, 1, 1, rng=new_rng(0)), path)
        with pytest.raises(KeyError):
            load_module(nn.BatchNorm2d(2), path)

    def test_selector_roundtrip(self, tmp_path):
        path = tmp_path / "selector.npz"
        selector = Selector(10, (1, 4, 7))
        save_selector(selector, path)
        loaded = load_selector(path)
        assert loaded.num_nets == 10
        assert loaded.indices == (1, 4, 7)
