"""Tests for fused multi-net training: stacked optimisers + run_stacked_sgd.

The contract: ``run_stacked_sgd`` over E stacked members with per-member RNG
streams matches E independent ``run_sgd`` runs on the same streams — same
final parameters, same loss histories — for both optimisers, and the fused
stage-1 path of ``EnsemblerTrainer`` matches the looped backend exactly.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.training import (
    EnsemblerConfig,
    EnsemblerTrainer,
    TrainingConfig,
    run_sgd,
    run_stacked_sgd,
)
from repro.data.datasets import ArrayDataset
from repro.data.synthetic import cifar10_like
from repro.models.resnet import ResNetConfig
from repro.nn import functional as F
from repro.nn.batched import batched_cross_entropy, stack_modules
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

rng = np.random.default_rng(5)


def tiny_dataset(n: int = 40) -> ArrayDataset:
    images = rng.random((n, 3, 6, 6)).astype(np.float32)
    labels = rng.integers(0, 4, n)
    return ArrayDataset(images, labels)


def make_members(count: int, seed: int = 100) -> list[nn.Module]:
    return [nn.Sequential(nn.Flatten(), nn.Linear(3 * 6 * 6, 4, rng=new_rng(seed + i)))
            for i in range(count)]


class TestStackedOptimizers:
    def test_rejects_wrong_leading_axis(self):
        params = [nn.Parameter(np.zeros((3, 4), dtype=np.float32))]
        with pytest.raises(ValueError):
            nn.StackedSGD(params, num_stacked=2, lr=0.1)
        with pytest.raises(ValueError):
            nn.StackedAdam(params, num_stacked=2)

    def test_member_state_carries_ensemble_axis(self):
        params = [nn.Parameter(np.zeros((3, 4, 2), dtype=np.float32))]
        sgd = nn.StackedSGD(params, num_stacked=3, lr=0.1, momentum=0.9)
        assert sgd.member_state(1)[0].shape == (4, 2)
        adam = nn.StackedAdam(params, num_stacked=3)
        m, v = adam.member_state(2)[0]
        assert m.shape == (4, 2) and v.shape == (4, 2)

    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_stacked_step_equals_member_steps(self, optimizer):
        """One elementwise stacked step == E independent optimiser steps."""
        e = 3
        data = rng.random((e, 4, 2)).astype(np.float32)
        grads = rng.random((e, 4, 2)).astype(np.float32)
        stacked = nn.Parameter(data.copy())
        stacked.grad = grads.copy()
        config = TrainingConfig(lr=0.05, momentum=0.9, optimizer=optimizer)
        opt = config.build_stacked_optimizer([stacked], e)
        opt.step()
        for i in range(e):
            member = nn.Parameter(data[i].copy())
            member.grad = grads[i].copy()
            config.build_optimizer([member]).step()
            np.testing.assert_allclose(stacked.data[i], member.data, atol=1e-6)


class TestRunStackedSgd:
    @pytest.mark.parametrize("optimizer,lr", [("sgd", 0.05), ("adam", 1e-3)])
    def test_matches_independent_runs(self, optimizer, lr):
        """Fused E-member training == E looped runs on the same RNG streams."""
        config = TrainingConfig(epochs=3, batch_size=8, lr=lr, optimizer=optimizer)
        dataset = tiny_dataset()
        k = 3

        looped = make_members(k)
        looped_histories = []
        for i, member in enumerate(looped):
            def loss_fn(images, labels, member=member):
                return F.cross_entropy(member(Tensor(images)), labels)

            looped_histories.append(run_sgd(member.parameters(), loss_fn, dataset,
                                            config, new_rng(500 + i)))

        fused = make_members(k)
        stacked = stack_modules(fused)

        def stacked_loss(images, labels):
            return batched_cross_entropy(stacked(Tensor(images)), labels)

        fused_histories = run_stacked_sgd(stacked.parameters(), stacked_loss,
                                          dataset, config,
                                          [new_rng(500 + i) for i in range(k)])
        stacked.unstack_to(fused)

        for ref, got in zip(looped, fused):
            for p_ref, p_got in zip(ref.parameters(), got.parameters()):
                np.testing.assert_allclose(p_got.data, p_ref.data, atol=1e-5)
        np.testing.assert_allclose(np.array(fused_histories),
                                   np.array(looped_histories), atol=1e-5)

    def test_requires_member_rngs(self):
        stacked = stack_modules(make_members(2))
        with pytest.raises(ValueError):
            run_stacked_sgd(stacked.parameters(), lambda i, l: None,
                            tiny_dataset(), TrainingConfig(), [])

    def test_rejects_scalar_loss(self):
        stacked = stack_modules(make_members(2))

        def bad_loss(images, labels):
            return batched_cross_entropy(stacked(Tensor(images)), labels).sum()

        with pytest.raises(ValueError):
            run_stacked_sgd(stacked.parameters(), bad_loss, tiny_dataset(),
                            TrainingConfig(epochs=1), [new_rng(0), new_rng(1)])


class TestFusedStage1:
    def test_backends_agree(self):
        """Fused multi-net stage-1 == looped stage-1 on identical streams."""
        bundle = cifar10_like(size=8, train_per_class=4, test_per_class=2,
                              num_classes=4, rng=new_rng(1))
        model_config = ResNetConfig(num_classes=4, stem_channels=8,
                                    stage_channels=(8, 16), blocks_per_stage=(1, 1))
        train = TrainingConfig(epochs=2, batch_size=8, lr=0.05)
        states = {}
        histories = {}
        for backend in ("looped", "batched"):
            config = EnsemblerConfig(num_nets=3, num_active=2, stage1=train,
                                     stage3=train, backend=backend)
            trainer = EnsemblerTrainer(model_config, 8, config, rng=new_rng(42))
            nets, _, hist = trainer.train_stage1(bundle.train)
            states[backend] = [net.state_dict() for net in nets]
            histories[backend] = hist
        np.testing.assert_allclose(np.array(histories["batched"]),
                                   np.array(histories["looped"]), atol=1e-4)
        for looped_net, fused_net in zip(states["looped"], states["batched"]):
            for name, value in looped_net.items():
                np.testing.assert_allclose(fused_net[name], value, atol=1e-4,
                                           err_msg=f"stage-1 divergence in {name}")

    def test_unstackable_noise_falls_back(self):
        """A dropout noise factory cannot stack; stage 1 must still train."""
        bundle = cifar10_like(size=8, train_per_class=4, test_per_class=2,
                              num_classes=4, rng=new_rng(2))
        model_config = ResNetConfig(num_classes=4, stem_channels=8,
                                    stage_channels=(8, 16), blocks_per_stage=(1, 1))
        train = TrainingConfig(epochs=1, batch_size=8, lr=0.05)
        config = EnsemblerConfig(num_nets=2, num_active=1, stage1=train,
                                 stage3=train, backend="batched")
        trainer = EnsemblerTrainer(
            model_config, 8, config, rng=new_rng(3),
            noise_factory=lambda shape, noise_rng: nn.Dropout(0.1, rng=noise_rng))
        nets, noises, hist = trainer.train_stage1(bundle.train)
        assert len(nets) == 2 and len(hist) == 2
        assert all(len(h) == 1 for h in hist)
