"""Tests for the fused multi-attack engine (train_shadows / train_decoders /
attack_subsets) and its backend equivalence.

The contract: ``backend="fused"`` consumes the same RNG streams as
``backend="looped"`` and produces the same per-subset artifacts and
reconstruction metrics up to float reassociation in the batched kernels
(the acceptance bar is 1e-4 on SSIM/PSNR).
"""

import numpy as np
import pytest

from repro import nn
from repro.attacks import AttackConfig, InversionAttack, brute_force_attack
from repro.attacks.evaluation import run_single_net_attacks
from repro.core import EnsemblerConfig, TrainingConfig
from repro.data import cifar10_like
from repro.defenses import fit_ensembler
from repro.models import ResNetConfig
from repro.utils.rng import new_rng

TINY_MODEL = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
TINY_TRAIN = TrainingConfig(epochs=2, batch_size=16, lr=0.05)
TINY_ATTACK = AttackConfig(
    shadow=TrainingConfig(epochs=2, batch_size=16, lr=2e-3, optimizer="adam"),
    decoder=TrainingConfig(epochs=2, batch_size=16, lr=3e-3, optimizer="adam"),
    decoder_width=16)


@pytest.fixture(scope="module")
def bundle():
    return cifar10_like(size=16, train_per_class=8, test_per_class=4, num_classes=4)


@pytest.fixture(scope="module")
def defense(bundle):
    config = EnsemblerConfig(num_nets=3, num_active=2, sigma=0.1, lambda_reg=1.0,
                             stage1=TINY_TRAIN, stage3=TINY_TRAIN)
    return fit_ensembler(bundle, TINY_MODEL, config=config, rng=new_rng(8))


def make_attack(bundle, seed=9):
    return InversionAttack(TINY_MODEL, bundle.image_shape, bundle.train, TINY_ATTACK,
                           rng=new_rng(seed))


class TestAttackSubsets:
    def test_names_and_details_default(self, bundle, defense):
        attack = make_attack(bundle)
        artifacts = attack.attack_subsets(defense.bodies, [(0,), (2,)])
        assert [a.name for a in artifacts] == ["subset(0,)", "subset(2,)"]
        assert artifacts[1].details == {"subset": (2,)}

    def test_validates_backend_and_chunk(self, bundle, defense):
        attack = make_attack(bundle)
        with pytest.raises(ValueError):
            attack.attack_subsets(defense.bodies, [(0,)], backend="vectorized")
        with pytest.raises(ValueError):
            attack.attack_subsets(defense.bodies, [(0,)], chunk_size=0)

    def test_train_shadows_rejects_mixed_sizes(self, bundle, defense):
        attack = make_attack(bundle)
        with pytest.raises(ValueError):
            attack.train_shadows(defense.bodies, [(0,), (0, 1)])
        with pytest.raises(ValueError):
            attack.train_shadows(defense.bodies, [])
        with pytest.raises(ValueError):
            attack.train_shadows(defense.bodies, [(7,)])

    def test_mixed_size_enumeration_chunks(self, bundle, defense):
        """attack_subsets splits a mixed-size enumeration into size runs."""
        attack = make_attack(bundle)
        subsets = [(0,), (1,), (0, 1), (1, 2)]
        artifacts = attack.attack_subsets(defense.bodies, subsets, chunk_size=2)
        assert [a.details["subset"] for a in artifacts] == subsets

    def test_backend_parity_on_artifacts(self, bundle, defense):
        """Fused and looped backends agree member-wise on the decoders'
        reconstructions, not just on aggregate metrics."""
        probe = defense.intermediate(bundle.test.images[:4])
        recons = {}
        for backend in ("looped", "fused"):
            attack = make_attack(bundle)
            artifacts = attack.attack_subsets(defense.bodies, [(0, 1), (1, 2)],
                                              backend=backend)
            recons[backend] = [a.reconstruct(probe) for a in artifacts]
        for looped_recon, fused_recon in zip(recons["looped"], recons["fused"]):
            np.testing.assert_allclose(fused_recon, looped_recon, atol=1e-4)

    def test_unstackable_bodies_fall_back_to_loop(self, bundle, defense):
        """Heterogeneous bodies cannot stack; the fused backend must still
        produce the looped result (identical RNG consumption)."""
        hetero = list(defense.bodies[:2]) + [nn.Identity()]
        results = {}
        for backend in ("looped", "fused"):
            attack = make_attack(bundle)
            artifacts = attack.attack_subsets(hetero, [(0,), (1,)], backend=backend)
            results[backend] = artifacts
        probe = defense.intermediate(bundle.test.images[:2])
        for ref, got in zip(results["looped"], results["fused"]):
            np.testing.assert_allclose(got.reconstruct(probe),
                                       ref.reconstruct(probe), atol=0)

    def test_chunk_size_does_not_change_results(self, bundle, defense):
        probe = defense.intermediate(bundle.test.images[:2])
        recons = {}
        for chunk_size in (1, 3):
            attack = make_attack(bundle)
            artifacts = attack.attack_subsets(defense.bodies, [(0, 1), (0, 2), (1, 2)],
                                              chunk_size=chunk_size)
            recons[chunk_size] = [a.reconstruct(probe) for a in artifacts]
        for small, large in zip(recons[1], recons[3]):
            np.testing.assert_allclose(large, small, atol=1e-4)


class TestSingleNetSweep:
    def test_fused_matches_looped_run(self, bundle, defense):
        results = {}
        for backend in ("looped", "fused"):
            attack = make_attack(bundle, seed=11)
            results[backend] = run_single_net_attacks(
                defense, attack, bundle.test.images[:4],
                traffic_images=bundle.train.images[:16], backend=backend)
        assert [r.attack_name for r in results["fused"]] == [
            "single[0]", "single[1]", "single[2]"]
        for ref, got in zip(results["looped"], results["fused"]):
            assert got.attack_name == ref.attack_name
            assert abs(got.ssim - ref.ssim) <= 1e-4
            assert abs(got.psnr - ref.psnr) <= 1e-4


class TestBruteForceBackends:
    def test_end_to_end_equivalence(self, bundle, defense):
        """Acceptance bar: per-subset metrics match across backends ≤ 1e-4."""
        probe = bundle.test.images[:2]
        outcomes = {}
        for backend in ("looped", "fused"):
            attack = make_attack(bundle)
            outcomes[backend] = brute_force_attack(defense, attack, probe,
                                                   known_p=2, backend=backend)
        assert outcomes["fused"].search_space == outcomes["looped"].search_space
        assert outcomes["fused"].subsets_tried == 3
        for (ref_subset, ref_metrics), (subset, metrics) in zip(
                outcomes["looped"].per_subset, outcomes["fused"].per_subset):
            assert subset == ref_subset
            assert abs(metrics.ssim - ref_metrics.ssim) <= 1e-4
            assert abs(metrics.psnr - ref_metrics.psnr) <= 1e-4
        assert outcomes["fused"].best("ssim")[0] == outcomes["looped"].best("ssim")[0]

    def test_full_enumeration_mixes_sizes(self, bundle, defense):
        """known_p=None enumerates sizes 1..N; chunking must respect order."""
        attack = make_attack(bundle)
        outcome = brute_force_attack(defense, attack, bundle.test.images[:2],
                                     chunk_size=2)
        assert outcome.subsets_tried == 7  # 2^3 - 1
        assert [s for s, _ in outcome.per_subset] == [
            (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]

    def test_truncation_respected(self, bundle, defense):
        attack = make_attack(bundle)
        outcome = brute_force_attack(defense, attack, bundle.test.images[:2],
                                     max_subsets=2)
        assert outcome.subsets_tried == 2
        assert outcome.search_space == 7
