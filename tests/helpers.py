"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def numerical_grad(fn, tensor: Tensor, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``fn() -> scalar Tensor`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_gradients_close(fn, tensors: list[Tensor], rtol: float = 1e-4, atol: float = 1e-6):
    """Check autograd gradients of ``fn`` against finite differences.

    ``fn`` must be a zero-argument callable returning a scalar Tensor built
    from ``tensors`` (all float64, requires_grad=True).
    """
    for t in tensors:
        t.grad = None
        assert t.dtype == np.float64, "gradient checks must run in float64"
    out = fn()
    out.backward()
    for t in tensors:
        expected = numerical_grad(fn, t)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=atol)


def rand_tensor(rng: np.random.Generator, *shape: int, scale: float = 1.0) -> Tensor:
    """Float64 random tensor with gradients enabled (for gradcheck)."""
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True, dtype=np.float64)
