"""Regression tests for the request lifecycle: the ServingError contract,
deadline expiry, cancellation under every scheduler, and conservation."""

import numpy as np
import pytest

from repro import nn
from repro.ci import Server
from repro.ci.pipeline import Client
from repro.models.resnet import ResNet, ResNetConfig
from repro.serving import (
    TERMINAL_STATES,
    Arrival,
    BackpressureError,
    DeadlineExceededError,
    DeadlineScheduler,
    FaultInjector,
    FaultPlan,
    InferenceService,
    ProtocolError,
    RateLimit,
    RateLimitedError,
    RequestCancelledError,
    RequestState,
    ServingError,
    TickCost,
    TickFailedError,
    UnknownSessionError,
    UploadRequest,
    bursty_trace,
    simulate,
)
from repro.utils.rng import new_rng

rng = np.random.default_rng(41)

FEATURES = rng.random((1, 8, 8, 8)).astype(np.float32)

ALL_SCHEDULERS = ["fifo", "fair", "weighted", "deadline"]


def tiny_bodies(num_nets=2):
    config = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNet(config, rng=new_rng(i)).body for i in range(num_nets)]
    for body in bodies:
        body.eval()
    return bodies


def make_service(scheduler="fifo", num_sessions=2, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_queue", 8)
    service = InferenceService(Server(tiny_bodies()), scheduler=scheduler,
                               **kwargs)
    sessions = [service.adopt_session(Client(nn.Identity(), nn.Identity()))
                for _ in range(num_sessions)]
    return service, sessions


class TestErrorHierarchy:
    def test_every_serving_exception_derives_from_serving_error(self):
        for exc_type in (BackpressureError, RateLimitedError, ProtocolError,
                         UnknownSessionError, DeadlineExceededError,
                         TickFailedError, RequestCancelledError):
            assert issubclass(exc_type, ServingError)

    def test_compat_aliases(self):
        # Pre-hierarchy callers caught ValueError / KeyError; both still work.
        assert issubclass(ProtocolError, ValueError)
        assert issubclass(UnknownSessionError, KeyError)

    def test_submit_never_raises_outside_serving_error(self):
        """The safety-net contract: whatever goes wrong at submit — full
        queues, empty token buckets, closed sessions, mangled wires — the
        client's single ``except ServingError`` must catch it."""
        faults = FaultInjector(FaultPlan(corrupt_rate=0.3, truncate_rate=0.3,
                                         drop_rate=0.2), seed=11)
        service, sessions = make_service(num_sessions=3, max_queue=2,
                                         faults=faults,
                                         rate_limit=RateLimit(rate_per_s=50.0,
                                                              burst=2.0))
        closed = sessions[2]
        service.close_session(closed)
        raised: list[BaseException] = []
        for i in range(120):
            session = (closed, *sessions[:2])[i % 3]
            try:
                session.submit_features(FEATURES)
            except BaseException as exc:  # noqa: BLE001 — the point of the test
                raised.append(exc)
            if i % 7 == 0:
                service.tick()
                service.advance_clock(service.now + 0.01)
        assert raised, "fuzz loop must actually exercise failures"
        for exc in raised:
            assert isinstance(exc, ServingError), (
                f"submit leaked a non-ServingError: {type(exc).__name__}: {exc}")

    def test_unknown_session_is_typed(self):
        service, _ = make_service()
        with pytest.raises(UnknownSessionError):
            service.submit(UploadRequest(99, 0, FEATURES))


class TestDeadlineExpiry:
    def test_expired_requests_shed_and_typed(self):
        service, (session, _) = make_service(shed_expired=True)
        request_id = session.submit_features(FEATURES, deadline=0.01)
        service.advance_clock(0.02)  # the SLO passes before any tick
        assert service.tick() == []
        assert service.stats.expired_requests == 1
        assert session.request_state(request_id) is RequestState.EXPIRED
        with pytest.raises(DeadlineExceededError):
            session.result(request_id)

    def test_implicit_deadlines_never_expire(self):
        # The deadline scheduler assigns target-latency deadlines itself;
        # only *explicit* per-request SLOs may shed work.
        scheduler = DeadlineScheduler(target_latency_s=0.001)
        service, (session, _) = make_service(scheduler, shed_expired=True)
        request_id = session.submit_features(FEATURES)  # no explicit deadline
        service.advance_clock(10.0)
        responses = service.tick()
        assert len(responses) == 1
        assert service.stats.expired_requests == 0
        assert session.request_state(request_id) is RequestState.COMPLETED

    def test_shedding_off_by_default(self):
        service, (session, _) = make_service()  # shed_expired defaults False
        session.submit_features(FEATURES, deadline=0.01)
        service.advance_clock(1.0)
        assert len(service.tick()) == 1  # served late, not shed
        assert service.stats.expired_requests == 0


class TestCancellation:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_close_session_cancels_queued_requests(self, scheduler):
        service, sessions = make_service(scheduler, num_sessions=2)
        victim, survivor = sessions
        victim_ids = [victim.submit_features(FEATURES) for _ in range(3)]
        survivor_id = survivor.submit_features(FEATURES)
        service.close_session(victim)
        assert service.stats.cancelled_requests == 3
        for request_id in victim_ids:
            assert victim.request_state(request_id) is RequestState.CANCELLED
            with pytest.raises(RequestCancelledError):
                victim.result(request_id)
        # The surviving tenant's work is untouched and still serves.
        service.run_until_idle()
        assert survivor.request_state(survivor_id) is RequestState.COMPLETED

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_cancelled_exactly_once(self, scheduler):
        service, sessions = make_service(scheduler, num_sessions=1)
        session = sessions[0]
        session.submit_features(FEATURES)
        service.close_session(session)
        service.close_session(session)  # idempotent: nothing left to cancel
        assert service.stats.cancelled_requests == 1
        states = list(session.request_states().values())
        assert states == [RequestState.CANCELLED]

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_mid_burst_disconnect_in_simulate(self, scheduler):
        if scheduler == "deadline":
            scheduler = DeadlineScheduler(pass_overhead_s=0.010,
                                          sample_cost_s=0.001)
        service, sessions = make_service(scheduler, num_sessions=3,
                                         max_queue=64)
        trace = bursty_trace(num_sessions=3, bursts=2, burst_size=6,
                             burst_gap_s=0.1)
        # Session 0 disconnects in the middle of the first burst: the close
        # lands at the same instant as the burst but after its submissions
        # (stable sort keeps appended events last), before any tick runs.
        trace.append(Arrival(time=0.0, session_index=0, close_session=True))
        cost = TickCost(pass_overhead_s=0.010, per_sample_s=0.001)
        report = simulate(service, sessions, trace, cost,
                          default_features=FEATURES)
        assert report.conservation_ok
        assert report.submitted == 12
        assert sum(report.terminal_counts.values()) == 12
        cancelled = report.terminal_counts[RequestState.CANCELLED.value]
        assert cancelled >= 1
        assert service.stats.cancelled_requests == cancelled
        # Burst 2's session-0 arrivals hit a closed session: REJECTED-free
        # but FAILED client-side by the conservation sweep (UnknownSession
        # is not retryable) — never silently dropped.
        assert report.served + cancelled < 12


class TestConservation:
    def test_terminal_states_cover_every_submission(self):
        service, sessions = make_service(num_sessions=2, max_queue=4)
        trace = [Arrival(time=0.0, session_index=i % 2) for i in range(10)]
        report = simulate(service, sessions, trace, TickCost(),
                          default_features=FEATURES)
        assert report.conservation_ok
        assert report.submitted == 10
        assert set(report.terminal_counts) == {s.value for s in TERMINAL_STATES}
        assert report.terminal_counts["completed"] == report.served
        assert report.terminal_counts["rejected"] == report.rejected == 6

    def test_abandoned_drops_resolve_failed(self):
        # Every frame is dropped and there is no retry policy: the sweep
        # must resolve the abandoned in-flight requests as FAILED.
        faults = FaultInjector(FaultPlan(drop_rate=1.0), seed=3)
        service, sessions = make_service(num_sessions=1, faults=faults)
        trace = [Arrival(time=0.0, session_index=0) for _ in range(4)]
        report = simulate(service, sessions, trace, TickCost(),
                          default_features=FEATURES)
        assert report.served == 0
        assert report.conservation_ok
        assert report.terminal_counts["failed"] == 4

    def test_final_state_wins_for_retried_requests(self):
        # THROTTLED on the first attempt, COMPLETED on the retry: the
        # request counts exactly once, as its final state.
        service, (session,) = make_service(
            num_sessions=1, rate_limit=RateLimit(rate_per_s=10.0, burst=1.0))
        first = session.submit_features(FEATURES)
        reserved = session.reserve_request_id()
        with pytest.raises(RateLimitedError):
            session.submit_features(FEATURES, request_id=reserved)
        assert session.request_state(reserved) is RequestState.THROTTLED
        service.advance_clock(1.0)  # the bucket refills
        session.submit_features(FEATURES, request_id=reserved)
        service.run_until_idle()
        assert session.request_state(first) is RequestState.COMPLETED
        assert session.request_state(reserved) is RequestState.COMPLETED
        assert service.stats.throttled_requests == 1  # the attempt, counted

    def test_states_terminal_flags(self):
        assert not RequestState.QUEUED.terminal
        assert all(s.terminal for s in TERMINAL_STATES)
        assert RequestState.REJECTED.retryable
        assert RequestState.EXPIRED.retryable
        assert not RequestState.CANCELLED.retryable
        assert not RequestState.COMPLETED.retryable
