"""Unit tests for the autograd Tensor: arithmetic, reductions, shape ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor, concat, no_grad, stack, where
from tests.helpers import assert_gradients_close, rand_tensor

rng = np.random.default_rng(1234)


class TestTensorBasics:
    def test_default_dtype_is_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_explicit_dtype_preserved(self):
        t = Tensor([1.0, 2.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_breaks_graph(self):
        a = rand_tensor(rng, 3)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_shape_mismatch_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.ones(3))

    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 3
        assert not b.requires_grad

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True, dtype=np.float64)
        (a * 3).sum().backward()
        (a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_add_grad(self):
        a, b = rand_tensor(rng, 3, 4), rand_tensor(rng, 3, 4)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_sub_grad(self):
        a, b = rand_tensor(rng, 2, 3), rand_tensor(rng, 2, 3)
        assert_gradients_close(lambda: (a - b * 2).sum(), [a, b])

    def test_rsub(self):
        a = Tensor([1.0])
        np.testing.assert_allclose((5.0 - a).data, [4.0])

    def test_mul_grad(self):
        a, b = rand_tensor(rng, 4), rand_tensor(rng, 4)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self):
        a = rand_tensor(rng, 5)
        b = Tensor(rng.uniform(0.5, 2.0, 5), requires_grad=True, dtype=np.float64)
        assert_gradients_close(lambda: (a / b).sum(), [a, b])

    def test_broadcast_add_grad(self):
        a = rand_tensor(rng, 4, 3)
        b = rand_tensor(rng, 3)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_broadcast_mul_keepdims_grad(self):
        a = rand_tensor(rng, 2, 3, 4)
        b = rand_tensor(rng, 2, 1, 4)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_neg_grad(self):
        a = rand_tensor(rng, 3)
        assert_gradients_close(lambda: (-a).sum(), [a])

    def test_pow_grad(self):
        a = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True, dtype=np.float64)
        assert_gradients_close(lambda: (a**3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d_grad(self):
        a, b = rand_tensor(rng, 3, 4), rand_tensor(rng, 4, 5)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched_grad(self):
        a, b = rand_tensor(rng, 2, 3, 4), rand_tensor(rng, 2, 4, 5)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_values(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = Tensor(a, dtype=np.float64) @ Tensor(b, dtype=np.float64)
        np.testing.assert_allclose(out.data, a @ b)

    def test_comparison_returns_ndarray(self):
        mask = Tensor([1.0, -1.0]) > 0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [True, False])


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_grad(self, name):
        a = rand_tensor(rng, 3, 3)
        assert_gradients_close(lambda: getattr(a, name)().sum(), [a])

    def test_log_sqrt_grad_positive_domain(self):
        a = Tensor(rng.uniform(0.5, 3.0, (3, 3)), requires_grad=True, dtype=np.float64)
        assert_gradients_close(lambda: a.log().sum(), [a])
        assert_gradients_close(lambda: a.sqrt().sum(), [a])

    def test_relu_values(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_clip_grad_masks_out_of_range(self):
        a = Tensor([-2.0, 0.0, 2.0], requires_grad=True, dtype=np.float64)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_grad(self):
        a = rand_tensor(rng, 3, 4, 2)
        assert_gradients_close(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_keepdims_shape(self):
        a = Tensor(np.ones((2, 3)))
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_grad(self):
        a = rand_tensor(rng, 4, 5)
        assert_gradients_close(lambda: a.mean(), [a])

    def test_mean_axis_tuple_grad(self):
        a = rand_tensor(rng, 2, 3, 4)
        assert_gradients_close(lambda: a.mean(axis=(0, 2)).sum(), [a])

    def test_var_matches_numpy(self):
        data = rng.normal(size=(4, 6))
        t = Tensor(data, dtype=np.float64)
        np.testing.assert_allclose(t.var(axis=1).data, data.var(axis=1), rtol=1e-6)

    def test_max_grad_unique(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]), requires_grad=True,
                   dtype=np.float64)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_grad_splits_ties(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True, dtype=np.float64)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_min_matches_numpy(self):
        data = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(data, dtype=np.float64).min(axis=0).data,
                                   data.min(axis=0))


class TestShapeOps:
    def test_reshape_grad(self):
        a = rand_tensor(rng, 2, 6)
        assert_gradients_close(lambda: (a.reshape(3, 4) * 2).sum(), [a])

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten().shape == (2, 12)
        assert a.flatten(start_dim=0).shape == (24,)

    def test_transpose_grad(self):
        a = rand_tensor(rng, 2, 3, 4)
        assert_gradients_close(lambda: a.transpose(2, 0, 1).sum(), [a])

    def test_transpose_default_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)
        assert a.T.shape == (4, 3, 2)

    def test_getitem_slice_grad(self):
        a = rand_tensor(rng, 4, 4)
        assert_gradients_close(lambda: a[1:3, ::2].sum(), [a])

    def test_getitem_fancy_index_accumulates_duplicates(self):
        a = Tensor(np.zeros(3), requires_grad=True, dtype=np.float64)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])

    def test_pad_grad(self):
        a = rand_tensor(rng, 2, 3)
        assert_gradients_close(lambda: a.pad(((1, 1), (0, 2))).sum(), [a])

    def test_pad_values(self):
        a = Tensor(np.ones((1, 1)))
        out = a.pad(((1, 0), (0, 1)))
        np.testing.assert_allclose(out.data, [[0, 0], [1, 0]])


class TestMultiInput:
    def test_concat_values_and_grad(self):
        a, b = rand_tensor(rng, 2, 3), rand_tensor(rng, 2, 2)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        assert_gradients_close(lambda: (concat([a, b], axis=1) * 2).sum(), [a, b])

    def test_stack_grad(self):
        a, b = rand_tensor(rng, 3), rand_tensor(rng, 3)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        assert_gradients_close(lambda: stack([a, b], axis=1).sum(), [a, b])

    def test_where_grad_routing(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        b = Tensor(np.zeros(3), requires_grad=True, dtype=np.float64)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])
        np.testing.assert_allclose(b.grad, [0, 1, 0])


class TestGraph:
    def test_diamond_graph_grad(self):
        # d = (a*b) + (a+b): gradient of a is b + 1.
        a = Tensor([2.0], requires_grad=True, dtype=np.float64)
        b = Tensor([3.0], requires_grad=True, dtype=np.float64)
        ((a * b) + (a + b)).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_reused_tensor_accumulates(self):
        a = Tensor([1.5], requires_grad=True, dtype=np.float64)
        (a * a * a).sum().backward()  # d/da a^3 = 3a^2
        np.testing.assert_allclose(a.grad, [3 * 1.5**2])

    def test_deep_chain_does_not_overflow(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 0.001
        x.sum().backward()  # iterative topo sort: no RecursionError
        np.testing.assert_allclose(a.grad, [1.0])


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 2**16),
)
def test_property_add_mul_grads(shape, seed):
    """For random shapes/values, autograd matches finite differences."""
    local = np.random.default_rng(seed)
    a = Tensor(local.normal(size=shape), requires_grad=True, dtype=np.float64)
    b = Tensor(local.normal(size=shape), requires_grad=True, dtype=np.float64)
    assert_gradients_close(lambda: (a * b + a).mean(), [a, b])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_sum_of_parts_equals_whole(seed):
    """Splitting a tensor and summing parts equals summing the whole."""
    local = np.random.default_rng(seed)
    data = local.normal(size=(6, 3))
    t = Tensor(data, dtype=np.float64)
    whole = t.sum().item()
    parts = t[:3].sum().item() + t[3:].sum().item()
    assert whole == pytest.approx(parts, rel=1e-9)
