"""Pytest configuration: registers the ``slow`` marker used by the heavier
integration tests (full table regenerations at the tiny preset)."""


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: heavier end-to-end experiment tests")
