"""Tests for the replicated serving tier: ring, detector, failover."""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.ci import Server
from repro.ci.pipeline import Client
from repro.models.resnet import ResNet, ResNetConfig
from repro.serving import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    FleetPolicy,
    HashRing,
    InferenceService,
    OverloadPolicy,
    ReplicaFault,
    ReplicaHealth,
    RequestState,
    RetryPolicy,
    ServiceFleet,
    ServiceStats,
    Session,
    TickCost,
    bursty_trace,
    simulate_fleet,
)
from repro.serving.faults import (
    REPLICA_CRASH,
    REPLICA_HANG,
    REPLICA_PARTITION,
    REPLICA_SLOW,
)
from repro.serving.overload import (
    LEVEL_NARROW_CODEC,
    LEVEL_SHRINK_ENSEMBLE,
    OverloadController,
)
from repro.serving.service import _LEVEL_STATS
from repro.utils.rng import new_rng

rng = np.random.default_rng(41)

FEATURES = rng.random((1, 8, 8, 8)).astype(np.float32)

#: Fast-converging detector policy so failover tests stay cheap.
POLICY = FleetPolicy(heartbeat_interval_s=0.01, suspect_after_s=0.025,
                     down_after_s=0.05, checkpoint_interval_s=0.01)


def tiny_bodies(num_nets=2):
    config = ResNetConfig(num_classes=4, stem_channels=8, stage_channels=(8, 16),
                          blocks_per_stage=(1, 1), use_maxpool=True)
    bodies = [ResNet(config, rng=new_rng(i)).body for i in range(num_nets)]
    for body in bodies:
        body.eval()
    return bodies


def make_fleet(num_replicas=3, num_sessions=6, policy=POLICY, plan=None,
               **service_kwargs):
    bodies = tiny_bodies()
    replicas = [InferenceService(Server(bodies), max_batch=4, max_queue=32,
                                 **service_kwargs)
                for _ in range(num_replicas)]
    faults = FaultInjector(plan if plan is not None else FaultPlan(), seed=3)
    fleet = ServiceFleet(replicas, policy=policy, faults=faults)
    sessions = [fleet.adopt_session(Client(nn.Identity(), nn.Identity()))
                for _ in range(num_sessions)]
    return fleet, sessions


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(vnodes=32), HashRing(vnodes=32)
        for ring in (a, b):
            for rid in range(4):
                ring.add(rid)
        assert [a.owner(s) for s in range(200)] == [b.owner(s) for s in range(200)]

    def test_every_replica_owns_sessions(self):
        ring = HashRing(vnodes=64)
        for rid in range(4):
            ring.add(rid)
        owners = {ring.owner(s) for s in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_removal_moves_only_the_dead_replicas_sessions(self):
        ring = HashRing(vnodes=64)
        for rid in range(4):
            ring.add(rid)
        before = {s: ring.owner(s) for s in range(300)}
        ring.remove(2)
        after = {s: ring.owner(s) for s in range(300)}
        moved = [s for s in before if before[s] != after[s]]
        assert moved  # replica 2 owned something
        assert all(before[s] == 2 for s in moved)  # nobody else moved
        assert all(after[s] != 2 for s in range(300))
        # Blast radius stays ~1/N: far below a naive rehash (~3/4 moved).
        assert len(moved) < 300 / 2

    def test_remove_then_add_restores_placement(self):
        ring = HashRing(vnodes=32)
        for rid in range(3):
            ring.add(rid)
        before = [ring.owner(s) for s in range(100)]
        ring.remove(1)
        ring.add(1)
        assert [ring.owner(s) for s in range(100)] == before

    def test_empty_ring_owner_is_none(self):
        ring = HashRing()
        assert ring.owner(7) is None
        ring.add(0)
        ring.remove(0)
        assert ring.owner(7) is None

    def test_add_is_idempotent(self):
        ring = HashRing(vnodes=16)
        ring.add(0)
        points = len(ring._points)
        ring.add(0)
        assert len(ring._points) == points

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestFailureDetector:
    def make(self):
        detector = FailureDetector(POLICY)
        detector.register(0, 0.0)
        return detector

    def test_fresh_replica_is_healthy(self):
        detector = self.make()
        assert detector.health(0) is ReplicaHealth.HEALTHY
        assert detector.observe(0.02) == []

    def test_staleness_walks_suspect_then_down(self):
        detector = self.make()
        assert detector.observe(0.03) == [(0, ReplicaHealth.SUSPECT)]
        assert detector.observe(0.04) == []  # still in the hysteresis band
        assert detector.observe(0.06) == [(0, ReplicaHealth.DOWN)]

    def test_suspect_needs_a_streak_to_heal(self):
        detector = self.make()
        detector.observe(0.03)
        detector.heartbeat(0, 0.031)  # one heartbeat is not enough
        assert detector.health(0) is ReplicaHealth.SUSPECT
        detector.heartbeat(0, 0.041)
        assert detector.health(0) is ReplicaHealth.HEALTHY

    def test_down_is_fenced_against_late_heartbeats(self):
        detector = self.make()
        detector.observe(0.06)
        assert detector.health(0) is ReplicaHealth.DOWN
        detector.heartbeat(0, 0.07)
        assert detector.health(0) is ReplicaHealth.DOWN
        assert detector.observe(0.5) == []  # no re-transition

    def test_heartbeats_keep_a_replica_healthy(self):
        detector = self.make()
        for k in range(1, 20):
            detector.heartbeat(0, k * 0.01)
            assert detector.observe(k * 0.01) == []
        assert detector.health(0) is ReplicaHealth.HEALTHY


class TestFleetPolicy:
    def test_detector_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            FleetPolicy(heartbeat_interval_s=0.05, suspect_after_s=0.01)
        with pytest.raises(ValueError):
            FleetPolicy(suspect_after_s=0.05, down_after_s=0.05)

    def test_shrink_pressure_bounds(self):
        with pytest.raises(ValueError):
            FleetPolicy(shrink_pressure=0.0)


class TestFleetRouting:
    def test_sessions_home_on_their_ring_owner(self):
        fleet, sessions = make_fleet(num_replicas=3, num_sessions=12)
        for session in sessions:
            home = fleet.home_of(session.session_id)
            assert home == fleet.ring.owner(session.session_id)
            assert session.session_id in fleet.handle(home).service._sessions

    def test_submit_routes_to_the_home_replica(self):
        fleet, sessions = make_fleet()
        session = sessions[0]
        session.submit_features(FEATURES)
        home = fleet.home_of(session.session_id)
        assert fleet.handle(home).service.pending == 1
        assert all(fleet.handle(rid).service.pending == 0
                   for rid in range(fleet.num_replicas) if rid != home)

    def test_infer_end_to_end_through_the_fleet(self):
        fleet, sessions = make_fleet()
        request_id = sessions[0].submit_features(FEATURES)
        fleet.run_until_idle()
        assert sessions[0].has_result(request_id)

    def test_session_ids_are_fleet_unique(self):
        fleet, sessions = make_fleet(num_replicas=3, num_sessions=20)
        ids = [s.session_id for s in sessions]
        assert len(set(ids)) == len(ids)

    def test_heartbeats_flow_on_clock_advance(self):
        fleet, _ = make_fleet()
        fleet.advance_clock(0.1)
        assert fleet.fleet_stats.heartbeats > 0
        assert all(fleet.health(rid) is ReplicaHealth.HEALTHY
                   for rid in range(fleet.num_replicas))

    def test_close_session_cancels_and_drops_checkpoint(self):
        fleet, sessions = make_fleet()
        session = sessions[0]
        fleet.advance_clock(0.05)  # pump snapshots every session
        assert session.session_id in fleet.checkpoints
        request_id = session.submit_features(FEATURES)
        fleet.close_session(session)
        assert session.request_state(request_id) is RequestState.CANCELLED
        assert session.session_id not in fleet.checkpoints


class TestReplicaFaults:
    def test_crash_stops_ticks_and_heartbeats(self):
        fleet, sessions = make_fleet()
        victim = fleet.home_of(sessions[0].session_id)
        fleet.kill_replica(victim)
        handle = fleet.handle(victim)
        assert not handle.tickable(fleet.now)
        assert not handle.heartbeats_at(fleet.now)
        assert fleet.faults.stats.replica_crashes == 1

    def test_hang_window_freezes_then_releases(self):
        fleet, _ = make_fleet()
        fleet.apply_fault(ReplicaFault(replica=0, at_s=0.0, kind=REPLICA_HANG,
                                       duration_s=0.1))
        handle = fleet.handle(0)
        assert not handle.tickable(0.05) and handle.alive(0.05)
        assert handle.tickable(0.11)

    def test_partition_loses_submits(self):
        fleet, sessions = make_fleet()
        victim = fleet.home_of(sessions[0].session_id)
        fleet.apply_fault(ReplicaFault(replica=victim, at_s=0.0,
                                       kind=REPLICA_PARTITION, duration_s=0.5))
        request_id = sessions[0].submit_features(FEATURES)
        assert fleet.fleet_stats.lost_submits == 1
        assert fleet.handle(victim).service.pending == 0
        assert sessions[0].request_state(request_id) is RequestState.QUEUED

    def test_slow_scales_cost_but_keeps_heartbeats(self):
        fleet, _ = make_fleet()
        fleet.apply_fault(ReplicaFault(replica=0, at_s=0.0, kind=REPLICA_SLOW,
                                       duration_s=0.2, factor=3.0))
        handle = fleet.handle(0)
        assert handle.cost_factor(0.1) == 3.0
        assert handle.cost_factor(0.3) == 1.0
        assert handle.heartbeats_at(0.1)  # the gray failure heartbeats on time

    def test_replica_fault_validation(self):
        with pytest.raises(ValueError):
            ReplicaFault(replica=-1, at_s=0.0)
        with pytest.raises(ValueError):
            ReplicaFault(replica=0, at_s=0.0, kind="nonsense")
        with pytest.raises(ValueError):
            ReplicaFault(replica=0, at_s=0.0, kind=REPLICA_HANG)  # no window
        assert ReplicaFault(replica=0, at_s=1.0,
                            kind=REPLICA_CRASH).until_s == float("inf")


class TestFailover:
    def kill_and_detect(self, fleet, victim):
        fleet.kill_replica(victim)
        # Step by heartbeat intervals so the detector walks the full
        # ladder (a single big jump would leap straight to DOWN).
        deadline = fleet.now + 2 * POLICY.down_after_s
        while fleet.now < deadline:
            fleet.advance_clock(fleet.now + POLICY.heartbeat_interval_s)

    def test_crash_walks_the_health_ladder(self):
        fleet, sessions = make_fleet()
        victim = fleet.home_of(sessions[0].session_id)
        fleet.advance_clock(0.02)  # a few healthy heartbeats first
        self.kill_and_detect(fleet, victim)
        states = [state for _, rid, state in fleet.health_log if rid == victim]
        assert states == ["healthy", "suspect", "down"]
        assert fleet.health(victim) is ReplicaHealth.DOWN
        assert fleet.handle(victim).fenced

    def test_failover_migrates_only_the_victims_sessions(self):
        fleet, sessions = make_fleet(num_replicas=3, num_sessions=12)
        victim = fleet.home_of(sessions[0].session_id)
        homed = [s for s in sessions
                 if fleet.home_of(s.session_id) == victim]
        before = {s.session_id: fleet.home_of(s.session_id)
                  for s in sessions if fleet.home_of(s.session_id) != victim}
        self.kill_and_detect(fleet, victim)
        assert fleet.fleet_stats.failovers == 1
        assert fleet.fleet_stats.migrated_sessions == len(homed)
        for s in homed:
            assert fleet.home_of(s.session_id) != victim
        for session_id, home in before.items():
            assert fleet.home_of(session_id) == home  # everyone else stayed

    def test_migrated_sessions_keep_serving(self):
        fleet, sessions = make_fleet()
        victim = fleet.home_of(sessions[0].session_id)
        self.kill_and_detect(fleet, victim)
        request_id = sessions[0].submit_features(FEATURES)
        fleet.run_until_idle()
        assert sessions[0].has_result(request_id)

    def test_failover_bumps_the_epoch_of_checkpointed_sessions(self):
        fleet, sessions = make_fleet()
        fleet.advance_clock(0.02)  # checkpoint every session at least once
        victim = fleet.home_of(sessions[0].session_id)
        homed = [s for s in sessions if fleet.home_of(s.session_id) == victim]
        self.kill_and_detect(fleet, victim)
        assert fleet.fleet_stats.restored_sessions == len(homed)
        assert all(s.epoch >= 1 for s in homed)

    def test_exactly_once_across_failover(self):
        # A request stranded on the dead replica's queue is recovered by
        # an idempotent retry through the new home -- and served once.
        fleet, sessions = make_fleet()
        session = sessions[0]
        victim = fleet.home_of(session.session_id)
        request_id = session.submit_features(FEATURES)
        fleet.kill_replica(victim)  # dies holding the queued request
        fleet.advance_clock(fleet.now + 2 * POLICY.down_after_s)
        assert session.request_state(request_id) is RequestState.QUEUED
        session.submit_features(FEATURES, request_id=request_id)  # retry
        fleet.run_until_idle()
        assert session.take_response(request_id) is not None
        assert session.take_response(request_id) is None  # exactly one

    def test_drain_rehomes_without_epoch_bump(self):
        fleet, sessions = make_fleet()
        victim = fleet.home_of(sessions[0].session_id)
        homed = [s for s in sessions if fleet.home_of(s.session_id) == victim]
        moved = fleet.drain(victim)
        assert moved == len(homed)
        assert fleet.health(victim) is ReplicaHealth.DRAINING
        assert all(s.epoch == 0 for s in homed)  # graceful: no restore
        assert fleet.fleet_stats.drains == 1
        # Still tickable: a drained replica finishes its backlog.
        assert fleet.handle(victim).tickable(fleet.now)

    def test_empty_ring_rejects_submits(self):
        fleet, sessions = make_fleet(num_replicas=1, num_sessions=1)
        self.kill_and_detect(fleet, 0)
        from repro.serving import BackpressureError
        with pytest.raises(BackpressureError):
            sessions[0].submit_features(FEATURES)


class TestFleetOverloadCap:
    def make(self, shrink_pressure=0.25):
        policy = dataclasses.replace(POLICY, shrink_pressure=shrink_pressure)
        return make_fleet(num_sessions=2, policy=policy,
                          overload=OverloadController(OverloadPolicy()))

    def test_quiet_fleet_caps_replicas_at_narrow_codec(self):
        fleet, _ = self.make()
        fleet.advance_clock(0.01)
        assert all(r.overload.max_level == LEVEL_NARROW_CODEC
                   for r in fleet.replicas)

    def test_fleet_wide_pressure_unlocks_ensemble_shrink(self):
        from repro.serving import BackpressureError
        fleet, sessions = self.make(shrink_pressure=0.25)
        # Flood one session's home queue: 32 of 96 fleet-wide slots is
        # past the (lowered) shrink threshold.
        with pytest.raises(BackpressureError):
            for _ in range(64):
                sessions[0].submit_features(FEATURES)
        fleet.pump(fleet.now)
        assert all(r.overload.max_level == LEVEL_SHRINK_ENSEMBLE
                   for r in fleet.replicas)

    def test_pressure_release_restores_the_cap(self):
        from repro.serving import BackpressureError
        fleet, sessions = self.make(shrink_pressure=0.25)
        with pytest.raises(BackpressureError):
            for _ in range(64):
                sessions[0].submit_features(FEATURES)
        fleet.pump(fleet.now)
        fleet.run_until_idle()
        fleet.pump(fleet.now)
        assert all(r.overload.max_level == LEVEL_NARROW_CODEC
                   for r in fleet.replicas)


class TestServiceStatsMerge:
    def distinct_stats(self, offset):
        stats = ServiceStats()
        for index, field in enumerate(dataclasses.fields(ServiceStats)):
            setattr(stats, field.name, offset + index)
        return stats

    def test_merge_sums_counters_and_maxes_levels(self):
        a, b = self.distinct_stats(1), self.distinct_stats(100)
        merged = a + b
        for field in dataclasses.fields(ServiceStats):
            left = getattr(a, field.name)
            right = getattr(b, field.name)
            expected = (max(left, right) if field.name in _LEVEL_STATS
                        else left + right)
            assert getattr(merged, field.name) == expected, field.name

    def test_every_field_participates(self):
        # Regression guard: a counter added to ServiceStats but forgotten
        # by merge() would show up here as a zero in the merged result.
        a, b = self.distinct_stats(1), self.distinct_stats(100)
        merged = a + b
        for field in dataclasses.fields(ServiceStats):
            assert getattr(merged, field.name) >= getattr(b, field.name)

    def test_sum_builtin_compatibility(self):
        parts = [self.distinct_stats(1), self.distinct_stats(50),
                 self.distinct_stats(200)]
        total = sum(parts, ServiceStats())
        assert total.ticks == sum(p.ticks for p in parts)
        assert total.peak_coalesced == max(p.peak_coalesced for p in parts)

    def test_fleet_stats_property_merges_replicas(self):
        fleet, sessions = make_fleet()
        for session in sessions:
            session.submit_features(FEATURES)
        fleet.run_until_idle()
        assert fleet.stats.served_requests == sum(
            r.stats.served_requests for r in fleet.replicas)
        assert fleet.stats.served_requests == len(sessions)


class TestRetryRngEpochs:
    def make_session(self, session_id, epoch):
        client = Client(nn.Identity(), nn.Identity())
        return Session(session_id, client, None, epoch=epoch)

    def test_same_seed_same_jitter(self):
        a = self.make_session(7, 0)
        b = self.make_session(7, 0)
        assert list(a._retry_rng.random(8)) == list(b._retry_rng.random(8))

    def test_epoch_decorrelates_incarnations(self):
        # Regression: seeding by session id alone made every incarnation
        # of a session replay the same backoff jitter after failover.
        a = self.make_session(7, 0)
        b = self.make_session(7, 1)
        assert list(a._retry_rng.random(8)) != list(b._retry_rng.random(8))

    def test_retry_delays_differ_across_epochs(self):
        retry = RetryPolicy(max_attempts=5, base_delay_s=0.01, jitter=0.5)
        a = self.make_session(9, 0)
        b = self.make_session(9, 1)
        delays_a = [retry.delay_s(k, a._retry_rng) for k in range(5)]
        delays_b = [retry.delay_s(k, b._retry_rng) for k in range(5)]
        assert delays_a != delays_b


class TestFleetSimulation:
    RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.004, multiplier=2.0,
                        max_delay_s=0.05, jitter=0.1, timeout_s=0.06)
    COST = TickCost(pass_overhead_s=0.004, per_sample_s=0.0005,
                    per_request_downlink_s=0.0002)

    def run(self, plan=None, num_sessions=8):
        fleet, sessions = make_fleet(num_replicas=4,
                                     num_sessions=num_sessions, plan=plan)
        trace = bursty_trace(num_sessions, bursts=4, burst_size=8,
                             burst_gap_s=0.08)
        return simulate_fleet(fleet, sessions, trace, self.COST,
                              default_features=FEATURES, retry=self.RETRY)

    def test_fault_free_replay_conserves_and_serves_all(self):
        report = self.run()
        assert report.conservation_ok
        assert report.duplicate_serves == 0
        assert report.terminal_counts["completed"] == report.submitted
        assert len(report.ticks_by_replica) >= 2  # work actually spread

    def test_mid_trace_kill_fails_over_and_conserves(self):
        plan = FaultPlan(replica_faults=(
            ReplicaFault(replica=1, at_s=0.12, kind=REPLICA_CRASH),))
        report = self.run(plan=plan)
        assert report.conservation_ok
        assert report.duplicate_serves == 0
        assert report.failovers == 1
        down = [(t, rid) for t, rid, state in report.health_log
                if state == "down"]
        assert down and down[0][1] == 1
        assert report.ticks_by_replica.get(1, 0) >= 0
        served = report.terminal_counts["completed"]
        baseline = self.run().terminal_counts["completed"]
        assert served >= 0.7 * baseline

    def test_kill_migrates_at_most_the_victims_arc(self):
        plan = FaultPlan(replica_faults=(
            ReplicaFault(replica=1, at_s=0.12, kind=REPLICA_CRASH),))
        report = self.run(plan=plan, num_sessions=12)
        assert 0 < report.migrated_sessions <= 12 / 2

    def test_hang_window_rides_out_without_failover(self):
        plan = FaultPlan(replica_faults=(
            ReplicaFault(replica=0, at_s=0.05, kind=REPLICA_HANG,
                         duration_s=0.02),))
        report = self.run(plan=plan)
        # A hang shorter than suspect_after_s never even reaches SUSPECT.
        assert report.failovers == 0
        assert report.conservation_ok

    def test_slow_replica_is_a_gray_failure(self):
        plan = FaultPlan(replica_faults=(
            ReplicaFault(replica=0, at_s=0.0, kind=REPLICA_SLOW,
                         duration_s=10.0, factor=4.0),))
        report = self.run(plan=plan)
        assert report.failovers == 0  # heartbeats on time: never suspected
        assert report.conservation_ok
        assert report.terminal_counts["completed"] == report.submitted

    def test_goodput_between_counts_window_completions(self):
        report = self.run()
        total = report.goodput_between(0.0, report.makespan_s + 1e-9)
        assert total > 0
        assert report.goodput_between(report.makespan_s + 1.0,
                                      report.makespan_s + 2.0) == 0.0
